//! Verifies the scratch-reusing GNN entry points' zero-allocation contract
//! with a counting global allocator: once the scratch workspaces exist,
//! CSR inference (`predict_with`), the input-gradient backward pass
//! (`position_gradient_with`), and the parameter-gradient backward pass
//! (`loss_gradients_with`) never touch the heap.
//!
//! This file must hold exactly one test: other tests running concurrently
//! in the same binary would bump the counters and produce false failures.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use analog_netlist::{testcases, Placement};
use placer_gnn::{CircuitGraph, GradScratch, InferenceScratch, Network, ParamGrads, TrainScratch};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a side
// effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn scratch_paths_allocate_nothing_after_construction() {
    placer_parallel::set_max_threads(1);

    let circuit = testcases::comp1();
    let n = circuit.num_devices();
    let mut placement = Placement::new(n);
    for i in 0..n {
        placement.positions[i] = (3.0 + 1.7 * i as f64, 2.0 + 0.9 * (i % 5) as f64);
    }
    let network = Network::default_config(11);
    let mut graph = CircuitGraph::new(&circuit, &placement, 20.0);

    let mut inf = InferenceScratch::new(&network, n);
    let mut grad = GradScratch::new(&network, n);
    let mut train = TrainScratch::new(&network, n);
    let mut pos_grads = vec![(0.0, 0.0); n];
    let mut param_grads = ParamGrads::zeros(&network);
    let mut positions = placement.positions.clone();

    // Warm-up: one pass through every path so lazily-touched state exists.
    let mut sink = network.predict_with(&graph, &mut inf);
    sink += network.position_gradient_with(&graph, &mut grad, &mut pos_grads);
    sink += network.loss_gradients_with(&graph, 1.0, &mut train, &mut param_grads);

    // The libtest harness's main thread occasionally allocates while this
    // test thread runs, so measure several windows and require one to be
    // perfectly clean: a real per-call allocation would taint every window
    // with ≥50 counts, while harness noise is transient.
    let mut cleanest = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for step in 0..50 {
            for p in positions.iter_mut() {
                p.0 += 0.25;
                p.1 -= 0.125;
            }
            graph.update_positions_from_slice(&positions);
            sink += network.predict_with(&graph, &mut inf);
            sink += network.position_gradient_with(&graph, &mut grad, &mut pos_grads);
            let label = f64::from(step % 2 == 0);
            sink += network.loss_gradients_with(&graph, label, &mut train, &mut param_grads);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }

    placer_parallel::set_max_threads(0);
    assert_eq!(
        cleanest, 0,
        "GNN scratch paths allocated {cleanest} times in their cleanest 50-round window"
    );
    // Sanity: every path produced finite, used output.
    assert!(sink.is_finite());
    assert!(pos_grads.iter().any(|g| g.0 != 0.0 || g.1 != 0.0));
}
