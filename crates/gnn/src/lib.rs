//! # placer-gnn
//!
//! A small message-passing graph neural network with hand-written
//! backpropagation, reproducing the role of the ICCAD'20 GNN performance
//! model for analog placement: given a circuit graph (devices, connectivity,
//! positions), predict the probability that the placed circuit's figure of
//! merit misses its specification.
//!
//! Two consumers exist in this workspace:
//!
//! - the **simulated-annealing** placer calls [`Network::predict`] for its
//!   cost function (inference only, as in \[19\]);
//! - **ePlace-AP** calls [`Network::position_gradient`] for the analytical
//!   gradient `−∂Φ/∂v` the paper obtains from TensorFlow autodiff — here it
//!   is an explicit reverse pass.
//!
//! # Examples
//!
//! ```
//! use analog_netlist::{testcases, Placement};
//! use placer_gnn::{CircuitGraph, Network};
//!
//! let circuit = testcases::cc_ota();
//! let placement = Placement::new(circuit.num_devices());
//! let graph = CircuitGraph::new(&circuit, &placement, 10.0);
//! let network = Network::default_config(42);
//! let phi = network.predict(&graph);
//! assert!(phi > 0.0 && phi < 1.0);
//! ```

// Manual forward/backward passes index several parallel arrays per
// loop; explicit indices keep the math legible.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod csr;
mod graph;
mod matrix;
mod network;
#[cfg(test)]
mod proptests;
mod train;

pub use csr::CsrAdjacency;
pub use graph::{
    CircuitGraph, GraphTopology, FEATURES, FEATURE_AREA, FEATURE_CRITICAL, FEATURE_X, FEATURE_Y,
    KIND_SLOTS,
};
pub use matrix::Matrix;
pub use network::{Forward, GradScratch, InferenceScratch, Network, ParamGrads, TrainScratch};
pub use train::{TrainOptions, Trainer, TrainingSample};
