//! The message-passing network Φ(G) with hand-written backprop.
//!
//! Architecture (matching the role of the ICCAD'20 model \[19\]):
//!
//! ```text
//! H1 = tanh(Â X W1 + X W2 + b1)        (graph conv 1)
//! H2 = tanh(Â H1 W3 + H1 W4 + b2)      (graph conv 2)
//! g  = mean over nodes of H2           (readout)
//! h3 = tanh(g W5 + b3)                 (dense)
//! Φ  = sigmoid(h3 W6 + b4)             (probability FOM < threshold)
//! ```
//!
//! Because the solver of ePlace-AP needs `−∂Φ/∂v`, the backward pass exposes
//! both parameter gradients (for training) and **input-feature gradients**
//! (for placement), flowing through the position columns of `X`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CircuitGraph, Matrix, FEATURES, FEATURE_X, FEATURE_Y};

fn tanh_prime_from_t(t: f64) -> f64 {
    1.0 - t * t
}

/// The trainable parameters and architecture of the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    hidden: usize,
    dense: usize,
    w1: Matrix,
    w2: Matrix,
    b1: Vec<f64>,
    w3: Matrix,
    w4: Matrix,
    b2: Vec<f64>,
    w5: Matrix,
    b3: Vec<f64>,
    w6: Matrix,
    b4: f64,
}

/// All intermediate activations of one forward pass, kept for backprop.
///
/// The input features are **not** cached here — the backward pass borrows
/// them straight from the graph, so building a `Forward` never clones the
/// feature matrix.
#[derive(Debug, Clone)]
pub struct Forward {
    ax: Matrix,
    h1: Matrix,
    ah1: Matrix,
    h2: Matrix,
    g: Vec<f64>,
    h3: Vec<f64>,
    /// The network output Φ ∈ (0, 1).
    pub phi: f64,
}

/// Caller-owned activation buffers for allocation-free inference.
///
/// [`Network::predict_with`] runs the same forward pass as
/// [`Network::forward`] — bit-identical Φ — but writes every intermediate
/// into this scratch instead of allocating, which is what lets a
/// performance-driven SA cost loop infer Φ on every trial move without
/// touching the heap (enforced by `crates/sa/tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
pub struct InferenceScratch {
    /// `Â X`, `n × FEATURES`.
    ax: Matrix,
    /// First addend of a graph-conv pre-activation, `n × hidden`.
    t1: Matrix,
    /// Second addend of a graph-conv pre-activation, `n × hidden`.
    t2: Matrix,
    /// First conv activations, `n × hidden`.
    h1: Matrix,
    /// `Â H1`, `n × hidden`.
    ah1: Matrix,
    /// Second conv activations, `n × hidden`.
    h2: Matrix,
    /// Readout mean, `hidden`.
    g: Vec<f64>,
    /// Dense activations, `dense`.
    h3: Vec<f64>,
}

impl InferenceScratch {
    /// Allocates scratch for a network and a node count.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(network: &Network, num_nodes: usize) -> Self {
        let (h, d) = (network.hidden, network.dense);
        Self {
            ax: Matrix::zeros(num_nodes, FEATURES),
            t1: Matrix::zeros(num_nodes, h),
            t2: Matrix::zeros(num_nodes, h),
            h1: Matrix::zeros(num_nodes, h),
            ah1: Matrix::zeros(num_nodes, h),
            h2: Matrix::zeros(num_nodes, h),
            g: vec![0.0; h],
            h3: vec![0.0; d],
        }
    }

    /// Number of graph nodes this scratch is sized for.
    pub fn num_nodes(&self) -> usize {
        self.ax.rows()
    }
}

/// Caller-owned buffers for the allocation-free position-gradient pass
/// ([`Network::position_gradient_with`]).
///
/// Owns an [`InferenceScratch`] for the forward activations plus the
/// reverse-pass temporaries of the input-gradient-only backward. The final
/// layer only materializes the x/y feature columns of `∂Φ/∂X` — everything
/// the placement gradient actually reads — in the two `n × 2` buffers.
#[derive(Debug, Clone)]
pub struct GradScratch {
    fwd: InferenceScratch,
    /// Dense-head pre-activation gradients, `dense`.
    dz3: Vec<f64>,
    /// Readout gradient, `hidden`.
    dg: Vec<f64>,
    /// x/y-restricted `n × 2` product buffers of the input layer.
    xy_a: Matrix,
    xy_b: Matrix,
}

impl GradScratch {
    /// Allocates scratch for a network and a node count.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(network: &Network, num_nodes: usize) -> Self {
        Self {
            fwd: InferenceScratch::new(network, num_nodes),
            dz3: vec![0.0; network.dense],
            dg: vec![0.0; network.hidden],
            xy_a: Matrix::zeros(num_nodes, 2),
            xy_b: Matrix::zeros(num_nodes, 2),
        }
    }

    /// Number of graph nodes this scratch is sized for.
    pub fn num_nodes(&self) -> usize {
        self.fwd.num_nodes()
    }
}

/// Caller-owned buffers for the allocation-free training backward pass
/// ([`Network::loss_gradients_with`]).
///
/// The parameter gradients themselves live in a caller-owned
/// [`ParamGrads`] (see [`ParamGrads::zeros`]); this scratch holds only the
/// forward activations and the readout gradient the reverse pass threads
/// through.
#[derive(Debug, Clone)]
pub struct TrainScratch {
    fwd: InferenceScratch,
    /// Readout gradient, `hidden`.
    dg: Vec<f64>,
}

impl TrainScratch {
    /// Allocates scratch for a network and a node count.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(network: &Network, num_nodes: usize) -> Self {
        Self {
            fwd: InferenceScratch::new(network, num_nodes),
            dg: vec![0.0; network.hidden],
        }
    }

    /// Number of graph nodes this scratch is sized for.
    pub fn num_nodes(&self) -> usize {
        self.fwd.num_nodes()
    }
}

/// Gradients with respect to every parameter (same shapes as the network).
#[derive(Debug, Clone)]
pub struct ParamGrads {
    pub(crate) w1: Matrix,
    pub(crate) w2: Matrix,
    pub(crate) b1: Vec<f64>,
    pub(crate) w3: Matrix,
    pub(crate) w4: Matrix,
    pub(crate) b2: Vec<f64>,
    pub(crate) w5: Matrix,
    pub(crate) b3: Vec<f64>,
    pub(crate) w6: Matrix,
    pub(crate) b4: f64,
}

impl Network {
    /// Creates a network with Xavier-style random initialization.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` or `dense` is zero.
    pub fn new(hidden: usize, dense: usize, seed: u64) -> Self {
        assert!(hidden > 0 && dense > 0, "layer widths must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut init = |rows: usize, cols: usize| {
            let s = (6.0 / (rows + cols) as f64).sqrt();
            let data = (0..rows * cols).map(|_| rng.gen_range(-s..s)).collect();
            Matrix::from_vec(rows, cols, data)
        };
        Self {
            hidden,
            dense,
            w1: init(FEATURES, hidden),
            w2: init(FEATURES, hidden),
            b1: vec![0.0; hidden],
            w3: init(hidden, hidden),
            w4: init(hidden, hidden),
            b2: vec![0.0; hidden],
            w5: init(hidden, dense),
            b3: vec![0.0; dense],
            w6: init(dense, 1),
            b4: 0.0,
        }
    }

    /// Default configuration used throughout the reproduction.
    pub fn default_config(seed: u64) -> Self {
        Self::new(16, 8, seed)
    }

    /// Hidden (graph conv) width.
    pub fn hidden_width(&self) -> usize {
        self.hidden
    }

    /// Runs the forward pass, returning all cached activations.
    ///
    /// This is the retained dense reference: every product goes through the
    /// dense adjacency. The shipping inference path is
    /// [`predict_with`](Self::predict_with), which multiplies through the
    /// CSR plan instead (bit-identically).
    pub fn forward(&self, graph: &CircuitGraph) -> Forward {
        let x = &graph.features;
        let ax = graph.adjacency.matmul(x);
        let z1 = ax
            .matmul(&self.w1)
            .add(&x.matmul(&self.w2))
            .add_row_broadcast(&self.b1);
        let h1 = z1.map(f64::tanh);
        let ah1 = graph.adjacency.matmul(&h1);
        let z2 = ah1
            .matmul(&self.w3)
            .add(&h1.matmul(&self.w4))
            .add_row_broadcast(&self.b2);
        let h2 = z2.map(f64::tanh);
        let g = h2.column_mean();
        let mut h3 = vec![0.0; self.dense];
        for j in 0..self.dense {
            let mut z = self.b3[j];
            for k in 0..self.hidden {
                z += g[k] * self.w5.get(k, j);
            }
            h3[j] = z.tanh();
        }
        let mut z4 = self.b4;
        for j in 0..self.dense {
            z4 += h3[j] * self.w6.get(j, 0);
        }
        let phi = 1.0 / (1.0 + (-z4).exp());
        Forward {
            ax,
            h1,
            ah1,
            h2,
            g,
            h3,
            phi,
        }
    }

    /// Convenience: forward pass returning only Φ.
    pub fn predict(&self, graph: &CircuitGraph) -> f64 {
        self.forward(graph).phi
    }

    /// Allocation-free forward pass: Φ computed into `scratch`.
    ///
    /// The message-passing products go through the graph's
    /// [`CsrAdjacency`](crate::CsrAdjacency) plan, which performs the
    /// arithmetic of [`forward`](Self::forward) in the same floating-point
    /// order (see the bit-identity contract in `csr.rs`), so the result is
    /// bit-identical to [`predict`](Self::predict); after `scratch` is warm
    /// the call makes no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different node count or network
    /// architecture.
    pub fn predict_with(&self, graph: &CircuitGraph, scratch: &mut InferenceScratch) -> f64 {
        let x = &graph.features;
        graph.csr.spmm_into(x, &mut scratch.ax);
        // Layer 1: h1 = tanh((ÂX)W1 + XW2 + b1), summed in the same order
        // as the allocating path's add / add_row_broadcast chain.
        scratch.ax.matmul_into(&self.w1, &mut scratch.t1);
        x.matmul_into(&self.w2, &mut scratch.t2);
        for i in 0..x.rows() {
            for j in 0..self.hidden {
                let z = scratch.t1.get(i, j) + scratch.t2.get(i, j) + self.b1[j];
                scratch.h1.set(i, j, z.tanh());
            }
        }
        // Layer 2: h2 = tanh((ÂH1)W3 + H1W4 + b2).
        graph.csr.spmm_into(&scratch.h1, &mut scratch.ah1);
        scratch.ah1.matmul_into(&self.w3, &mut scratch.t1);
        scratch.h1.matmul_into(&self.w4, &mut scratch.t2);
        for i in 0..x.rows() {
            for j in 0..self.hidden {
                let z = scratch.t1.get(i, j) + scratch.t2.get(i, j) + self.b2[j];
                scratch.h2.set(i, j, z.tanh());
            }
        }
        // Readout + dense head, scalar loops as in `forward`.
        scratch.g.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..x.rows() {
            for k in 0..self.hidden {
                scratch.g[k] += scratch.h2.get(i, k);
            }
        }
        for v in scratch.g.iter_mut() {
            *v /= x.rows() as f64;
        }
        for j in 0..self.dense {
            let mut z = self.b3[j];
            for k in 0..self.hidden {
                z += scratch.g[k] * self.w5.get(k, j);
            }
            scratch.h3[j] = z.tanh();
        }
        let mut z4 = self.b4;
        for j in 0..self.dense {
            z4 += scratch.h3[j] * self.w6.get(j, 0);
        }
        1.0 / (1.0 + (-z4).exp())
    }

    /// Backward pass from a scalar seed `dL/dz4` (the logit gradient).
    ///
    /// Returns parameter gradients and the gradient w.r.t. the input
    /// feature matrix.
    fn backward(&self, graph: &CircuitGraph, fwd: &Forward, dz4: f64) -> (ParamGrads, Matrix) {
        let x = &graph.features;
        let n = x.rows();
        // Dense head.
        let mut dw6 = Matrix::zeros(self.dense, 1);
        let mut dh3 = vec![0.0; self.dense];
        for j in 0..self.dense {
            dw6.set(j, 0, dz4 * fwd.h3[j]);
            dh3[j] = dz4 * self.w6.get(j, 0);
        }
        let db4 = dz4;
        let mut dz3 = vec![0.0; self.dense];
        for j in 0..self.dense {
            dz3[j] = dh3[j] * tanh_prime_from_t(fwd.h3[j]);
        }
        let mut dw5 = Matrix::zeros(self.hidden, self.dense);
        let mut dg = vec![0.0; self.hidden];
        for k in 0..self.hidden {
            for j in 0..self.dense {
                dw5.set(k, j, fwd.g[k] * dz3[j]);
                dg[k] += self.w5.get(k, j) * dz3[j];
            }
        }
        let db3 = dz3;

        // Readout: g = mean rows of H2.
        let mut dh2 = Matrix::zeros(n, self.hidden);
        for i in 0..n {
            for k in 0..self.hidden {
                dh2.set(i, k, dg[k] / n as f64);
            }
        }
        // Layer 2.
        let dz2 = dh2.hadamard(&fwd.h2.map(tanh_prime_from_t));
        let dw3 = fwd.ah1.transpose().matmul(&dz2);
        let dw4 = fwd.h1.transpose().matmul(&dz2);
        let db2 = dz2.column_sum();
        let at = graph.adjacency.transpose();
        let dh1 = at
            .matmul(&dz2.matmul(&self.w3.transpose()))
            .add(&dz2.matmul(&self.w4.transpose()));
        // Layer 1.
        let dz1 = dh1.hadamard(&fwd.h1.map(tanh_prime_from_t));
        let dw1 = fwd.ax.transpose().matmul(&dz1);
        let dw2 = x.transpose().matmul(&dz1);
        let db1 = dz1.column_sum();
        let dx = at
            .matmul(&dz1.matmul(&self.w1.transpose()))
            .add(&dz1.matmul(&self.w2.transpose()));

        (
            ParamGrads {
                w1: dw1,
                w2: dw2,
                b1: db1,
                w3: dw3,
                w4: dw4,
                b2: db2,
                w5: dw5,
                b3: db3,
                w6: dw6,
                b4: db4,
            },
            dx,
        )
    }

    /// Parameter gradients of the binary cross-entropy loss
    /// `−y ln Φ − (1−y) ln(1−Φ)` for one labeled graph. Returns
    /// `(loss, grads)`.
    ///
    /// This is the retained dense allocating reference; the trainer's hot
    /// loop uses [`loss_gradients_with`](Self::loss_gradients_with), which
    /// produces bit-identical gradients without allocating.
    pub fn loss_gradients(&self, graph: &CircuitGraph, label: f64) -> (f64, ParamGrads) {
        let fwd = self.forward(graph);
        let eps = 1e-12;
        let loss = -(label * (fwd.phi + eps).ln() + (1.0 - label) * (1.0 - fwd.phi + eps).ln());
        // dL/dz4 = Φ − y for sigmoid + CE.
        let (grads, _) = self.backward(graph, &fwd, fwd.phi - label);
        (loss, grads)
    }

    /// Allocation-free [`loss_gradients`](Self::loss_gradients): the CSR
    /// forward pass plus a parameter-gradient backward pass written into
    /// the caller-owned `grads` (input gradients are skipped — training
    /// never reads them). Returns the loss.
    ///
    /// Every gradient element is computed in the same floating-point order
    /// as the dense reference, so `grads` is bit-identical to the reference
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` or `grads` is sized for a different node count
    /// or network architecture.
    pub fn loss_gradients_with(
        &self,
        graph: &CircuitGraph,
        label: f64,
        scratch: &mut TrainScratch,
        grads: &mut ParamGrads,
    ) -> f64 {
        let x = &graph.features;
        let n = x.rows();
        let phi = self.predict_with(graph, &mut scratch.fwd);
        let s = &mut scratch.fwd;
        let eps = 1e-12;
        let loss = -(label * (phi + eps).ln() + (1.0 - label) * (1.0 - phi + eps).ln());
        // dL/dz4 = Φ − y for sigmoid + CE; dense head (db3 doubles as dz3).
        let dz4 = phi - label;
        grads.b4 = dz4;
        for j in 0..self.dense {
            grads.w6.set(j, 0, dz4 * s.h3[j]);
            let dh3 = dz4 * self.w6.get(j, 0);
            grads.b3[j] = dh3 * tanh_prime_from_t(s.h3[j]);
        }
        scratch.dg.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.hidden {
            for j in 0..self.dense {
                grads.w5.set(k, j, s.g[k] * grads.b3[j]);
                scratch.dg[k] += self.w5.get(k, j) * grads.b3[j];
            }
        }
        // Layer 2: dz2 = (dg/n) ⊙ (1 − h2²), built in t1.
        for i in 0..n {
            for k in 0..self.hidden {
                let v = (scratch.dg[k] / n as f64) * tanh_prime_from_t(s.h2.get(i, k));
                s.t1.set(i, k, v);
            }
        }
        s.ah1.matmul_at_b_into(&s.t1, &mut grads.w3);
        s.h1.matmul_at_b_into(&s.t1, &mut grads.w4);
        grads.b2.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            for k in 0..self.hidden {
                grads.b2[k] += s.t1.get(i, k);
            }
        }
        // dh1 = Âᵀ(dz2·W3ᵀ) + dz2·W4ᵀ; Â is bit-exactly symmetric, so the
        // forward CSR plan serves the transposed product. ah1 is free as a
        // target once dw3 is out.
        s.t1.matmul_a_bt_into(&self.w3, &mut s.t2);
        graph.csr.spmm_into(&s.t2, &mut s.ah1);
        s.t1.matmul_a_bt_into(&self.w4, &mut s.t2);
        // dz1 = dh1 ⊙ (1 − h1²), fused per element in the reference order.
        for i in 0..n {
            for k in 0..self.hidden {
                let dh1 = s.ah1.get(i, k) + s.t2.get(i, k);
                s.t1.set(i, k, dh1 * tanh_prime_from_t(s.h1.get(i, k)));
            }
        }
        // Layer 1 parameter gradients.
        s.ax.matmul_at_b_into(&s.t1, &mut grads.w1);
        x.matmul_at_b_into(&s.t1, &mut grads.w2);
        grads.b1.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            for k in 0..self.hidden {
                grads.b1[k] += s.t1.get(i, k);
            }
        }
        loss
    }

    /// Gradient of Φ itself with respect to each device's normalized
    /// position: returns `(phi, Vec<(dΦ/dx, dΦ/dy)>)` in **µm⁻¹** units
    /// (the chain rule through the `1/scale` feature normalization is
    /// applied here).
    ///
    /// Allocating convenience over
    /// [`position_gradient_with`](Self::position_gradient_with); the
    /// optimizer hot loops own a [`GradScratch`] and call that directly.
    pub fn position_gradient(&self, graph: &CircuitGraph) -> (f64, Vec<(f64, f64)>) {
        let mut scratch = GradScratch::new(self, graph.num_nodes());
        let mut grads = vec![(0.0, 0.0); graph.num_nodes()];
        let phi = self.position_gradient_with(graph, &mut scratch, &mut grads);
        (phi, grads)
    }

    /// Retained dense reference of
    /// [`position_gradient`](Self::position_gradient): the full backward
    /// pass through the dense adjacency, parameter gradients computed and
    /// thrown away. Kept as the bench "before" leg and the bit-identity
    /// oracle for the property tests.
    pub fn position_gradient_reference(&self, graph: &CircuitGraph) -> (f64, Vec<(f64, f64)>) {
        let fwd = self.forward(graph);
        // dΦ/dz4 = Φ(1−Φ).
        let (_, dx) = self.backward(graph, &fwd, fwd.phi * (1.0 - fwd.phi));
        let grads = (0..dx.rows())
            .map(|i| {
                (
                    dx.get(i, FEATURE_X) / graph.scale,
                    dx.get(i, FEATURE_Y) / graph.scale,
                )
            })
            .collect();
        (fwd.phi, grads)
    }

    /// Allocation-free position gradient: Φ returned, `∂Φ/∂(x, y)` per
    /// device (µm⁻¹) written into `grads`.
    ///
    /// Runs the CSR forward pass and an **input-gradient-only** reverse
    /// pass — the `ParamGrads` work of the full backward is skipped, and
    /// only the x/y feature columns of `∂Φ/∂X` are materialized. Every
    /// surviving element is computed in the floating-point order of
    /// [`position_gradient_reference`](Self::position_gradient_reference),
    /// so Φ and the gradients are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` or `grads` is sized for a different node count
    /// or network architecture.
    pub fn position_gradient_with(
        &self,
        graph: &CircuitGraph,
        scratch: &mut GradScratch,
        grads: &mut [(f64, f64)],
    ) -> f64 {
        let n = graph.features.rows();
        assert_eq!(grads.len(), n, "gradient slice length mismatch");
        let phi = self.predict_with(graph, &mut scratch.fwd);
        let s = &mut scratch.fwd;
        // dΦ/dz4 = Φ(1−Φ); dense head.
        let dz4 = phi * (1.0 - phi);
        for j in 0..self.dense {
            let dh3 = dz4 * self.w6.get(j, 0);
            scratch.dz3[j] = dh3 * tanh_prime_from_t(s.h3[j]);
        }
        scratch.dg.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.hidden {
            for j in 0..self.dense {
                scratch.dg[k] += self.w5.get(k, j) * scratch.dz3[j];
            }
        }
        // Layer 2 → layer 1, input gradients only (no dwᵢ/dbᵢ work).
        for i in 0..n {
            for k in 0..self.hidden {
                let v = (scratch.dg[k] / n as f64) * tanh_prime_from_t(s.h2.get(i, k));
                s.t1.set(i, k, v);
            }
        }
        s.t1.matmul_a_bt_into(&self.w3, &mut s.t2);
        graph.csr.spmm_into(&s.t2, &mut s.ah1);
        s.t1.matmul_a_bt_into(&self.w4, &mut s.t2);
        for i in 0..n {
            for k in 0..self.hidden {
                let dh1 = s.ah1.get(i, k) + s.t2.get(i, k);
                s.t1.set(i, k, dh1 * tanh_prime_from_t(s.h1.get(i, k)));
            }
        }
        // dx = Âᵀ(dz1·W1ᵀ) + dz1·W2ᵀ restricted to the x/y feature columns
        // (per-element bit-identical to the corresponding columns of the
        // full products; each output column accumulates independently).
        let xy = [FEATURE_X, FEATURE_Y];
        s.t1.matmul_a_bt_cols_into(&self.w1, &xy, &mut scratch.xy_a);
        graph.csr.spmm_into(&scratch.xy_a, &mut scratch.xy_b);
        s.t1.matmul_a_bt_cols_into(&self.w2, &xy, &mut scratch.xy_a);
        for (i, g) in grads.iter_mut().enumerate() {
            g.0 = (scratch.xy_b.get(i, 0) + scratch.xy_a.get(i, 0)) / graph.scale;
            g.1 = (scratch.xy_b.get(i, 1) + scratch.xy_a.get(i, 1)) / graph.scale;
        }
        phi
    }

    /// Applies a scaled gradient step `p ← p − lr·g` (plain SGD; the Adam
    /// trainer lives in [`crate::Trainer`]).
    pub fn apply_grads(&mut self, grads: &ParamGrads, lr: f64) {
        let step = |m: &mut Matrix, g: &Matrix| {
            for (p, gv) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *p -= lr * gv;
            }
        };
        step(&mut self.w1, &grads.w1);
        step(&mut self.w2, &grads.w2);
        step(&mut self.w3, &grads.w3);
        step(&mut self.w4, &grads.w4);
        step(&mut self.w5, &grads.w5);
        step(&mut self.w6, &grads.w6);
        for (p, g) in self.b1.iter_mut().zip(&grads.b1) {
            *p -= lr * g;
        }
        for (p, g) in self.b2.iter_mut().zip(&grads.b2) {
            *p -= lr * g;
        }
        for (p, g) in self.b3.iter_mut().zip(&grads.b3) {
            *p -= lr * g;
        }
        self.b4 -= lr * grads.b4;
    }

    /// Visits every `(parameter, gradient)` pair in the flatten order of
    /// [`params_mut`](Self::params_mut) / [`ParamGrads::flatten`], without
    /// allocating — the in-place Adam update walks the model through this.
    pub(crate) fn for_each_param_mut(
        &mut self,
        grads: &ParamGrads,
        mut f: impl FnMut(&mut f64, f64),
    ) {
        let mats = [(&mut self.w1, &grads.w1), (&mut self.w2, &grads.w2)];
        for (m, g) in mats {
            for (p, gv) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                f(p, *gv);
            }
        }
        for (p, gv) in self.b1.iter_mut().zip(&grads.b1) {
            f(p, *gv);
        }
        for (m, g) in [(&mut self.w3, &grads.w3), (&mut self.w4, &grads.w4)] {
            for (p, gv) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                f(p, *gv);
            }
        }
        for (p, gv) in self.b2.iter_mut().zip(&grads.b2) {
            f(p, *gv);
        }
        for (p, gv) in self.w5.as_mut_slice().iter_mut().zip(grads.w5.as_slice()) {
            f(p, *gv);
        }
        for (p, gv) in self.b3.iter_mut().zip(&grads.b3) {
            f(p, *gv);
        }
        for (p, gv) in self.w6.as_mut_slice().iter_mut().zip(grads.w6.as_slice()) {
            f(p, *gv);
        }
        f(&mut self.b4, grads.b4);
    }

    /// Iterator-free flat views used by the Adam trainer.
    pub(crate) fn params_mut(&mut self) -> Vec<&mut f64> {
        let mut out: Vec<&mut f64> = Vec::new();
        out.extend(self.w1.as_mut_slice().iter_mut());
        out.extend(self.w2.as_mut_slice().iter_mut());
        out.extend(self.b1.iter_mut());
        out.extend(self.w3.as_mut_slice().iter_mut());
        out.extend(self.w4.as_mut_slice().iter_mut());
        out.extend(self.b2.iter_mut());
        out.extend(self.w5.as_mut_slice().iter_mut());
        out.extend(self.b3.iter_mut());
        out.extend(self.w6.as_mut_slice().iter_mut());
        out.push(&mut self.b4);
        out
    }
}

impl ParamGrads {
    /// Zero-valued gradients shaped for a network, for reuse across
    /// [`Network::loss_gradients_with`] calls.
    pub fn zeros(network: &Network) -> Self {
        let (h, d) = (network.hidden, network.dense);
        Self {
            w1: Matrix::zeros(FEATURES, h),
            w2: Matrix::zeros(FEATURES, h),
            b1: vec![0.0; h],
            w3: Matrix::zeros(h, h),
            w4: Matrix::zeros(h, h),
            b2: vec![0.0; h],
            w5: Matrix::zeros(h, d),
            b3: vec![0.0; d],
            w6: Matrix::zeros(d, 1),
            b4: 0.0,
        }
    }

    /// Resets every gradient to zero in place (mini-batch reuse).
    pub(crate) fn zero(&mut self) {
        for m in [
            &mut self.w1,
            &mut self.w2,
            &mut self.w3,
            &mut self.w4,
            &mut self.w5,
            &mut self.w6,
        ] {
            m.as_mut_slice().iter_mut().for_each(|v| *v = 0.0);
        }
        for v in self
            .b1
            .iter_mut()
            .chain(self.b2.iter_mut())
            .chain(self.b3.iter_mut())
        {
            *v = 0.0;
        }
        self.b4 = 0.0;
    }

    /// Flattens the gradients in the same order as `Network::params_mut`.
    pub(crate) fn flatten(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(self.w3.as_slice());
        out.extend_from_slice(self.w4.as_slice());
        out.extend_from_slice(&self.b2);
        out.extend_from_slice(self.w5.as_slice());
        out.extend_from_slice(&self.b3);
        out.extend_from_slice(self.w6.as_slice());
        out.push(self.b4);
        out
    }

    /// Adds another gradient set (for mini-batch accumulation).
    pub(crate) fn accumulate(&mut self, other: &ParamGrads) {
        let add_m = |a: &mut Matrix, b: &Matrix| {
            for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x += y;
            }
        };
        add_m(&mut self.w1, &other.w1);
        add_m(&mut self.w2, &other.w2);
        add_m(&mut self.w3, &other.w3);
        add_m(&mut self.w4, &other.w4);
        add_m(&mut self.w5, &other.w5);
        add_m(&mut self.w6, &other.w6);
        for (x, y) in self.b1.iter_mut().zip(&other.b1) {
            *x += y;
        }
        for (x, y) in self.b2.iter_mut().zip(&other.b2) {
            *x += y;
        }
        for (x, y) in self.b3.iter_mut().zip(&other.b3) {
            *x += y;
        }
        self.b4 += other.b4;
    }

    /// Scales all gradients (e.g. by 1/batch).
    pub(crate) fn scale(&mut self, s: f64) {
        self.w1.scale_in_place(s);
        self.w2.scale_in_place(s);
        self.w3.scale_in_place(s);
        self.w4.scale_in_place(s);
        self.w5.scale_in_place(s);
        self.w6.scale_in_place(s);
        for v in self
            .b1
            .iter_mut()
            .chain(self.b2.iter_mut())
            .chain(self.b3.iter_mut())
        {
            *v *= s;
        }
        self.b4 *= s;
    }
}

impl Network {
    /// Serializes the network to a plain-text format (architecture header
    /// plus whitespace-separated parameters). No external dependencies.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "gnn-v1 {} {} {}", FEATURES, self.hidden, self.dense);
        let mut dump = |name: &str, data: &[f64]| {
            let _ = write!(out, "{name}");
            for v in data {
                let _ = write!(out, " {v:e}");
            }
            let _ = writeln!(out);
        };
        dump("w1", self.w1.as_slice());
        dump("w2", self.w2.as_slice());
        dump("b1", &self.b1);
        dump("w3", self.w3.as_slice());
        dump("w4", self.w4.as_slice());
        dump("b2", &self.b2);
        dump("w5", self.w5.as_slice());
        dump("b3", &self.b3);
        dump("w6", self.w6.as_slice());
        dump("b4", &[self.b4]);
        out
    }

    /// Deserializes a network written by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "gnn-v1" {
            return Err(format!("bad header `{header}`"));
        }
        let features: usize = parts[1].parse().map_err(|_| "bad feature count")?;
        if features != FEATURES {
            return Err(format!(
                "model built for {features} features, this build uses {FEATURES}"
            ));
        }
        let hidden: usize = parts[2].parse().map_err(|_| "bad hidden width")?;
        let dense: usize = parts[3].parse().map_err(|_| "bad dense width")?;
        let mut net = Network::new(hidden, dense, 0);
        let mut read = |name: &str, expected: usize| -> Result<Vec<f64>, String> {
            let line = lines.next().ok_or_else(|| format!("missing `{name}`"))?;
            let mut tokens = line.split_whitespace();
            if tokens.next() != Some(name) {
                return Err(format!("expected `{name}` section"));
            }
            let values: Result<Vec<f64>, _> = tokens.map(str::parse::<f64>).collect();
            let values = values.map_err(|_| format!("bad number in `{name}`"))?;
            if values.len() != expected {
                return Err(format!(
                    "`{name}` has {} values, expected {expected}",
                    values.len()
                ));
            }
            Ok(values)
        };
        net.w1 = Matrix::from_vec(FEATURES, hidden, read("w1", FEATURES * hidden)?);
        net.w2 = Matrix::from_vec(FEATURES, hidden, read("w2", FEATURES * hidden)?);
        net.b1 = read("b1", hidden)?;
        net.w3 = Matrix::from_vec(hidden, hidden, read("w3", hidden * hidden)?);
        net.w4 = Matrix::from_vec(hidden, hidden, read("w4", hidden * hidden)?);
        net.b2 = read("b2", hidden)?;
        net.w5 = Matrix::from_vec(hidden, dense, read("w5", hidden * dense)?);
        net.b3 = read("b3", dense)?;
        net.w6 = Matrix::from_vec(dense, 1, read("w6", dense)?);
        net.b4 = read("b4", 1)?[0];
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::{testcases, Placement};

    fn test_graph() -> CircuitGraph {
        let c = testcases::cc_ota();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i % 4) as f64 * 2.0, (i / 4) as f64 * 1.5);
        }
        CircuitGraph::new(&c, &p, 10.0)
    }

    #[test]
    fn output_is_probability() {
        let g = test_graph();
        let net = Network::default_config(1);
        let phi = net.predict(&g);
        assert!(phi > 0.0 && phi < 1.0);
    }

    #[test]
    fn forward_is_deterministic() {
        let g = test_graph();
        let net = Network::default_config(7);
        assert_eq!(net.predict(&g), net.predict(&g));
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let g = test_graph();
        let mut net = Network::new(4, 3, 3);
        let label = 1.0;
        let (_, grads) = net.loss_gradients(&g, label);
        let flat = grads.flatten();
        let eps = 1e-6;
        // Spot-check a spread of parameter indices.
        let total = flat.len();
        for &idx in &[0usize, 7, total / 3, total / 2, total - 2, total - 1] {
            let mut params = net.params_mut();
            let orig = *params[idx];
            *params[idx] = orig + eps;
            drop(params);
            let (lp, _) = net.loss_gradients(&g, label);
            let mut params = net.params_mut();
            *params[idx] = orig - eps;
            drop(params);
            let (lm, _) = net.loss_gradients(&g, label);
            let mut params = net.params_mut();
            *params[idx] = orig;
            drop(params);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - flat[idx]).abs() < 1e-5 * (1.0 + numeric.abs()),
                "param {idx}: numeric {numeric} vs analytic {}",
                flat[idx]
            );
        }
    }

    #[test]
    fn position_gradient_matches_finite_differences() {
        let c = testcases::cc_ota();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i % 4) as f64 * 2.0, (i / 4) as f64 * 1.5);
        }
        let scale = 10.0;
        let mut g = CircuitGraph::new(&c, &p, scale);
        let net = Network::new(6, 4, 5);
        let (_, grads) = net.position_gradient(&g);
        let eps = 1e-5;
        for dev in [0usize, 3, 7] {
            let orig = p.positions[dev];
            p.positions[dev] = (orig.0 + eps, orig.1);
            g.update_positions(&p);
            let phi_p = net.predict(&g);
            p.positions[dev] = (orig.0 - eps, orig.1);
            g.update_positions(&p);
            let phi_m = net.predict(&g);
            p.positions[dev] = orig;
            g.update_positions(&p);
            let numeric = (phi_p - phi_m) / (2.0 * eps);
            assert!(
                (numeric - grads[dev].0).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "device {dev}: numeric {numeric} vs analytic {}",
                grads[dev].0
            );
        }
    }

    #[test]
    fn predict_with_is_bit_identical_to_predict() {
        let c = testcases::cc_ota();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i % 5) as f64 * 1.9, (i / 5) as f64 * 2.2);
        }
        let mut g = CircuitGraph::new(&c, &p, 15.0);
        let net = Network::default_config(21);
        let mut scratch = InferenceScratch::new(&net, g.num_nodes());
        assert_eq!(scratch.num_nodes(), g.num_nodes());
        // Across several position updates the scratch path must track the
        // allocating path exactly.
        for step in 0..4 {
            p.positions[step] = (p.positions[step].0 + 0.37, p.positions[step].1 - 0.11);
            g.update_positions(&p);
            let reference = net.predict(&g);
            let fast = net.predict_with(&g, &mut scratch);
            assert_eq!(reference.to_bits(), fast.to_bits(), "step {step}");
        }
    }

    #[test]
    fn position_gradient_with_is_bit_identical_to_reference() {
        let c = testcases::comp1();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i * 13 % 7) as f64 * 1.3, (i * 5 % 9) as f64 * 0.7);
        }
        let mut g = CircuitGraph::new(&c, &p, 12.0);
        let net = Network::default_config(17);
        let mut scratch = GradScratch::new(&net, g.num_nodes());
        assert_eq!(scratch.num_nodes(), g.num_nodes());
        let mut fast = vec![(0.0, 0.0); g.num_nodes()];
        for step in 0..3 {
            p.positions[step] = (p.positions[step].0 + 0.41, p.positions[step].1 - 0.29);
            g.update_positions(&p);
            let (phi_ref, grads_ref) = net.position_gradient_reference(&g);
            let phi = net.position_gradient_with(&g, &mut scratch, &mut fast);
            assert_eq!(phi_ref.to_bits(), phi.to_bits(), "phi step {step}");
            for (i, (a, b)) in grads_ref.iter().zip(&fast).enumerate() {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "dx device {i} step {step}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "dy device {i} step {step}");
            }
        }
    }

    #[test]
    fn loss_gradients_with_is_bit_identical_to_reference() {
        let c = testcases::vco1();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i % 6) as f64 * 1.7, (i / 6) as f64 * 2.3);
        }
        let g = CircuitGraph::new(&c, &p, 20.0);
        let net = Network::default_config(9);
        let mut scratch = TrainScratch::new(&net, g.num_nodes());
        assert_eq!(scratch.num_nodes(), g.num_nodes());
        let mut grads = ParamGrads::zeros(&net);
        for &label in &[0.0, 1.0] {
            let (loss_ref, grads_ref) = net.loss_gradients(&g, label);
            let loss = net.loss_gradients_with(&g, label, &mut scratch, &mut grads);
            assert_eq!(loss_ref.to_bits(), loss.to_bits(), "loss, label {label}");
            for (i, (a, b)) in grads_ref.flatten().iter().zip(grads.flatten()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "grad {i}, label {label}");
            }
        }
    }

    #[test]
    fn position_gradient_matches_finite_differences_on_asymmetric_circuit() {
        // comp1's connectivity is irregular (no symmetric device pairs line
        // up), so this exercises gradient flow the cc_ota check cannot.
        let c = testcases::comp1();
        let mut p = Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i * 7 % 5) as f64 * 2.1, (i * 3 % 8) as f64 * 1.1);
        }
        let scale = 14.0;
        let mut g = CircuitGraph::new(&c, &p, scale);
        let net = Network::new(8, 5, 23);
        let mut scratch = GradScratch::new(&net, g.num_nodes());
        let mut grads = vec![(0.0, 0.0); g.num_nodes()];
        net.position_gradient_with(&g, &mut scratch, &mut grads);
        let eps = 1e-5;
        for dev in 0..c.num_devices() {
            let orig = p.positions[dev];
            for axis in 0..2 {
                let probe = |s: f64, p: &mut Placement, g: &mut CircuitGraph| {
                    p.positions[dev] = if axis == 0 {
                        (orig.0 + s, orig.1)
                    } else {
                        (orig.0, orig.1 + s)
                    };
                    g.update_positions(p);
                };
                probe(eps, &mut p, &mut g);
                let phi_p = net.predict(&g);
                probe(-eps, &mut p, &mut g);
                let phi_m = net.predict(&g);
                p.positions[dev] = orig;
                g.update_positions(&p);
                let numeric = (phi_p - phi_m) / (2.0 * eps);
                let analytic = if axis == 0 {
                    grads[dev].0
                } else {
                    grads[dev].1
                };
                assert!(
                    (numeric - analytic).abs() < 1e-6 + 1e-4 * numeric.abs(),
                    "device {dev} axis {axis}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn text_serialization_roundtrips() {
        let g = test_graph();
        let net = Network::new(5, 3, 13);
        let text = net.to_text();
        let back = Network::from_text(&text).expect("roundtrip parses");
        assert!((net.predict(&g) - back.predict(&g)).abs() < 1e-12);
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(Network::from_text("").is_err());
        assert!(Network::from_text("gnn-v1 9 4").is_err());
        assert!(Network::from_text("gnn-v1 9 4 3\nw1 nope").is_err());
    }

    #[test]
    fn sgd_reduces_loss() {
        let g = test_graph();
        let mut net = Network::default_config(11);
        let label = 0.0;
        let (l0, _) = net.loss_gradients(&g, label);
        for _ in 0..50 {
            let (_, grads) = net.loss_gradients(&g, label);
            net.apply_grads(&grads, 0.1);
        }
        let (l1, _) = net.loss_gradients(&g, label);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }
}
