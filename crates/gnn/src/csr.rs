//! Compressed-sparse-row adjacency for the message-passing hot path.
//!
//! [`crate::CircuitGraph`] prunes rails and caps nets at 16 pins, so the
//! normalized adjacency `Â` is sparse by construction — a handful of
//! nonzeros per row regardless of circuit size. The dense `n × n`
//! [`crate::Matrix`] stays in the graph as the retained reference (the
//! property tests in `proptests.rs` pin the two against each other), while
//! every shipping forward/backward pass multiplies through this CSR plan.
//!
//! **Bit-identity contract.** [`CsrAdjacency::spmm_into`] accumulates each
//! output row in ascending column order, exactly the `k` order of
//! [`crate::Matrix::matmul_into`], and [`from_dense`](CsrAdjacency::from_dense)
//! stores precisely the entries the dense kernel does not skip
//! (`value != 0.0`). The sparse product is therefore bit-identical to the
//! dense one — same partial sums in the same order, zeros skipped on both
//! sides — not merely close.
//!
//! `Â` is symmetric (bit-for-bit: the graph builder writes `(i,j)` and
//! `(j,i)` through the same accumulation, and `(dᵢ·dⱼ).sqrt()` is
//! commutative), so the backward pass reuses the same plan for `Âᵀ·B`.

use crate::Matrix;

/// Calls into the sparse matmul kernel (all layers, forward and backward).
static SPMM_CALLS: placer_telemetry::Counter = placer_telemetry::Counter::new("gnn_spmm");
/// Nonzeros streamed through the kernel (`nnz` per call, summed).
static SPMM_NNZ: placer_telemetry::Counter = placer_telemetry::Counter::new("gnn_spmm_nnz");

/// A sparse row-major adjacency plan: row pointers, ascending column
/// indices, and the normalized weights, built once per circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    n: usize,
    /// `row_start[i]..row_start[i + 1]` indexes row `i`'s entries.
    row_start: Vec<u32>,
    /// Column indices, ascending within each row.
    col: Vec<u32>,
    /// Entry values, parallel to `col`.
    val: Vec<f64>,
}

impl CsrAdjacency {
    /// Extracts the sparsity plan of a square dense matrix.
    ///
    /// Entries equal to `0.0` are dropped — the same test
    /// [`Matrix::matmul_into`] uses to skip work — so multiplying through
    /// the plan reproduces the dense product bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not square.
    pub fn from_dense(dense: &Matrix) -> Self {
        assert_eq!(dense.rows(), dense.cols(), "adjacency must be square");
        let n = dense.rows();
        let mut row_start = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_start.push(0u32);
        for i in 0..n {
            for j in 0..n {
                let v = dense.get(i, j);
                if v != 0.0 {
                    col.push(j as u32);
                    val.push(v);
                }
            }
            row_start.push(col.len() as u32);
        }
        Self {
            n,
            row_start,
            col,
            val,
        }
    }

    /// Number of rows (= columns).
    pub fn num_rows(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Sparse–dense product `self × rhs` written into `out`,
    /// allocation-free and **bit-identical** to
    /// `dense.matmul_into(rhs, out)` for the dense matrix this plan was
    /// extracted from (same accumulation order, same zeros skipped).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmm_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.n, rhs.rows(), "spmm dimension mismatch");
        assert_eq!(
            (out.rows(), out.cols()),
            (self.n, rhs.cols()),
            "spmm output shape mismatch"
        );
        SPMM_CALLS.add(1);
        SPMM_NNZ.add(self.val.len() as u64);
        let cols = rhs.cols();
        let rhs_data = rhs.as_slice();
        let out_data = out.as_mut_slice();
        out_data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.n {
            let row = &mut out_data[i * cols..(i + 1) * cols];
            let s = self.row_start[i] as usize;
            let e = self.row_start[i + 1] as usize;
            for (&k, &v) in self.col[s..e].iter().zip(&self.val[s..e]) {
                let src = &rhs_data[k as usize * cols..(k as usize + 1) * cols];
                // Elementwise multiply-add (no FMA, no re-association), so
                // the SIMD dispatch preserves the bit-identity contract.
                placer_simd::axpy(row, v, src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sparse() -> Matrix {
        let mut m = Matrix::zeros(4, 4);
        m.set(0, 0, 0.5);
        m.set(0, 2, 0.25);
        m.set(1, 1, 1.0);
        m.set(2, 0, 0.25);
        m.set(2, 2, 0.5);
        m.set(3, 3, 0.125);
        m
    }

    #[test]
    fn from_dense_captures_exact_sparsity() {
        let m = sample_sparse();
        let csr = CsrAdjacency::from_dense(&m);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.nnz(), 6);
    }

    #[test]
    fn spmm_matches_dense_bitwise() {
        let m = sample_sparse();
        let csr = CsrAdjacency::from_dense(&m);
        let rhs = Matrix::from_rows(&[
            &[1.0, -2.0, 3.0],
            &[0.1, 0.2, 0.3],
            &[7.0, 1e-3, -4.0],
            &[0.0, 5.0, 9.0],
        ]);
        let mut dense_out = Matrix::zeros(4, 3);
        let mut csr_out = Matrix::zeros(4, 3);
        m.matmul_into(&rhs, &mut dense_out);
        csr.spmm_into(&rhs, &mut csr_out);
        for (a, b) in dense_out.as_slice().iter().zip(csr_out.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmm_shape_checked() {
        let csr = CsrAdjacency::from_dense(&sample_sparse());
        let rhs = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(4, 2);
        csr.spmm_into(&rhs, &mut out);
    }
}
