//! Property-based tests pinning the CSR message-passing engine to the
//! retained dense reference, bit for bit, over random sparse graphs.
//!
//! Strategy inputs are small (seed, node count, sparsity) and the graphs
//! are materialised with `StdRng` inside each case: a random **bitwise
//! symmetric** adjacency (the backward pass folds `Âᵀ` into `Â`, which is
//! only valid because the graph builder produces an exactly symmetric
//! normalised adjacency — the generator mirrors that contract by writing
//! the identical f64 to `(i,j)` and `(j,i)`), plus random node features.

#![cfg(test)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrAdjacency;
use crate::graph::FEATURES;
use crate::matrix::Matrix;
use crate::network::{GradScratch, InferenceScratch, TrainScratch};
use crate::{CircuitGraph, Network};

/// Random bitwise-symmetric `n × n` adjacency with self-loops and roughly
/// `density` off-diagonal fill, mimicking the normalised Â the graph
/// builder emits (positive weights, symmetric, nonzero diagonal).
fn random_symmetric_adjacency(n: usize, density: f64, rng: &mut StdRng) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a.set(i, i, 0.2 + rng.gen::<f64>());
        for j in (i + 1)..n {
            if rng.gen::<f64>() < density {
                let w = 0.05 + rng.gen::<f64>();
                a.set(i, j, w);
                a.set(j, i, w);
            }
        }
    }
    a
}

fn random_features(n: usize, rng: &mut StdRng) -> Matrix {
    let mut x = Matrix::zeros(n, FEATURES);
    for i in 0..n {
        for c in 0..FEATURES {
            x.set(i, c, rng.gen::<f64>() * 2.0 - 1.0);
        }
    }
    x
}

fn random_graph(n: usize, density: f64, seed: u64) -> CircuitGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_symmetric_adjacency(n, density, &mut rng);
    let x = random_features(n, &mut rng);
    CircuitGraph::from_parts(a, x, 20.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The CSR SpMM kernel reproduces dense `A·B` bit-for-bit on random
    /// sparse matrices — same per-row accumulation order, same skips.
    #[test]
    fn spmm_is_bit_identical_to_dense_matmul(
        seed in 0u64..1u64 << 48,
        n in 2usize..24,
        density_pct in 0usize..=100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_symmetric_adjacency(n, density_pct as f64 / 100.0, &mut rng);
        let mut b = Matrix::zeros(n, 5);
        for v in b.as_mut_slice() {
            *v = rng.gen::<f64>() * 4.0 - 2.0;
        }
        let csr = CsrAdjacency::from_dense(&a);
        let mut dense = Matrix::zeros(n, 5);
        a.matmul_into(&b, &mut dense);
        let mut sparse = Matrix::zeros(n, 5);
        csr.spmm_into(&b, &mut sparse);
        for (d, s) in dense.as_slice().iter().zip(sparse.as_slice()) {
            prop_assert_eq!(d.to_bits(), s.to_bits());
        }
    }

    /// CSR forward (`predict_with`) ≡ dense forward (`predict`) bitwise on
    /// random sparse graphs.
    #[test]
    fn csr_forward_matches_dense_forward_bitwise(
        seed in 0u64..1u64 << 48,
        n in 2usize..16,
        density_pct in 0usize..=100,
    ) {
        let graph = random_graph(n, density_pct as f64 / 100.0, seed);
        let network = Network::default_config(seed ^ 0x9e37);
        let dense = network.predict(&graph);
        let mut scratch = InferenceScratch::new(&network, n);
        let sparse = network.predict_with(&graph, &mut scratch);
        prop_assert_eq!(dense.to_bits(), sparse.to_bits());
    }

    /// CSR input-gradient backward ≡ dense full backward bitwise: same Φ,
    /// same (x, y) gradient for every node.
    #[test]
    fn csr_position_gradient_matches_dense_backward_bitwise(
        seed in 0u64..1u64 << 48,
        n in 2usize..16,
        density_pct in 0usize..=100,
    ) {
        let graph = random_graph(n, density_pct as f64 / 100.0, seed);
        let network = Network::default_config(seed ^ 0x51ed);
        let (phi_ref, grads_ref) = network.position_gradient_reference(&graph);
        let mut scratch = GradScratch::new(&network, n);
        let mut grads = vec![(0.0, 0.0); n];
        let phi = network.position_gradient_with(&graph, &mut scratch, &mut grads);
        prop_assert_eq!(phi_ref.to_bits(), phi.to_bits());
        for (r, g) in grads_ref.iter().zip(&grads) {
            prop_assert_eq!(r.0.to_bits(), g.0.to_bits());
            prop_assert_eq!(r.1.to_bits(), g.1.to_bits());
        }
    }

    /// CSR parameter-gradient backward ≡ dense reference bitwise: same
    /// loss, same gradient for every parameter (compared in flatten order).
    #[test]
    fn csr_loss_gradients_match_dense_backward_bitwise(
        seed in 0u64..1u64 << 48,
        n in 2usize..16,
        density_pct in 0usize..=100,
        label_bit in 0usize..=1,
    ) {
        let graph = random_graph(n, density_pct as f64 / 100.0, seed);
        let network = Network::default_config(seed ^ 0xabcd);
        let label = label_bit as f64;
        let (loss_ref, grads_ref) = network.loss_gradients(&graph, label);
        let mut scratch = TrainScratch::new(&network, n);
        let mut grads = crate::network::ParamGrads::zeros(&network);
        let loss = network.loss_gradients_with(&graph, label, &mut scratch, &mut grads);
        prop_assert_eq!(loss_ref.to_bits(), loss.to_bits());
        let flat_ref = grads_ref.flatten();
        let flat = grads.flatten();
        prop_assert_eq!(flat_ref.len(), flat.len());
        for (r, g) in flat_ref.iter().zip(&flat) {
            prop_assert_eq!(r.to_bits(), g.to_bits());
        }
    }
}
