//! Minimal dense matrix type for the GNN kernels.

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use placer_gnn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have rows");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have columns");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Creates from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds to an element.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Flat data view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` written into a caller-owned matrix,
    /// allocation-free and bit-identical to [`matmul`](Self::matmul)
    /// (same accumulation order).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let src = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                // Elementwise multiply-add keeps this bit-identical to the
                // scalar loop under every SIMD backend.
                placer_simd::axpy(row, aik, src);
            }
        }
    }

    /// Transposed product `selfᵀ × rhs` written into a caller-owned matrix.
    ///
    /// Allocation-free and bit-identical to
    /// `self.transpose().matmul(rhs)`: output row `k` accumulates over the
    /// input rows `i` in ascending order, skipping `self[i][k] == 0.0`
    /// exactly as [`matmul_into`](Self::matmul_into) skips its zeros.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "atb dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, rhs.cols),
            "atb output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for k in 0..self.cols {
            let row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
            for i in 0..self.rows {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let src = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
                placer_simd::axpy(row, aik, src);
            }
        }
    }

    /// Product against a transposed right-hand side, `self × rhsᵀ`, written
    /// into a caller-owned matrix.
    ///
    /// Allocation-free and bit-identical to
    /// `self.matmul(&rhs.transpose())` (same accumulation order, same
    /// zero-skip on `self`'s entries).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_a_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "abt dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.rows),
            "abt output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for (j, o) in row.iter_mut().enumerate() {
                    *o += aik * rhs.data[j * rhs.cols + k];
                }
            }
        }
    }

    /// Column-restricted [`matmul_a_bt_into`](Self::matmul_a_bt_into):
    /// computes only the output columns `cols` (rows of `rhs`), writing
    /// column `c` of the selection into column `c` of `out`.
    ///
    /// Each computed element is bit-identical to the corresponding element
    /// of the full product — per-element accumulation runs over `k` in the
    /// same ascending order with the same zero-skip — which is what lets
    /// the position-gradient backward pass touch only the x/y feature
    /// columns without perturbing their values.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_a_bt_cols_into(&self, rhs: &Matrix, cols: &[usize], out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "abt dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, cols.len()),
            "abt output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let row = &mut out.data[i * cols.len()..(i + 1) * cols.len()];
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for (o, &j) in row.iter_mut().zip(cols) {
                    *o += aik * rhs.data[j * rhs.cols + k];
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a row vector to every row (broadcast bias).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias[j];
            }
        }
        out
    }

    /// Mean of each column (1 × cols as a Vec).
    pub fn column_mean(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                mean[j] += self.data[i * self.cols + j];
            }
        }
        for m in &mut mean {
            *m /= self.rows as f64;
        }
        mean
    }

    /// Sum of each column.
    pub fn column_sum(&self) -> Vec<f64> {
        let mut sum = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                sum[j] += self.data[i * self.cols + j];
            }
        }
        sum
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn broadcast_and_stats() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let biased = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(biased.get(1, 1), 24.0);
        assert_eq!(a.column_mean(), vec![2.0, 3.0]);
        assert_eq!(a.column_sum(), vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transposed_products_match_allocating_forms_bitwise() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, -2.5], &[0.25, 3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 4.0]]);
        let c = Matrix::from_rows(&[&[1.5, 0.5, 2.0], &[-3.0, 0.0, 1.0]]);

        let mut atb = Matrix::zeros(3, 2);
        a.matmul_at_b_into(&b, &mut atb);
        let want = a.transpose().matmul(&b);
        for (x, y) in atb.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        let mut abt = Matrix::zeros(2, 2);
        a.matmul_a_bt_into(&c, &mut abt);
        let want = a.matmul(&c.transpose());
        for (x, y) in abt.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // Column-restricted form reproduces the selected columns exactly.
        let mut sel = Matrix::zeros(2, 1);
        a.matmul_a_bt_cols_into(&c, &[1], &mut sel);
        assert_eq!(sel.get(0, 0).to_bits(), want.get(0, 1).to_bits());
        assert_eq!(sel.get(1, 0).to_bits(), want.get(1, 1).to_bits());
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
