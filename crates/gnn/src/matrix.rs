//! Minimal dense matrix type for the GNN kernels.

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use placer_gnn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have rows");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have columns");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Creates from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds to an element.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Flat data view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` written into a caller-owned matrix,
    /// allocation-free and bit-identical to [`matmul`](Self::matmul)
    /// (same accumulation order).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += aik * rhs.data[k * rhs.cols + j];
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a row vector to every row (broadcast bias).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias[j];
            }
        }
        out
    }

    /// Mean of each column (1 × cols as a Vec).
    pub fn column_mean(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                mean[j] += self.data[i * self.cols + j];
            }
        }
        for m in &mut mean {
            *m /= self.rows as f64;
        }
        mean
    }

    /// Sum of each column.
    pub fn column_sum(&self) -> Vec<f64> {
        let mut sum = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                sum[j] += self.data[i * self.cols + j];
            }
        }
        sum
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn broadcast_and_stats() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let biased = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(biased.get(1, 1), 24.0);
        assert_eq!(a.column_mean(), vec![2.0, 3.0]);
        assert_eq!(a.column_sum(), vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
