//! Adam trainer for the performance model.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{CircuitGraph, Network};

/// One labeled training sample: a circuit graph and whether its FOM fell
/// below the specification threshold (label 1 = unsatisfactory, as in the
/// paper).
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// The circuit graph (features frozen at sample creation).
    pub graph: CircuitGraph,
    /// Target probability (0.0 = satisfactory performance, 1.0 = not).
    pub label: f64,
}

/// Options for [`Trainer::fit`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.01,
            seed: 42,
        }
    }
}

/// Adam state (first/second moments per parameter).
#[derive(Debug, Clone)]
pub struct Trainer {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Trainer {
    /// Creates a fresh Adam state.
    pub fn new() -> Self {
        Self {
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    fn adam_step(&mut self, network: &mut Network, grad: &[f64], lr: f64) {
        if self.m.is_empty() {
            self.m = vec![0.0; grad.len()];
            self.v = vec![0.0; grad.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut params = network.params_mut();
        assert_eq!(params.len(), grad.len(), "parameter count changed");
        for i in 0..grad.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            *params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Trains the network with mini-batch Adam on cross-entropy loss.
    /// Returns the mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `batch_size` is zero.
    pub fn fit(
        &mut self,
        network: &mut Network,
        samples: &[TrainingSample],
        opts: &TrainOptions,
    ) -> f64 {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("gnn_fit");
        let _span = SPAN.enter();
        assert!(!samples.is_empty(), "training set must not be empty");
        assert!(opts.batch_size > 0, "batch size must be nonzero");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_epoch_loss = f64::INFINITY;
        for epoch in 0..opts.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut grad_sq = 0.0;
            for chunk in order.chunks(opts.batch_size) {
                let mut acc: Option<crate::network::ParamGrads> = None;
                for &i in chunk {
                    let (loss, grads) = network.loss_gradients(&samples[i].graph, samples[i].label);
                    epoch_loss += loss;
                    match &mut acc {
                        None => acc = Some(grads),
                        Some(a) => a.accumulate(&grads),
                    }
                }
                if let Some(mut a) = acc {
                    a.scale(1.0 / chunk.len() as f64);
                    let flat = a.flatten();
                    if placer_telemetry::active() {
                        grad_sq += flat.iter().map(|g| g * g).sum::<f64>();
                    }
                    self.adam_step(network, &flat, opts.learning_rate);
                }
            }
            last_epoch_loss = epoch_loss / samples.len() as f64;
            if placer_telemetry::active() {
                placer_telemetry::record(
                    "gnn_epoch",
                    &[
                        ("epoch", epoch as f64),
                        ("loss", last_epoch_loss),
                        ("grad_norm", grad_sq.sqrt()),
                    ],
                );
            }
        }
        if placer_telemetry::active() {
            placer_telemetry::flush();
        }
        last_epoch_loss
    }

    /// Classification accuracy at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn accuracy(network: &Network, samples: &[TrainingSample]) -> f64 {
        assert!(!samples.is_empty(), "evaluation set must not be empty");
        let correct = samples
            .iter()
            .filter(|s| (network.predict(&s.graph) > 0.5) == (s.label > 0.5))
            .count();
        correct as f64 / samples.len() as f64
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::{testcases, Placement};
    use rand::Rng;

    /// Builds a toy dataset where the label is determined by how spread the
    /// placement is: tight placements (small coordinates) are "good" (0),
    /// scattered ones "bad" (1). The GNN must learn this from positions.
    fn toy_dataset(n: usize, seed: u64) -> Vec<TrainingSample> {
        let circuit = testcases::cc_ota();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let bad = i % 2 == 1;
                let spread = if bad { 9.0 } else { 1.5 };
                let mut p = Placement::new(circuit.num_devices());
                for pos in &mut p.positions {
                    *pos = (rng.gen_range(0.0..spread), rng.gen_range(0.0..spread));
                }
                TrainingSample {
                    graph: CircuitGraph::new(&circuit, &p, 10.0),
                    label: if bad { 1.0 } else { 0.0 },
                }
            })
            .collect()
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let train = toy_dataset(120, 1);
        let test = toy_dataset(40, 2);
        let mut net = Network::default_config(3);
        let mut trainer = Trainer::new();
        let loss = trainer.fit(
            &mut net,
            &train,
            &TrainOptions {
                epochs: 60,
                ..TrainOptions::default()
            },
        );
        assert!(loss < 0.4, "final loss too high: {loss}");
        let acc = Trainer::accuracy(&net, &test);
        assert!(acc > 0.85, "test accuracy too low: {acc}");
    }

    #[test]
    fn trained_gradient_points_toward_lower_phi_for_tightening() {
        // After training "spread = bad", moving an outlier device inward
        // should reduce Φ, i.e. the position gradient must point outward.
        let train = toy_dataset(120, 5);
        let mut net = Network::default_config(9);
        let mut trainer = Trainer::new();
        trainer.fit(&mut net, &train, &TrainOptions::default());

        let circuit = testcases::cc_ota();
        let mut p = Placement::new(circuit.num_devices());
        for pos in &mut p.positions {
            *pos = (1.0, 1.0);
        }
        p.positions[0] = (9.5, 9.5); // one outlier
        let g = CircuitGraph::new(&circuit, &p, 10.0);
        let (phi, grads) = net.position_gradient(&g);
        // Gradient descent direction −∂Φ/∂v on the outlier should pull it
        // back toward the cluster (negative x step), i.e. gradient positive.
        assert!(phi > 0.0);
        assert!(
            grads[0].0 > 0.0 || grads[0].1 > 0.0,
            "outlier gradient should point outward: {:?}",
            grads[0]
        );
    }

    #[test]
    fn accuracy_of_constant_predictor_is_half() {
        let samples = toy_dataset(40, 7);
        let net = Network::default_config(1);
        let acc = Trainer::accuracy(&net, &samples);
        // Untrained net predicts near 0.5; accuracy should be 0/0.5/1-ish
        // but on a balanced set it cannot exceed the majority by much.
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_rejected() {
        let mut net = Network::default_config(1);
        let mut t = Trainer::new();
        let _ = t.fit(&mut net, &[], &TrainOptions::default());
    }
}
