//! Adam trainer for the performance model.
//!
//! [`Trainer::fit`] accumulates each mini-batch's gradients data-parallel
//! over `placer-parallel`: the batch is cut into [`GRAD_BLOCKS`] fixed
//! blocks (boundaries depend only on the batch size, never on thread
//! availability), each block sums its samples' [`ParamGrads`] in index
//! order, and the caller thread reduces the block sums in block order —
//! so training is **bit-identical for any thread count**, the same
//! discipline the SA chains follow. The Adam update then walks the
//! `(parameter, gradient)` pairs in place; no flat gradient vector is
//! materialized per batch.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::network::ParamGrads;
use crate::{CircuitGraph, Network, TrainScratch};

/// Fixed number of gradient-accumulation blocks per mini-batch. A constant
/// (not the thread count) so block boundaries — and therefore the
/// floating-point reduction order — never depend on available parallelism.
const GRAD_BLOCKS: usize = 8;

/// Reusable per-block worker state for the parallel gradient accumulation.
struct BlockAcc {
    /// Forward/backward scratch, rebuilt only when the node count changes.
    scratch: Option<TrainScratch>,
    /// Per-sample gradient target (overwritten by each sample).
    sample: ParamGrads,
    /// Block-level gradient sum, reduced on the caller thread.
    acc: ParamGrads,
    /// Block-level loss sum.
    loss: f64,
}

/// One labeled training sample: a circuit graph and whether its FOM fell
/// below the specification threshold (label 1 = unsatisfactory, as in the
/// paper).
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// The circuit graph (features frozen at sample creation).
    pub graph: CircuitGraph,
    /// Target probability (0.0 = satisfactory performance, 1.0 = not).
    pub label: f64,
}

/// Options for [`Trainer::fit`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.01,
            seed: 42,
        }
    }
}

/// Adam state (first/second moments per parameter).
#[derive(Debug, Clone)]
pub struct Trainer {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Trainer {
    /// Creates a fresh Adam state.
    pub fn new() -> Self {
        Self {
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    fn adam_step(&mut self, network: &mut Network, grad: &[f64], lr: f64) {
        if self.m.is_empty() {
            self.m = vec![0.0; grad.len()];
            self.v = vec![0.0; grad.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut params = network.params_mut();
        assert_eq!(params.len(), grad.len(), "parameter count changed");
        for i in 0..grad.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            *params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// In-place Adam update: walks the `(parameter, gradient)` pairs in
    /// flatten order, updating moments and parameters without building a
    /// flat gradient vector. Returns the batch's `Σg²` (accumulated in the
    /// same order the flattened reference sums it) for the grad-norm
    /// telemetry.
    fn adam_step_in_place(&mut self, network: &mut Network, grads: &ParamGrads, lr: f64) -> f64 {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut i = 0usize;
        let mut grad_sq = 0.0;
        network.for_each_param_mut(grads, |p, g| {
            if i == m.len() {
                // First batch: moments grow to the parameter count.
                m.push(0.0);
                v.push(0.0);
            }
            grad_sq += g * g;
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
            i += 1;
        });
        assert_eq!(i, m.len(), "parameter count changed");
        grad_sq
    }

    /// Trains the network with mini-batch Adam on cross-entropy loss.
    /// Returns the mean loss of the final epoch.
    ///
    /// Gradients are accumulated data-parallel over [`GRAD_BLOCKS`] fixed
    /// blocks per batch and reduced in block order, so the trained network
    /// is bit-identical for any thread count (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `batch_size` is zero.
    pub fn fit(
        &mut self,
        network: &mut Network,
        samples: &[TrainingSample],
        opts: &TrainOptions,
    ) -> f64 {
        self.fit_interruptible(network, samples, opts, &mut |_| false)
    }

    /// [`fit`](Self::fit) with a cooperative stop hook, polled once per
    /// epoch (never inside the batch loop) with the index of the epoch
    /// about to run. Returning `true` stops training at that boundary, so
    /// a run stopped before epoch `k` leaves the network bit-identical to
    /// a fresh `fit` with `opts.epochs == k`. This is how the job engine's
    /// `RunBudget`-style cancellation reaches training without this
    /// crate depending on the placer stack (the budget lives above us in
    /// the dependency DAG; callers adapt it to a closure).
    ///
    /// Returns the mean loss of the last *finished* epoch (infinity when
    /// stopped before the first).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `batch_size` is zero.
    pub fn fit_interruptible(
        &mut self,
        network: &mut Network,
        samples: &[TrainingSample],
        opts: &TrainOptions,
        should_stop: &mut dyn FnMut(usize) -> bool,
    ) -> f64 {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("gnn_fit");
        let _span = SPAN.enter();
        assert!(!samples.is_empty(), "training set must not be empty");
        assert!(opts.batch_size > 0, "batch size must be nonzero");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        // Block accumulators and the reduced batch gradient live for the
        // whole fit; inside the epoch loop the hot path reuses them.
        let slots: Vec<Mutex<BlockAcc>> = (0..GRAD_BLOCKS)
            .map(|_| {
                Mutex::new(BlockAcc {
                    scratch: None,
                    sample: ParamGrads::zeros(network),
                    acc: ParamGrads::zeros(network),
                    loss: 0.0,
                })
            })
            .collect();
        let mut total = ParamGrads::zeros(network);
        let mut last_epoch_loss = f64::INFINITY;
        for epoch in 0..opts.epochs {
            if should_stop(epoch) {
                break;
            }
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut grad_sq = 0.0;
            for chunk in order.chunks(opts.batch_size) {
                let blocks = placer_parallel::fixed_blocks(chunk.len(), GRAD_BLOCKS);
                let net_ref: &Network = network;
                placer_parallel::for_each_block(chunk.len(), GRAD_BLOCKS, |b, range| {
                    let mut slot = slots[b].lock().expect("unpoisoned block slot");
                    let slot = &mut *slot;
                    slot.acc.zero();
                    slot.loss = 0.0;
                    for idx in range {
                        let sample = &samples[chunk[idx]];
                        let n = sample.graph.num_nodes();
                        if !matches!(&slot.scratch, Some(s) if s.num_nodes() == n) {
                            slot.scratch = Some(TrainScratch::new(net_ref, n));
                        }
                        let scratch = slot.scratch.as_mut().expect("scratch just ensured");
                        slot.loss += net_ref.loss_gradients_with(
                            &sample.graph,
                            sample.label,
                            scratch,
                            &mut slot.sample,
                        );
                        slot.acc.accumulate(&slot.sample);
                    }
                });
                // In-order reduce on the caller thread: block boundaries and
                // this loop fix the summation order for every thread count.
                total.zero();
                for slot in slots.iter().take(blocks.len()) {
                    let slot = slot.lock().expect("unpoisoned block slot");
                    total.accumulate(&slot.acc);
                    epoch_loss += slot.loss;
                }
                total.scale(1.0 / chunk.len() as f64);
                grad_sq += self.adam_step_in_place(network, &total, opts.learning_rate);
            }
            last_epoch_loss = epoch_loss / samples.len() as f64;
            if placer_telemetry::active() {
                placer_telemetry::record(
                    "gnn_epoch",
                    &[
                        ("epoch", epoch as f64),
                        ("epochs", opts.epochs as f64),
                        ("loss", last_epoch_loss),
                        ("grad_norm", grad_sq.sqrt()),
                    ],
                );
            }
        }
        if placer_telemetry::active() {
            placer_telemetry::flush();
        }
        last_epoch_loss
    }

    /// Retained sequential reference of [`fit`](Self::fit): per-sample
    /// dense-path gradient accumulation in shuffle order and a flattening
    /// Adam step, exactly the pre-CSR trainer. Kept as the bench "before"
    /// leg; its per-batch summation order differs from `fit`, so the two
    /// converge to (slightly) different parameters.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `batch_size` is zero.
    pub fn fit_reference(
        &mut self,
        network: &mut Network,
        samples: &[TrainingSample],
        opts: &TrainOptions,
    ) -> f64 {
        assert!(!samples.is_empty(), "training set must not be empty");
        assert!(opts.batch_size > 0, "batch size must be nonzero");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_epoch_loss = f64::INFINITY;
        for _epoch in 0..opts.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(opts.batch_size) {
                let mut acc: Option<ParamGrads> = None;
                for &i in chunk {
                    let (loss, grads) = network.loss_gradients(&samples[i].graph, samples[i].label);
                    epoch_loss += loss;
                    match &mut acc {
                        None => acc = Some(grads),
                        Some(a) => a.accumulate(&grads),
                    }
                }
                if let Some(mut a) = acc {
                    a.scale(1.0 / chunk.len() as f64);
                    let flat = a.flatten();
                    self.adam_step(network, &flat, opts.learning_rate);
                }
            }
            last_epoch_loss = epoch_loss / samples.len() as f64;
        }
        last_epoch_loss
    }

    /// Classification accuracy at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn accuracy(network: &Network, samples: &[TrainingSample]) -> f64 {
        assert!(!samples.is_empty(), "evaluation set must not be empty");
        let correct = samples
            .iter()
            .filter(|s| (network.predict(&s.graph) > 0.5) == (s.label > 0.5))
            .count();
        correct as f64 / samples.len() as f64
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::{testcases, Placement};
    use rand::Rng;

    /// Builds a toy dataset where the label is determined by how spread the
    /// placement is: tight placements (small coordinates) are "good" (0),
    /// scattered ones "bad" (1). The GNN must learn this from positions.
    fn toy_dataset(n: usize, seed: u64) -> Vec<TrainingSample> {
        let circuit = testcases::cc_ota();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let bad = i % 2 == 1;
                let spread = if bad { 9.0 } else { 1.5 };
                let mut p = Placement::new(circuit.num_devices());
                for pos in &mut p.positions {
                    *pos = (rng.gen_range(0.0..spread), rng.gen_range(0.0..spread));
                }
                TrainingSample {
                    graph: CircuitGraph::new(&circuit, &p, 10.0),
                    label: if bad { 1.0 } else { 0.0 },
                }
            })
            .collect()
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let train = toy_dataset(120, 1);
        let test = toy_dataset(40, 2);
        let mut net = Network::default_config(3);
        let mut trainer = Trainer::new();
        let loss = trainer.fit(
            &mut net,
            &train,
            &TrainOptions {
                epochs: 60,
                ..TrainOptions::default()
            },
        );
        assert!(loss < 0.4, "final loss too high: {loss}");
        let acc = Trainer::accuracy(&net, &test);
        assert!(acc > 0.85, "test accuracy too low: {acc}");
    }

    #[test]
    fn trained_gradient_points_toward_lower_phi_for_tightening() {
        // After training "spread = bad", moving an outlier device inward
        // should reduce Φ, i.e. the position gradient must point outward.
        let train = toy_dataset(120, 5);
        let mut net = Network::default_config(9);
        let mut trainer = Trainer::new();
        trainer.fit(&mut net, &train, &TrainOptions::default());

        let circuit = testcases::cc_ota();
        let mut p = Placement::new(circuit.num_devices());
        for pos in &mut p.positions {
            *pos = (1.0, 1.0);
        }
        p.positions[0] = (9.5, 9.5); // one outlier
        let g = CircuitGraph::new(&circuit, &p, 10.0);
        let (phi, grads) = net.position_gradient(&g);
        // Gradient descent direction −∂Φ/∂v on the outlier should pull it
        // back toward the cluster (negative x step), i.e. gradient positive.
        assert!(phi > 0.0);
        assert!(
            grads[0].0 > 0.0 || grads[0].1 > 0.0,
            "outlier gradient should point outward: {:?}",
            grads[0]
        );
    }

    #[test]
    fn accuracy_of_constant_predictor_is_half() {
        let samples = toy_dataset(40, 7);
        let net = Network::default_config(1);
        let acc = Trainer::accuracy(&net, &samples);
        // Untrained net predicts near 0.5; accuracy should be 0/0.5/1-ish
        // but on a balanced set it cannot exceed the majority by much.
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_rejected() {
        let mut net = Network::default_config(1);
        let mut t = Trainer::new();
        let _ = t.fit(&mut net, &[], &TrainOptions::default());
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let train = toy_dataset(60, 11);
        let opts = TrainOptions {
            epochs: 5,
            ..TrainOptions::default()
        };
        let run = |threads: usize| {
            placer_parallel::set_max_threads(threads);
            let mut net = Network::default_config(5);
            let mut trainer = Trainer::new();
            let loss = trainer.fit(&mut net, &train, &opts);
            placer_parallel::set_max_threads(0);
            (loss, net.to_text())
        };
        let (loss_one, net_one) = run(1);
        let (loss_many, net_many) = run(4);
        assert_eq!(loss_one.to_bits(), loss_many.to_bits());
        assert_eq!(net_one, net_many, "trained parameters diverged");
    }

    #[test]
    fn fit_handles_mixed_circuit_sizes() {
        // Two circuits with different node counts in one batch force the
        // per-block scratch to resize mid-stream.
        let small = testcases::cc_ota();
        let large = testcases::adder();
        let mut samples = Vec::new();
        for i in 0..12 {
            let circuit = if i % 2 == 0 { &small } else { &large };
            let mut p = Placement::new(circuit.num_devices());
            for (d, pos) in p.positions.iter_mut().enumerate() {
                *pos = ((d % 3) as f64 + i as f64 * 0.1, (d / 3) as f64);
            }
            samples.push(TrainingSample {
                graph: CircuitGraph::new(circuit, &p, 10.0),
                label: (i % 2) as f64,
            });
        }
        let mut net = Network::default_config(2);
        let mut trainer = Trainer::new();
        let loss = trainer.fit(
            &mut net,
            &samples,
            &TrainOptions {
                epochs: 3,
                batch_size: 4,
                ..TrainOptions::default()
            },
        );
        assert!(loss.is_finite(), "loss diverged: {loss}");
    }

    #[test]
    fn interrupted_fit_matches_shorter_fit_bit_for_bit() {
        let train = toy_dataset(40, 17);
        let full_opts = TrainOptions {
            epochs: 12,
            ..TrainOptions::default()
        };
        for stop_at in [0usize, 1, 5] {
            let mut net_stopped = Network::default_config(4);
            let mut stopped_loss = Trainer::new().fit_interruptible(
                &mut net_stopped,
                &train,
                &full_opts,
                &mut |epoch| epoch >= stop_at,
            );
            let mut net_short = Network::default_config(4);
            let short_loss = Trainer::new().fit(
                &mut net_short,
                &train,
                &TrainOptions {
                    epochs: stop_at,
                    ..full_opts.clone()
                },
            );
            if stop_at == 0 {
                assert!(stopped_loss.is_infinite() && short_loss.is_infinite());
                stopped_loss = short_loss;
            }
            assert_eq!(
                stopped_loss.to_bits(),
                short_loss.to_bits(),
                "stop_at={stop_at}"
            );
            assert_eq!(
                net_stopped.to_text(),
                net_short.to_text(),
                "stop_at={stop_at}: parameters diverged"
            );
        }
    }

    #[test]
    fn fit_and_reference_both_learn_the_same_data() {
        // The parallel fit's block-ordered summation differs from the
        // reference's sample-ordered one, so parameters are not bit-equal —
        // but both must converge on the separable toy task.
        let train = toy_dataset(80, 21);
        let opts = TrainOptions {
            epochs: 40,
            ..TrainOptions::default()
        };
        let mut net_a = Network::default_config(13);
        let mut net_b = net_a.clone();
        let loss_fit = Trainer::new().fit(&mut net_a, &train, &opts);
        let loss_ref = Trainer::new().fit_reference(&mut net_b, &train, &opts);
        assert!(loss_fit < 0.4, "parallel fit failed to learn: {loss_fit}");
        assert!(loss_ref < 0.4, "reference fit failed to learn: {loss_ref}");
    }
}
