//! Circuit-to-graph feature extraction.
//!
//! Mirrors the input encoding of the ICCAD'20 GNN performance model \[19\]:
//! node = device, features = type one-hot ⊕ normalized position ⊕ log-size,
//! edges = shared nets weighted by `1/(|net|−1)`, symmetrically normalized
//! with self-loops (`Â = D^{-1/2}(A+I)D^{-1/2}`).

use analog_netlist::{Circuit, DeviceKind, Placement};

use crate::{CsrAdjacency, Matrix};

/// Number of device-kind slots in the one-hot encoding.
pub const KIND_SLOTS: usize = 6;
/// Total node feature width: kind one-hot, x, y, log-area, criticality.
pub const FEATURES: usize = KIND_SLOTS + 4;
/// Column index of the normalized x coordinate in the feature matrix.
pub const FEATURE_X: usize = KIND_SLOTS;
/// Column index of the normalized y coordinate in the feature matrix.
pub const FEATURE_Y: usize = KIND_SLOTS + 1;
/// Column index of the log-area feature.
pub const FEATURE_AREA: usize = KIND_SLOTS + 2;
/// Column index of the critical-net involvement feature (fraction of the
/// device's pins on performance-critical nets).
pub const FEATURE_CRITICAL: usize = KIND_SLOTS + 3;

fn kind_slot(kind: DeviceKind) -> usize {
    match kind {
        DeviceKind::Nmos => 0,
        DeviceKind::Pmos => 1,
        DeviceKind::Capacitor => 2,
        DeviceKind::Resistor => 3,
        DeviceKind::Inductor => 4,
        DeviceKind::Diode => 5,
    }
}

/// Writes device `i`'s static feature columns (kind one-hot, log-area,
/// criticality) — shared by the cold topology build and the incremental
/// [`GraphTopology::patched_features`] path so the two stay bit-exact.
fn static_feature_row(features: &mut Matrix, circuit: &Circuit, i: usize) {
    let d = &circuit.devices()[i];
    features.set(i, kind_slot(d.kind), 1.0);
    features.set(i, FEATURE_AREA, (1.0 + d.area()).ln());
    let critical = if d.pins.is_empty() {
        0.0
    } else {
        d.pins
            .iter()
            .filter(|p| circuit.net(p.net).critical)
            .count() as f64
            / d.pins.len() as f64
    };
    features.set(i, FEATURE_CRITICAL, critical);
}

/// The placement-independent part of a [`CircuitGraph`]: normalized
/// adjacency, its CSR plan, and the static feature columns (kind one-hot,
/// log-area, criticality — everything except x/y).
///
/// Building this is the `O(n² · pins)` part of graph construction
/// (adjacency accumulation, symmetric normalization, CSR extraction).
/// A sweep engine builds one topology per circuit, wraps it in an `Arc`,
/// and stamps out per-run [`CircuitGraph`]s with
/// [`CircuitGraph::from_topology`] — a pair of matrix clones (memcpy)
/// plus a position refresh. The stamped graph is bit-identical to one
/// built cold with [`CircuitGraph::new`], which routes through this type.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphTopology {
    /// Normalized adjacency `Â`, `n × n`.
    pub adjacency: Matrix,
    /// Node features with x/y columns left at zero.
    pub base_features: Matrix,
    /// Sparse plan of `adjacency`.
    pub(crate) csr: CsrAdjacency,
}

impl GraphTopology {
    /// Builds the connectivity plan for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_devices();
        // Raw adjacency with self-loops.
        let mut a = Matrix::identity(n);
        for net in circuit.nets() {
            // Skip huge nets (rails): they carry no placement signal and
            // would densify the graph, as in [19]'s preprocessing.
            if net.pins.len() < 2 || net.pins.len() > 16 {
                continue;
            }
            let w = 1.0 / (net.pins.len() as f64 - 1.0);
            for i in 0..net.pins.len() {
                for j in (i + 1)..net.pins.len() {
                    let (di, dj) = (net.pins[i].device.index(), net.pins[j].device.index());
                    if di == dj {
                        continue;
                    }
                    a.add_at(di, dj, w);
                    a.add_at(dj, di, w);
                }
            }
        }
        // Symmetric normalization.
        let mut degree = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                degree[i] += a.get(i, j);
            }
        }
        let mut adjacency = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let d = (degree[i] * degree[j]).sqrt();
                if d > 0.0 {
                    adjacency.set(i, j, a.get(i, j) / d);
                }
            }
        }

        let csr = CsrAdjacency::from_dense(&adjacency);
        let mut base_features = Matrix::zeros(n, FEATURES);
        for i in 0..n {
            static_feature_row(&mut base_features, circuit, i);
        }
        Self {
            adjacency,
            base_features,
            csr,
        }
    }

    /// Builds a topology for an edited circuit whose **connectivity is
    /// unchanged** (same devices, same net membership) by cloning the
    /// adjacency/CSR and re-deriving only the static feature rows of
    /// `dirty` devices — the incremental path for resizes and critical-
    /// net toggles. Bit-identical to [`GraphTopology::new`] on the
    /// edited circuit because feature rows are per-device pure functions
    /// and the adjacency inputs did not change.
    ///
    /// # Panics
    ///
    /// Panics if the edited circuit's device count differs (connectivity
    /// edits must rebuild instead).
    pub fn patched_features(&self, circuit: &Circuit, dirty: &[bool]) -> Self {
        assert_eq!(
            circuit.num_devices(),
            self.num_nodes(),
            "patched_features requires an unchanged device census"
        );
        let mut out = self.clone();
        for (i, &is_dirty) in dirty.iter().enumerate() {
            if is_dirty {
                // Zero the one-hot slots first: the device kind cannot
                // change today, but a stale slot must not survive if it
                // ever does.
                for k in 0..KIND_SLOTS {
                    out.base_features.set(i, k, 0.0);
                }
                static_feature_row(&mut out.base_features, circuit, i);
            }
        }
        out
    }

    /// The sparse message-passing plan of [`Self::adjacency`].
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.base_features.rows()
    }
}

/// A circuit graph ready for GNN inference: normalized adjacency (fixed by
/// connectivity) plus node features (position-dependent).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitGraph {
    /// Normalized adjacency `Â`, `n × n` — the retained dense reference;
    /// the shipping forward/backward passes multiply through [`Self::csr`].
    pub adjacency: Matrix,
    /// Node features, `n × FEATURES`.
    pub features: Matrix,
    /// Position normalization scale (µm) used for the x/y features.
    pub scale: f64,
    /// Sparse plan of `adjacency`, built once at construction.
    pub(crate) csr: CsrAdjacency,
}

impl CircuitGraph {
    /// Builds the graph for a circuit and placement.
    ///
    /// `scale` normalizes coordinates into roughly `[0, 1]`; pass the
    /// placement region extent. The adjacency depends only on connectivity,
    /// so [`update_positions`](Self::update_positions) can cheaply refresh
    /// the features as devices move.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive or the placement size mismatches.
    pub fn new(circuit: &Circuit, placement: &Placement, scale: f64) -> Self {
        assert_eq!(
            placement.len(),
            circuit.num_devices(),
            "placement size mismatch"
        );
        Self::from_topology(&GraphTopology::new(circuit), &placement.positions, scale)
    }

    /// Stamps a graph out of a pre-built [`GraphTopology`] — the amortized
    /// construction path. Clones the adjacency/CSR/static features (memcpy)
    /// and refreshes the x/y columns from `positions`; bit-identical to
    /// [`Self::new`] on the same circuit because `new` routes through here.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive or the position count mismatches
    /// the topology's node count.
    pub fn from_topology(topology: &GraphTopology, positions: &[(f64, f64)], scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert_eq!(
            positions.len(),
            topology.num_nodes(),
            "placement size mismatch"
        );
        let mut graph = Self {
            adjacency: topology.adjacency.clone(),
            features: topology.base_features.clone(),
            scale,
            csr: topology.csr.clone(),
        };
        graph.update_positions_from_slice(positions);
        graph
    }

    /// Assembles a graph from an explicit adjacency and feature matrix,
    /// deriving the CSR plan from the dense matrix.
    ///
    /// The backward pass assumes `adjacency` is symmetric (as every
    /// circuit-derived `Â` is); this constructor exists for tests and
    /// synthetic-graph experiments that build adjacencies directly.
    ///
    /// # Panics
    ///
    /// Panics if `adjacency` is not square, the row counts disagree,
    /// `features` is not `n ×`[`FEATURES`], or `scale` is not positive.
    pub fn from_parts(adjacency: Matrix, features: Matrix, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert_eq!(adjacency.rows(), adjacency.cols(), "adjacency not square");
        assert_eq!(adjacency.rows(), features.rows(), "node count mismatch");
        assert_eq!(features.cols(), FEATURES, "feature width mismatch");
        let csr = CsrAdjacency::from_dense(&adjacency);
        Self {
            adjacency,
            features,
            scale,
            csr,
        }
    }

    /// The sparse message-passing plan of [`Self::adjacency`].
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Refreshes the position features from a placement.
    ///
    /// # Panics
    ///
    /// Panics if the placement has the wrong number of devices.
    pub fn update_positions(&mut self, placement: &Placement) {
        assert_eq!(
            placement.len(),
            self.features.rows(),
            "placement size mismatch"
        );
        self.update_positions_from_slice(&placement.positions);
    }

    /// Refreshes the position features straight from a point slice — the
    /// layout optimizers hand `(x, y)` slices to their gradient hooks, and
    /// round-tripping through a [`Placement`] would allocate per iteration.
    /// Same arithmetic as [`update_positions`](Self::update_positions).
    ///
    /// # Panics
    ///
    /// Panics if the slice has the wrong number of devices.
    pub fn update_positions_from_slice(&mut self, positions: &[(f64, f64)]) {
        assert_eq!(
            positions.len(),
            self.features.rows(),
            "placement size mismatch"
        );
        for (i, &(x, y)) in positions.iter().enumerate() {
            self.features.set(i, FEATURE_X, x / self.scale);
            self.features.set(i, FEATURE_Y, y / self.scale);
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn graph_shape_matches_circuit() {
        let c = testcases::cc_ota();
        let p = Placement::new(c.num_devices());
        let g = CircuitGraph::new(&c, &p, 10.0);
        assert_eq!(g.num_nodes(), c.num_devices());
        assert_eq!(g.features.cols(), FEATURES);
        assert_eq!(g.adjacency.rows(), c.num_devices());
    }

    #[test]
    fn adjacency_is_symmetric_and_normalized() {
        let c = testcases::comp1();
        let p = Placement::new(c.num_devices());
        let g = CircuitGraph::new(&c, &p, 10.0);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                assert!((g.adjacency.get(i, j) - g.adjacency.get(j, i)).abs() < 1e-12);
            }
            assert!(g.adjacency.get(i, i) > 0.0, "self loop missing at {i}");
        }
        // Symmetric normalization bounds the spectral radius by 1; row sums
        // can slightly exceed 1 but must stay well-bounded.
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| g.adjacency.get(i, j)).sum();
            assert!(sum <= 2.0, "row {i} sum {sum}");
            assert!(sum > 0.0);
        }
    }

    #[test]
    fn from_topology_matches_cold_build() {
        for c in [testcases::cc_ota(), testcases::comp1(), testcases::vco1()] {
            let mut p = Placement::new(c.num_devices());
            for (i, pos) in p.positions.iter_mut().enumerate() {
                *pos = (1.5 * i as f64, 0.75 * i as f64);
            }
            let cold = CircuitGraph::new(&c, &p, 10.0);
            let topo = GraphTopology::new(&c);
            let warm = CircuitGraph::from_topology(&topo, &p.positions, 10.0);
            assert_eq!(cold, warm);
        }
    }

    #[test]
    fn patched_features_matches_cold_build() {
        let c = testcases::cc_ota();
        let base = GraphTopology::new(&c);
        let delta =
            analog_netlist::NetlistDelta::parse("resize RB 18k\ncritical vbias on\n").unwrap();
        let applied = delta.apply(&c).unwrap();
        assert!(!applied.membership_changed);
        let patched = base.patched_features(&applied.circuit, &applied.dirty);
        assert_eq!(patched, GraphTopology::new(&applied.circuit));
    }

    #[test]
    fn one_hot_kind_features() {
        let c = testcases::vco1();
        let p = Placement::new(c.num_devices());
        let g = CircuitGraph::new(&c, &p, 10.0);
        for (i, d) in c.devices().iter().enumerate() {
            let hot: f64 = (0..KIND_SLOTS).map(|k| g.features.get(i, k)).sum();
            assert_eq!(hot, 1.0, "device {} one-hot broken", d.name);
        }
    }

    #[test]
    fn update_positions_changes_only_xy() {
        let c = testcases::adder();
        let mut p = Placement::new(c.num_devices());
        let mut g = CircuitGraph::new(&c, &p, 10.0);
        let before = g.features.clone();
        p.positions[0] = (5.0, 2.5);
        g.update_positions(&p);
        assert_eq!(g.features.get(0, FEATURE_X), 0.5);
        assert_eq!(g.features.get(0, FEATURE_Y), 0.25);
        for j in 0..FEATURES {
            if j != FEATURE_X && j != FEATURE_Y {
                assert_eq!(g.features.get(0, j), before.get(0, j));
            }
        }
    }
}
