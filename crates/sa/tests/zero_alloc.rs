//! Verifies the incremental SA move loop's zero-allocation contract with a
//! counting global allocator: after `MoveEvaluator` construction, a full
//! trial/accept cycle — state reset, move, incremental evaluation with GNN
//! Φ inference, accept, best-placement tracking — never touches the heap.
//!
//! This file must hold exactly one test: other tests running concurrently
//! in the same binary would bump the counters and produce false failures.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use analog_netlist::testcases;
use placer_gnn::Network;
use placer_sa::{BlockModel, MoveEvaluator, SaConfig, SaState, SequencePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a side
// effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The annealer's move repertoire, replayed through public API (same-length
/// `Vec::remove`/`insert` never reallocates).
fn random_move(state: &mut SaState, num_devices: usize, rng: &mut StdRng) {
    let sp = &mut state.seq_pair;
    let m = sp.s1.len();
    match rng.gen_range(0..5) {
        0 => {
            let (i, j) = (rng.gen_range(0..m), rng.gen_range(0..m));
            sp.s1.swap(i, j);
        }
        1 => {
            let (i, j) = (rng.gen_range(0..m), rng.gen_range(0..m));
            sp.s2.swap(i, j);
        }
        2 => {
            let (i, j) = (rng.gen_range(0..m), rng.gen_range(0..m));
            sp.s1.swap(i, j);
            sp.s2.swap(i, j);
        }
        3 => {
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            let d = sp.s1.remove(i);
            sp.s1.insert(j, d);
        }
        _ => {
            let d = rng.gen_range(0..num_devices);
            if rng.gen_bool(0.5) {
                state.flips[d].0 = !state.flips[d].0;
            } else {
                state.flips[d].1 = !state.flips[d].1;
            }
        }
    }
}

#[test]
fn move_loop_allocates_nothing_after_warm_up() {
    placer_parallel::set_max_threads(1);

    let circuit = testcases::cc_ota();
    let model = BlockModel::new(&circuit);
    let config = SaConfig::default();
    let network = Network::default_config(7);
    let n = circuit.num_devices();
    let mut rng = StdRng::seed_from_u64(42);
    let mut state = SaState {
        seq_pair: SequencePair::identity(model.len()),
        flips: vec![(false, false); n],
    };
    for _ in 0..4 * model.len() {
        random_move(&mut state, n, &mut rng);
    }

    let mut evaluator =
        MoveEvaluator::new(&circuit, &model, &config, &state, Some((&network, 20.0)));
    let mut cost = evaluator.cost();
    let mut trial = state.clone();
    let mut best_placement = evaluator.placement().clone();
    let mut best_cost = cost;

    // Warm up a few cycles so any lazily-grown scratch reaches capacity.
    for _ in 0..20 {
        trial.copy_from(&state);
        random_move(&mut trial, n, &mut rng);
        let c = evaluator.eval_trial(&trial);
        if c.total <= cost.total {
            evaluator.accept();
            std::mem::swap(&mut state, &mut trial);
            cost = c;
        }
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut accepts = 0usize;
    for _ in 0..500 {
        trial.copy_from(&state);
        random_move(&mut trial, n, &mut rng);
        let cand = evaluator.eval_trial(&trial);
        let delta = cand.total - cost.total;
        if delta <= 0.0 || rng.gen::<f64>() < (-delta / 10.0).exp() {
            evaluator.accept();
            std::mem::swap(&mut state, &mut trial);
            cost = cand;
            accepts += 1;
            if cost.total < best_cost.total {
                best_placement
                    .positions
                    .copy_from_slice(&evaluator.placement().positions);
                best_placement
                    .flips
                    .copy_from_slice(&evaluator.placement().flips);
                best_cost = cost;
            }
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    placer_parallel::set_max_threads(0);
    assert_eq!(
        after - before,
        0,
        "move loop allocated {} times across 500 moves",
        after - before
    );
    // Sanity: the loop exercised both branches and the perf term.
    assert!(accepts > 0, "no move was ever accepted");
    assert!(best_cost.phi > 0.0 && best_cost.phi < 1.0);
}
