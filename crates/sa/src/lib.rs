//! # placer-sa
//!
//! The simulated-annealing analog placer baseline of the DATE'22 study:
//! a symmetry-island sequence-pair floorplanner ([`SequencePair`] over
//! [`BlockModel`] blocks) driven by geometric-cooling annealing
//! ([`anneal`]) with alignment/ordering penalties (symmetry is exact by
//! island construction), followed by one minimal-displacement LP pass that
//! snaps the remaining constraints exactly.
//!
//! The performance-driven variant ([`SaPlacer::place_perf`]) adds the GNN
//! probability Φ to the cost by **inference** — the key contrast with
//! ePlace-AP, which consumes Φ's *gradient* (§V-A of the paper).
//!
//! # Examples
//!
//! ```
//! use analog_netlist::testcases;
//! use placer_sa::{SaConfig, SaPlacer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = testcases::adder();
//! let config = SaConfig::builder().temperatures(15).moves_per_level(25).build()?;
//! let result = SaPlacer::new(config).place(&circuit)?;
//! println!("area {:.1} µm² after {} moves", result.area, result.moves);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod anneal;
pub mod eco;
mod evaluator;
pub mod island;
mod pipeline;
mod proptests;
mod repair;
mod seqpair;
mod shared;

pub use anneal::{
    anneal, anneal_budgeted, anneal_budgeted_with, anneal_reference, anneal_reference_budgeted,
    evaluate, AnnealResult, AnnealRun, ChainCheckpoint, ChainEntry, PerfCost, SaCheckpoint,
    SaConfig, SaConfigBuilder, SaCost, SaState,
};
pub use evaluator::{EvalTables, EvaluatorStats, MoveEvaluator};
pub use island::{Block, BlockModel};
pub use pipeline::{SaPlacer, SaResult};
pub use repair::repair_placement;
pub use seqpair::{PackScratch, SequencePair};
pub use shared::SaShared;
