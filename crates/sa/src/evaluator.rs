//! Incremental SA move evaluation: amortized O(changed work) per trial.
//!
//! The seed annealer re-ran the full cost pipeline on every trial move —
//! O(n²) sequence-pair packing, a whole-circuit HPWL scan, a fresh
//! [`Placement`] and (for perf-SA) an allocating GNN forward pass.
//! [`MoveEvaluator`] owns every buffer that pipeline needs and updates only
//! what a move invalidates:
//!
//! - packing runs the O(n log n) Fenwick path into a reused origin buffer
//!   ([`SequencePair::pack_dims_with`]);
//! - block origins are diffed bit-wise against the committed packing; only
//!   devices of moved blocks (plus devices whose flips changed) are dirty;
//! - per-net HPWL terms are cached and recomputed for dirty nets only (via
//!   the [`DeviceNets`] incidence index), then re-summed in net order so
//!   the total is **bit-identical** to [`Placement::hpwl`] — caches never
//!   drift;
//! - per-constraint (alignment / ordering-window) violations are cached the
//!   same way;
//! - Φ inference reuses a [`placer_gnn::InferenceScratch`] and runs both
//!   Â-products on the graph's CSR plan ([`placer_gnn::CsrAdjacency`]), so
//!   perf-SA's dominant term stops allocating per move and scales with the
//!   circuit's nonzeros instead of n².
//!
//! The full-recompute [`crate::evaluate`] stays in-tree as the oracle: a
//! property test drives random move/accept/reject sequences and asserts
//! the incremental cost stays bit-identical to it, and
//! `crates/sa/tests/zero_alloc.rs` pins the no-allocation contract with a
//! counting global allocator.

use analog_netlist::{AlignKind, Circuit, DeviceNets, OrderDirection, Placement};
use placer_gnn::{CircuitGraph, InferenceScratch, Network};
use placer_simd::{DeviceArrays, PinArrays};

use crate::anneal::{SaConfig, SaCost, SaState};
use crate::island::BlockModel;
use crate::seqpair::PackScratch;

/// Below this many devices the per-trial bounding box runs as an inline
/// scalar fold instead of the dispatched [`placer_simd::bbox`] kernel: the
/// folds are bit-identical either way (associative min/max on NaN-free
/// data), but at analog circuit sizes the once-per-trial dispatch and call
/// overhead exceeds the fold itself. Size-only, so placements never depend
/// on it.
const DEVICE_KERNEL_THRESHOLD: usize = 128;

/// Below this many total pins the dense full-cache sweep prices each net
/// with the fused per-net pass ([`net_hpwl_sparse`]) instead of resolving
/// every pin coordinate with [`placer_simd::pin_coords`] first: both are
/// bit-identical (elementwise coordinate resolve + min/max folds), but the
/// two-pass shape only amortizes once the flat pin array is long enough to
/// keep the vector lanes busy. Size-only, so placements never depend on it.
const PIN_KERNEL_THRESHOLD: usize = 256;

/// One alignment constraint with the devices' half-heights baked in.
#[derive(Debug, Clone, Copy)]
struct FlatAlign {
    a: u32,
    b: u32,
    ha: f64,
    hb: f64,
    kind: AlignKind,
}

/// One ordering-chain window `(predecessor, successor)` with the two
/// half-extents along the ordering axis baked in.
#[derive(Debug, Clone, Copy)]
struct FlatWindow {
    a: u32,
    b: u32,
    ea: f64,
    eb: f64,
    direction: OrderDirection,
}

/// GNN state for the performance term Φ.
struct PerfEngine<'a> {
    network: &'a Network,
    graph: CircuitGraph,
    scratch: InferenceScratch,
}

impl std::fmt::Debug for PerfEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfEngine")
            .field("nodes", &self.graph.num_nodes())
            .finish()
    }
}

/// Work counters maintained by [`MoveEvaluator::eval_trial`]: how trials
/// split between the flip-only pack skip, the dense full-sweep reprice, and
/// the sparse dirty-device path. Plain integer tallies, always on — they
/// cost a few increments per trial and feed the telemetry layer's
/// per-temperature events when tracing is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluatorStats {
    /// Trials priced.
    pub trials: u64,
    /// Trials whose sequences matched the committed pair (packing reused).
    pub pack_skips: u64,
    /// Trials identical to the committed state (no dirty device).
    pub noop_trials: u64,
    /// Trials priced by the dense full-cache sweep.
    pub dense_sweeps: u64,
    /// Trials priced by sparse per-device invalidation.
    pub sparse_reprices: u64,
    /// Total dirty devices across all trials.
    pub dirty_devices: u64,
}

/// The immutable per-circuit structure the move evaluator reads: packed
/// block dims, device outline half-dims, the device→net incidence index,
/// the flattened pin/constraint structure-of-arrays. Everything here is a
/// pure function of `(circuit, model)` — independent of the SA config,
/// seed, and chain — so one instance, wrapped in an `Arc`, serves every
/// chain and every variant of a circuit (the batched-sweep amortization).
///
/// Shared tables change where the bytes live, not what they are:
/// evaluators constructed over a shared instance price moves bit-identically
/// to cold-built ones.
#[derive(Debug)]
pub struct EvalTables {
    widths: Vec<f64>,
    heights: Vec<f64>,
    /// Per-device outline half-dims (exact halves, so the area bounding
    /// box matches [`Placement::bounding_box`] bit-for-bit).
    halfw: Vec<f64>,
    halfh: Vec<f64>,
    device_nets: DeviceNets,
    /// Routable net indices in net order (the HPWL sum order).
    routable: Vec<u32>,
    /// CSR offsets into the pin arrays, one row per net.
    net_pin_start: Vec<u32>,
    /// Net pins flattened in CSR order as structure-of-arrays for the SIMD
    /// coordinate kernel ([`placer_simd::pin_coords`]): device index,
    /// precomputed outline half-dims, and both flip-resolved offsets
    /// ([`analog_netlist::Device::pin_offset_flipped`]'s unflipped and
    /// flipped branches, evaluated once), so recomputing a dirty net never
    /// chases a `Device` pointer.
    pin_dev: Vec<u32>,
    pin_halfw: Vec<f64>,
    pin_halfh: Vec<f64>,
    pin_offx: Vec<f64>,
    pin_offx_flip: Vec<f64>,
    pin_offy: Vec<f64>,
    pin_offy_flip: Vec<f64>,
    net_weight: Vec<f64>,
    /// Flattened alignment constraints.
    aligns: Vec<FlatAlign>,
    /// Flattened ordering-chain windows.
    windows: Vec<FlatWindow>,
    /// Device → alignment-constraint indices.
    dev_aligns: Vec<Vec<u32>>,
    /// Device → window indices.
    dev_windows: Vec<Vec<u32>>,
}

impl EvalTables {
    /// Builds the shared tables for a circuit and its block model.
    pub fn new(circuit: &Circuit, model: &BlockModel) -> Self {
        let n = circuit.num_devices();
        let widths: Vec<f64> = model.blocks.iter().map(|b| b.width).collect();
        let heights: Vec<f64> = model.blocks.iter().map(|b| b.height).collect();
        let routable: Vec<u32> = circuit
            .nets()
            .iter()
            .enumerate()
            .filter(|(_, net)| net.is_routable())
            .map(|(i, _)| i as u32)
            .collect();
        let halfw: Vec<f64> = circuit.devices().iter().map(|d| d.width / 2.0).collect();
        let halfh: Vec<f64> = circuit.devices().iter().map(|d| d.height / 2.0).collect();
        let mut net_pin_start = Vec::with_capacity(circuit.num_nets() + 1);
        let mut pin_dev = Vec::new();
        let mut pin_halfw = Vec::new();
        let mut pin_halfh = Vec::new();
        let mut pin_offx = Vec::new();
        let mut pin_offx_flip = Vec::new();
        let mut pin_offy = Vec::new();
        let mut pin_offy_flip = Vec::new();
        let mut net_weight = Vec::with_capacity(circuit.num_nets());
        net_pin_start.push(0u32);
        for net in circuit.nets() {
            for p in &net.pins {
                let d = circuit.device(p.device);
                let (xp, yp) = d.pin_offset_flipped(p.pin.index(), false, false);
                let (xp_flip, yp_flip) = d.pin_offset_flipped(p.pin.index(), true, true);
                pin_dev.push(p.device.index() as u32);
                pin_halfw.push(d.width / 2.0);
                pin_halfh.push(d.height / 2.0);
                pin_offx.push(xp);
                pin_offx_flip.push(xp_flip);
                pin_offy.push(yp);
                pin_offy_flip.push(yp_flip);
            }
            net_pin_start.push(pin_dev.len() as u32);
            net_weight.push(net.weight);
        }
        let aligns: Vec<FlatAlign> = circuit
            .constraints()
            .alignments
            .iter()
            .map(|a| FlatAlign {
                a: a.a.index() as u32,
                b: a.b.index() as u32,
                ha: circuit.device(a.a).height / 2.0,
                hb: circuit.device(a.b).height / 2.0,
                kind: a.kind,
            })
            .collect();
        let mut windows = Vec::new();
        for o in &circuit.constraints().orderings {
            for w in o.devices.windows(2) {
                let da = circuit.device(w[0]);
                let db = circuit.device(w[1]);
                let (ea, eb) = match o.direction {
                    OrderDirection::Horizontal => (da.width / 2.0, db.width / 2.0),
                    OrderDirection::Vertical => (da.height / 2.0, db.height / 2.0),
                };
                windows.push(FlatWindow {
                    a: w[0].index() as u32,
                    b: w[1].index() as u32,
                    ea,
                    eb,
                    direction: o.direction,
                });
            }
        }
        let mut dev_aligns = vec![Vec::new(); n];
        for (i, a) in aligns.iter().enumerate() {
            dev_aligns[a.a as usize].push(i as u32);
            dev_aligns[a.b as usize].push(i as u32);
        }
        let mut dev_windows = vec![Vec::new(); n];
        for (i, w) in windows.iter().enumerate() {
            dev_windows[w.a as usize].push(i as u32);
            dev_windows[w.b as usize].push(i as u32);
        }
        Self {
            widths,
            heights,
            halfw,
            halfh,
            device_nets: DeviceNets::new(circuit),
            routable,
            net_pin_start,
            pin_dev,
            pin_halfw,
            pin_halfh,
            pin_offx,
            pin_offx_flip,
            pin_offy,
            pin_offy_flip,
            net_weight,
            aligns,
            windows,
            dev_aligns,
            dev_windows,
        }
    }

    /// Total flattened pins.
    fn num_pins(&self) -> usize {
        self.pin_dev.len()
    }
}

/// The incremental cost engine for one annealing chain.
///
/// Holds a *committed* evaluation (state caches + [`SaCost`]) and a trial
/// buffer set. [`eval_trial`](Self::eval_trial) prices any candidate state
/// against the committed one without touching it;
/// [`accept`](Self::accept) promotes the last trial by buffer swap. After
/// construction the trial/accept cycle performs **no heap allocation**.
///
/// Costs are bit-identical to the full-recompute oracle
/// [`crate::evaluate`] (same floating-point evaluation order everywhere),
/// so switching the annealer to this engine changes wall time, not
/// placements.
#[derive(Debug)]
pub struct MoveEvaluator<'a> {
    model: &'a BlockModel,
    hpwl_weight: f64,
    penalty_weight: f64,

    /// Static per-circuit structure, shareable across chains and variants.
    tables: std::sync::Arc<EvalTables>,

    // Committed evaluation.
    /// Committed sequence pair (detects flip-only candidates, whose
    /// packing is reusable bit-for-bit).
    c_s1: Vec<usize>,
    c_s2: Vec<usize>,
    origins: Vec<(f64, f64)>,
    placement: Placement,
    /// Committed device centers and flips mirrored as structure-of-arrays
    /// (flips as `0.0`/`1.0` masks) — what the SIMD sweep kernels read.
    /// `placement` stays authoritative for the perf engine and callers.
    pos_x: Vec<f64>,
    pos_y: Vec<f64>,
    flip_x: Vec<f64>,
    flip_y: Vec<f64>,
    net_vals: Vec<f64>,
    align_vals: Vec<f64>,
    window_vals: Vec<f64>,
    cost: SaCost,

    // Trial buffers.
    t_s1: Vec<usize>,
    t_s2: Vec<usize>,
    t_origins: Vec<(f64, f64)>,
    t_placement: Placement,
    t_pos_x: Vec<f64>,
    t_pos_y: Vec<f64>,
    t_flip_x: Vec<f64>,
    t_flip_y: Vec<f64>,
    t_net_vals: Vec<f64>,
    t_align_vals: Vec<f64>,
    t_window_vals: Vec<f64>,
    t_cost: SaCost,

    // Scratch.
    pack: PackScratch,
    /// Per-pin resolved coordinates, filled by the coordinate kernel just
    /// before each net's min/max fold.
    pin_x: Vec<f64>,
    pin_y: Vec<f64>,
    dirty: Vec<u32>,
    net_mark: Vec<u64>,
    align_mark: Vec<u64>,
    window_mark: Vec<u64>,
    epoch: u64,
    stats: EvaluatorStats,

    perf: Option<PerfEngine<'a>>,
}

impl<'a> MoveEvaluator<'a> {
    /// Builds the engine and fully evaluates (commits) `state`.
    ///
    /// `perf` is `(network, scale)` for the Φ term; the *weight* of Φ in
    /// the annealer's acceptance total is applied by the caller, keeping
    /// [`cost`](Self::cost) comparable with [`crate::evaluate`].
    pub fn new(
        circuit: &'a Circuit,
        model: &'a BlockModel,
        config: &SaConfig,
        state: &SaState,
        perf: Option<(&'a Network, f64)>,
    ) -> Self {
        let tables = std::sync::Arc::new(EvalTables::new(circuit, model));
        Self::with_tables(circuit, model, config, state, perf, tables)
    }

    /// [`new`](Self::new) over pre-built shared tables — the amortized
    /// construction path for batched sweeps. `tables` must have been built
    /// for this `(circuit, model)` pair; prices moves bit-identically to a
    /// cold-built evaluator (the tables are exactly what `new` computes).
    pub fn with_tables(
        circuit: &'a Circuit,
        model: &'a BlockModel,
        config: &SaConfig,
        state: &SaState,
        perf: Option<(&'a Network, f64)>,
        tables: std::sync::Arc<EvalTables>,
    ) -> Self {
        let n = circuit.num_devices();
        let m = model.len();
        let num_pins = tables.num_pins();
        let perf = perf.map(|(network, scale)| PerfEngine {
            network,
            graph: CircuitGraph::new(circuit, &Placement::new(n), scale),
            scratch: InferenceScratch::new(network, n),
        });
        let num_aligns = tables.aligns.len();
        let num_windows = tables.windows.len();
        let mut engine = Self {
            model,
            hpwl_weight: config.hpwl_weight,
            penalty_weight: config.penalty_weight,
            tables,
            c_s1: vec![0; m],
            c_s2: vec![0; m],
            origins: Vec::with_capacity(m),
            placement: Placement::new(n),
            pos_x: vec![0.0; n],
            pos_y: vec![0.0; n],
            flip_x: vec![0.0; n],
            flip_y: vec![0.0; n],
            net_vals: vec![0.0; circuit.num_nets()],
            align_vals: vec![0.0; num_aligns],
            window_vals: vec![0.0; num_windows],
            cost: SaCost {
                area: 0.0,
                hpwl: 0.0,
                violation: 0.0,
                phi: 0.0,
                total: 0.0,
            },
            t_s1: vec![0; m],
            t_s2: vec![0; m],
            t_origins: Vec::with_capacity(m),
            t_placement: Placement::new(n),
            t_pos_x: vec![0.0; n],
            t_pos_y: vec![0.0; n],
            t_flip_x: vec![0.0; n],
            t_flip_y: vec![0.0; n],
            t_net_vals: vec![0.0; circuit.num_nets()],
            t_align_vals: vec![0.0; num_aligns],
            t_window_vals: vec![0.0; num_windows],
            t_cost: SaCost {
                area: 0.0,
                hpwl: 0.0,
                violation: 0.0,
                phi: 0.0,
                total: 0.0,
            },
            pack: PackScratch::new(),
            pin_x: vec![0.0; num_pins],
            pin_y: vec![0.0; num_pins],
            dirty: Vec::with_capacity(2 * n),
            net_mark: vec![0; circuit.num_nets()],
            align_mark: vec![0; num_aligns],
            window_mark: vec![0; num_windows],
            epoch: 0,
            stats: EvaluatorStats::default(),
            perf,
        };
        engine.reset(state);
        engine
    }

    /// Fully re-evaluates `state` and commits it (used at construction and
    /// whenever the caller replaces the state wholesale).
    pub fn reset(&mut self, state: &SaState) {
        self.c_s1.copy_from_slice(&state.seq_pair.s1);
        self.c_s2.copy_from_slice(&state.seq_pair.s2);
        state.seq_pair.pack_dims_with(
            &self.tables.widths,
            &self.tables.heights,
            &mut self.pack,
            &mut self.origins,
        );
        for (block, &(bx, by)) in self.model.blocks.iter().zip(&self.origins) {
            for &(dev, ox, oy) in &block.devices {
                let i = dev.index();
                let (px, py) = (bx + ox, by + oy);
                self.placement.positions[i] = (px, py);
                self.placement.flips[i] = state.flips[i];
                self.pos_x[i] = px;
                self.pos_y[i] = py;
                self.flip_x[i] = if state.flips[i].0 { 1.0 } else { 0.0 };
                self.flip_y[i] = if state.flips[i].1 { 1.0 } else { 0.0 };
            }
        }
        sweep_all_nets(
            PinArrays {
                dev: &self.tables.pin_dev,
                halfw: &self.tables.pin_halfw,
                halfh: &self.tables.pin_halfh,
                offx: &self.tables.pin_offx,
                offx_flip: &self.tables.pin_offx_flip,
                offy: &self.tables.pin_offy,
                offy_flip: &self.tables.pin_offy_flip,
            },
            DeviceArrays {
                pos_x: &self.pos_x,
                pos_y: &self.pos_y,
                flip_x: &self.flip_x,
                flip_y: &self.flip_y,
            },
            &mut self.pin_x,
            &mut self.pin_y,
            &self.tables.routable,
            &self.tables.net_pin_start,
            &self.tables.net_weight,
            &mut self.net_vals,
        );
        for (i, v) in self.align_vals.iter_mut().enumerate() {
            *v = flat_align_value(&self.tables.aligns[i], &self.placement.positions);
        }
        for (i, v) in self.window_vals.iter_mut().enumerate() {
            *v = flat_window_value(&self.tables.windows[i], &self.placement.positions);
        }
        self.cost = Self::assemble(
            &self.tables.halfw,
            &self.tables.halfh,
            &self.pos_x,
            &self.pos_y,
            &self.placement,
            &self.tables.routable,
            &self.net_vals,
            &self.align_vals,
            &self.window_vals,
            self.hpwl_weight,
            self.penalty_weight,
            self.perf.as_mut(),
        );
    }

    /// The committed cost breakdown.
    pub fn cost(&self) -> SaCost {
        self.cost
    }

    /// The committed placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Work counters accumulated since construction (see [`EvaluatorStats`]).
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Prices a candidate state against the committed one.
    ///
    /// The candidate may differ from the committed state by any number of
    /// moves (the annealer's temperature probe stacks several); cost is
    /// recomputed only for blocks whose packed origin changed and devices
    /// whose flips changed. Does not modify the committed evaluation; call
    /// [`accept`](Self::accept) to promote this trial.
    pub fn eval_trial(&mut self, trial: &SaState) -> SaCost {
        // Packing depends only on the sequences, so a flip-only candidate
        // (the annealer's most common cheap move) reuses the committed
        // origins bit-for-bit and skips the pack and the block diff.
        let same_seqs = trial.seq_pair.s1 == self.c_s1 && trial.seq_pair.s2 == self.c_s2;
        self.stats.trials += 1;
        if same_seqs {
            self.stats.pack_skips += 1;
        }
        if same_seqs {
            self.t_origins.clear();
            self.t_origins.extend_from_slice(&self.origins);
        } else {
            trial.seq_pair.pack_dims_with(
                &self.tables.widths,
                &self.tables.heights,
                &mut self.pack,
                &mut self.t_origins,
            );
        }
        self.t_s1.copy_from_slice(&trial.seq_pair.s1);
        self.t_s2.copy_from_slice(&trial.seq_pair.s2);
        self.t_placement
            .positions
            .copy_from_slice(&self.placement.positions);
        self.t_placement
            .flips
            .copy_from_slice(&self.placement.flips);
        self.t_pos_x.copy_from_slice(&self.pos_x);
        self.t_pos_y.copy_from_slice(&self.pos_y);
        self.t_flip_x.copy_from_slice(&self.flip_x);
        self.t_flip_y.copy_from_slice(&self.flip_y);
        self.epoch += 1;
        self.dirty.clear();
        if !same_seqs {
            // Devices of blocks whose packed origin moved (bit-wise diff:
            // the packing is deterministic, so bit-equal origins imply
            // bit-equal downstream values).
            for (b, (block, &(bx, by))) in self.model.blocks.iter().zip(&self.t_origins).enumerate()
            {
                let (cx, cy) = self.origins[b];
                if bx.to_bits() == cx.to_bits() && by.to_bits() == cy.to_bits() {
                    continue;
                }
                for &(dev, ox, oy) in &block.devices {
                    let i = dev.index();
                    let (px, py) = (bx + ox, by + oy);
                    self.t_placement.positions[i] = (px, py);
                    self.t_pos_x[i] = px;
                    self.t_pos_y[i] = py;
                    self.dirty.push(i as u32);
                }
            }
        }
        // Devices whose flips changed (pin positions move, outline doesn't).
        for (d, (&tf, &cf)) in trial.flips.iter().zip(&self.placement.flips).enumerate() {
            if tf != cf {
                self.t_placement.flips[d] = tf;
                self.t_flip_x[d] = if tf.0 { 1.0 } else { 0.0 };
                self.t_flip_y[d] = if tf.1 { 1.0 } else { 0.0 };
                self.dirty.push(d as u32);
            }
        }
        self.stats.dirty_devices += self.dirty.len() as u64;
        if self.dirty.is_empty() {
            self.stats.noop_trials += 1;
            // Candidate is identical to the committed state (the move
            // repertoire includes self-inverse no-ops); every cache entry
            // already matches, so the committed cost is the answer.
            self.t_net_vals.copy_from_slice(&self.net_vals);
            self.t_align_vals.copy_from_slice(&self.align_vals);
            self.t_window_vals.copy_from_slice(&self.window_vals);
            self.t_cost = self.cost;
            return self.t_cost;
        }
        if 2 * self.dirty.len() >= self.t_placement.positions.len() {
            self.stats.dense_sweeps += 1;
            // Most devices moved (a sequence move reshuffles most of the
            // packing): a straight sweep over every cache row beats
            // per-device invalidation marking. Non-routable rows stay at
            // their initial zeros in both buffer sets, so skipping the
            // committed-value copies is sound. One SIMD pass resolves every
            // pin coordinate, then each net folds its contiguous range.
            sweep_all_nets(
                PinArrays {
                    dev: &self.tables.pin_dev,
                    halfw: &self.tables.pin_halfw,
                    halfh: &self.tables.pin_halfh,
                    offx: &self.tables.pin_offx,
                    offx_flip: &self.tables.pin_offx_flip,
                    offy: &self.tables.pin_offy,
                    offy_flip: &self.tables.pin_offy_flip,
                },
                DeviceArrays {
                    pos_x: &self.t_pos_x,
                    pos_y: &self.t_pos_y,
                    flip_x: &self.t_flip_x,
                    flip_y: &self.t_flip_y,
                },
                &mut self.pin_x,
                &mut self.pin_y,
                &self.tables.routable,
                &self.tables.net_pin_start,
                &self.tables.net_weight,
                &mut self.t_net_vals,
            );
            for (i, a) in self.tables.aligns.iter().enumerate() {
                self.t_align_vals[i] = flat_align_value(a, &self.t_placement.positions);
            }
            for (i, w) in self.tables.windows.iter().enumerate() {
                self.t_window_vals[i] = flat_window_value(w, &self.t_placement.positions);
            }
        } else {
            self.stats.sparse_reprices += 1;
            // Recompute exactly the invalidated cache entries.
            self.t_net_vals.copy_from_slice(&self.net_vals);
            self.t_align_vals.copy_from_slice(&self.align_vals);
            self.t_window_vals.copy_from_slice(&self.window_vals);
            for i in 0..self.dirty.len() {
                let d = self.dirty[i] as usize;
                for &ni in self
                    .tables
                    .device_nets
                    .nets_of(analog_netlist::DeviceId::new(d))
                {
                    if self.net_mark[ni as usize] != self.epoch {
                        self.net_mark[ni as usize] = self.epoch;
                        let s = self.tables.net_pin_start[ni as usize] as usize;
                        let e = self.tables.net_pin_start[ni as usize + 1] as usize;
                        self.t_net_vals[ni as usize] = net_hpwl_sparse(
                            &self.tables.pin_dev[s..e],
                            &self.tables.pin_halfw[s..e],
                            &self.tables.pin_halfh[s..e],
                            &self.tables.pin_offx[s..e],
                            &self.tables.pin_offx_flip[s..e],
                            &self.tables.pin_offy[s..e],
                            &self.tables.pin_offy_flip[s..e],
                            &DeviceArrays {
                                pos_x: &self.t_pos_x,
                                pos_y: &self.t_pos_y,
                                flip_x: &self.t_flip_x,
                                flip_y: &self.t_flip_y,
                            },
                            self.tables.net_weight[ni as usize],
                        );
                    }
                }
                for &ai in &self.tables.dev_aligns[d] {
                    if self.align_mark[ai as usize] != self.epoch {
                        self.align_mark[ai as usize] = self.epoch;
                        self.t_align_vals[ai as usize] = flat_align_value(
                            &self.tables.aligns[ai as usize],
                            &self.t_placement.positions,
                        );
                    }
                }
                for &wi in &self.tables.dev_windows[d] {
                    if self.window_mark[wi as usize] != self.epoch {
                        self.window_mark[wi as usize] = self.epoch;
                        self.t_window_vals[wi as usize] = flat_window_value(
                            &self.tables.windows[wi as usize],
                            &self.t_placement.positions,
                        );
                    }
                }
            }
        }
        self.t_cost = Self::assemble(
            &self.tables.halfw,
            &self.tables.halfh,
            &self.t_pos_x,
            &self.t_pos_y,
            &self.t_placement,
            &self.tables.routable,
            &self.t_net_vals,
            &self.t_align_vals,
            &self.t_window_vals,
            self.hpwl_weight,
            self.penalty_weight,
            self.perf.as_mut(),
        );
        self.t_cost
    }

    /// Promotes the trial evaluated by the last [`eval_trial`](Self::eval_trial)
    /// call to the committed evaluation (O(1) buffer swaps).
    pub fn accept(&mut self) {
        std::mem::swap(&mut self.c_s1, &mut self.t_s1);
        std::mem::swap(&mut self.c_s2, &mut self.t_s2);
        std::mem::swap(&mut self.origins, &mut self.t_origins);
        std::mem::swap(&mut self.placement, &mut self.t_placement);
        std::mem::swap(&mut self.pos_x, &mut self.t_pos_x);
        std::mem::swap(&mut self.pos_y, &mut self.t_pos_y);
        std::mem::swap(&mut self.flip_x, &mut self.t_flip_x);
        std::mem::swap(&mut self.flip_y, &mut self.t_flip_y);
        std::mem::swap(&mut self.net_vals, &mut self.t_net_vals);
        std::mem::swap(&mut self.align_vals, &mut self.t_align_vals);
        std::mem::swap(&mut self.window_vals, &mut self.t_window_vals);
        self.cost = self.t_cost;
    }

    /// Assembles a [`SaCost`] from the cache arrays, in the exact
    /// floating-point order of the full-recompute oracle
    /// ([`crate::evaluate`]): bounding box over devices in id order, HPWL
    /// summed over routable nets in net order, violation maxima folded in
    /// constraint order.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        halfw: &[f64],
        halfh: &[f64],
        pos_x: &[f64],
        pos_y: &[f64],
        placement: &Placement,
        routable: &[u32],
        net_vals: &[f64],
        align_vals: &[f64],
        window_vals: &[f64],
        hpwl_weight: f64,
        penalty_weight: f64,
        perf: Option<&mut PerfEngine<'_>>,
    ) -> SaCost {
        // Bounding box over device outlines in id order — the same folds
        // as [`Placement::bounding_box`], reading precomputed half-dims
        // (min/max folds are associative on NaN-free data, so the SIMD
        // lanes are bit-exact and the inline small-circuit fold is the
        // identical value). Below the threshold the per-trial kernel
        // dispatch costs more than the fold; analog SA circuits mostly sit
        // there.
        let area = if pos_x.is_empty() {
            0.0
        } else if pos_x.len() < DEVICE_KERNEL_THRESHOLD {
            let mut bb = (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
            );
            for i in 0..pos_x.len() {
                bb.0 = bb.0.min(pos_x[i] - halfw[i]);
                bb.1 = bb.1.min(pos_y[i] - halfh[i]);
                bb.2 = bb.2.max(pos_x[i] + halfw[i]);
                bb.3 = bb.3.max(pos_y[i] + halfh[i]);
            }
            (bb.2 - bb.0) * (bb.3 - bb.1)
        } else {
            let bb = placer_simd::bbox(pos_x, pos_y, halfw, halfh);
            (bb.2 - bb.0) * (bb.3 - bb.1)
        };
        let mut hpwl = 0.0;
        for &ni in routable {
            hpwl += net_vals[ni as usize];
        }
        let mut align_worst: f64 = 0.0;
        for &v in align_vals {
            align_worst = align_worst.max(v);
        }
        let mut order_worst: f64 = 0.0;
        for &v in window_vals {
            order_worst = order_worst.max(v);
        }
        let violation = align_worst + order_worst;
        let phi = match perf {
            Some(engine) => {
                engine.graph.update_positions(placement);
                engine
                    .network
                    .predict_with(&engine.graph, &mut engine.scratch)
            }
            None => 0.0,
        };
        let total = area + hpwl_weight * hpwl + penalty_weight * violation;
        SaCost {
            area,
            hpwl,
            violation,
            phi,
            total,
        }
    }
}

/// One net's weighted HPWL over resolved pin coordinates — the arithmetic
/// of [`Placement::net_hpwl`] term for term. The fold is an inline scalar
/// twin of [`placer_simd::min_max`] (same per-accumulator `min`/`max`
/// sequences in index order, so bit-identical under every backend):
/// analog nets carry 2–10 pins, where per-net kernel dispatch costs more
/// than the fold itself.
#[inline]
fn net_hpwl_from_coords(xs: &[f64], ys: &[f64], weight: f64) -> f64 {
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..xs.len() {
        xmin = xmin.min(xs[i]);
        xmax = xmax.max(xs[i]);
        ymin = ymin.min(ys[i]);
        ymax = ymax.max(ys[i]);
    }
    weight * ((xmax - xmin) + (ymax - ymin))
}

/// Re-prices one net in a single fused pass over the pin SoA: resolves
/// each pin coordinate with the exact arithmetic of
/// [`placer_simd::pin_coords`] and folds the extrema with the exact
/// per-accumulator sequences of [`placer_simd::min_max`], so the value is
/// bit-identical to the dense sweep's kernels under every backend —
/// without per-net kernel dispatch or the coordinate-scratch round trip,
/// which dominate at analog net sizes (2–10 pins).
#[allow(clippy::too_many_arguments)]
#[inline]
fn net_hpwl_sparse(
    dev: &[u32],
    halfw: &[f64],
    halfh: &[f64],
    offx: &[f64],
    offx_flip: &[f64],
    offy: &[f64],
    offy_flip: &[f64],
    devs: &DeviceArrays<'_>,
    weight: f64,
) -> f64 {
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..dev.len() {
        let d = dev[i] as usize;
        let off_x = if devs.flip_x[d] > 0.5 {
            offx_flip[i]
        } else {
            offx[i]
        };
        let off_y = if devs.flip_y[d] > 0.5 {
            offy_flip[i]
        } else {
            offy[i]
        };
        let x = devs.pos_x[d] - halfw[i] + off_x;
        let y = devs.pos_y[d] - halfh[i] + off_y;
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    weight * ((xmax - xmin) + (ymax - ymin))
}

/// Reprices every routable net against one device-coordinate set. Above
/// [`PIN_KERNEL_THRESHOLD`] total pins, a single SIMD pass resolves all
/// pin coordinates into `pin_x`/`pin_y` and each net folds its contiguous
/// CSR range; below it, each net runs the fused per-net pass instead
/// (bit-identical — see the threshold's contract).
#[allow(clippy::too_many_arguments)]
fn sweep_all_nets(
    pins: PinArrays<'_>,
    devs: DeviceArrays<'_>,
    pin_x: &mut [f64],
    pin_y: &mut [f64],
    routable: &[u32],
    net_pin_start: &[u32],
    net_weight: &[f64],
    net_vals: &mut [f64],
) {
    if pin_x.len() < PIN_KERNEL_THRESHOLD {
        for &ni in routable {
            let ni = ni as usize;
            let s = net_pin_start[ni] as usize;
            let e = net_pin_start[ni + 1] as usize;
            net_vals[ni] = net_hpwl_sparse(
                &pins.dev[s..e],
                &pins.halfw[s..e],
                &pins.halfh[s..e],
                &pins.offx[s..e],
                &pins.offx_flip[s..e],
                &pins.offy[s..e],
                &pins.offy_flip[s..e],
                &devs,
                net_weight[ni],
            );
        }
        return;
    }
    placer_simd::pin_coords(&pins, &devs, pin_x, pin_y);
    for &ni in routable {
        let ni = ni as usize;
        let s = net_pin_start[ni] as usize;
        let e = net_pin_start[ni + 1] as usize;
        net_vals[ni] = net_hpwl_from_coords(&pin_x[s..e], &pin_y[s..e], net_weight[ni]);
    }
}

/// One alignment constraint's violation, exactly as
/// [`Placement::alignment_violation`] prices it.
#[inline]
fn flat_align_value(a: &FlatAlign, positions: &[(f64, f64)]) -> f64 {
    let (xa, ya) = positions[a.a as usize];
    let (xb, yb) = positions[a.b as usize];
    match a.kind {
        AlignKind::Bottom => ((ya - a.ha) - (yb - a.hb)).abs(),
        AlignKind::VerticalCenter => (xa - xb).abs(),
    }
}

/// One ordering window's clamped gap, exactly as
/// [`Placement::ordering_violation`] prices it.
#[inline]
fn flat_window_value(w: &FlatWindow, positions: &[(f64, f64)]) -> f64 {
    let (xa, ya) = positions[w.a as usize];
    let (xb, yb) = positions[w.b as usize];
    let gap = match w.direction {
        OrderDirection::Horizontal => (xa + w.ea) - (xb - w.eb),
        OrderDirection::Vertical => (ya + w.ea) - (yb - w.eb),
    };
    gap.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::evaluate;
    use crate::seqpair::SequencePair;
    use analog_netlist::testcases;
    use placer_gnn::Network;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_state(model_len: usize, n: usize, rng: &mut StdRng) -> SaState {
        let mut s1: Vec<usize> = (0..model_len).collect();
        let mut s2: Vec<usize> = (0..model_len).collect();
        for i in (1..model_len).rev() {
            let j = rng.gen_range(0..=i);
            s1.swap(i, j);
            let k = rng.gen_range(0..=i);
            s2.swap(i, k);
        }
        SaState {
            seq_pair: SequencePair {
                s1,
                s2,
                flips: vec![(false, false); n],
            },
            flips: (0..n)
                .map(|_| (rng.gen_bool(0.5), rng.gen_bool(0.5)))
                .collect(),
        }
    }

    fn assert_costs_bit_equal(a: SaCost, b: SaCost, context: &str) {
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "{context}: area");
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits(), "{context}: hpwl");
        assert_eq!(
            a.violation.to_bits(),
            b.violation.to_bits(),
            "{context}: violation"
        );
        assert_eq!(a.phi.to_bits(), b.phi.to_bits(), "{context}: phi");
        assert_eq!(a.total.to_bits(), b.total.to_bits(), "{context}: total");
    }

    #[test]
    fn committed_cost_matches_oracle_at_construction() {
        for circuit in [testcases::adder(), testcases::cc_ota(), testcases::comp1()] {
            let model = BlockModel::new(&circuit);
            let config = SaConfig::default();
            let mut rng = StdRng::seed_from_u64(3);
            let state = random_state(model.len(), circuit.num_devices(), &mut rng);
            let engine = MoveEvaluator::new(&circuit, &model, &config, &state, None);
            let (oracle_placement, oracle_cost) = evaluate(&circuit, &model, &state, &config, None);
            assert_costs_bit_equal(engine.cost(), oracle_cost, circuit.name());
            assert_eq!(engine.placement(), &oracle_placement);
        }
    }

    #[test]
    fn trial_costs_match_oracle_through_accept_reject_sequences() {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        let config = SaConfig::default();
        let n = circuit.num_devices();
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = random_state(model.len(), n, &mut rng);
        let mut engine = MoveEvaluator::new(&circuit, &model, &config, &state, None);
        let mut trial = state.clone();
        for step in 0..200 {
            trial.copy_from(&state);
            crate::anneal::random_move(&mut trial, n, &mut rng);
            let got = engine.eval_trial(&trial);
            let (_, want) = evaluate(&circuit, &model, &trial, &config, None);
            assert_costs_bit_equal(got, want, &format!("step {step}"));
            if rng.gen_bool(0.5) {
                engine.accept();
                std::mem::swap(&mut state, &mut trial);
            }
        }
    }

    #[test]
    fn perf_phi_matches_oracle() {
        let circuit = testcases::adder();
        let model = BlockModel::new(&circuit);
        let config = SaConfig::default();
        let n = circuit.num_devices();
        let network = Network::default_config(9);
        let scale = 20.0;
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = random_state(model.len(), n, &mut rng);
        let mut engine =
            MoveEvaluator::new(&circuit, &model, &config, &state, Some((&network, scale)));
        let mut oracle_graph = CircuitGraph::new(&circuit, &Placement::new(n), scale);
        let mut trial = state.clone();
        for step in 0..60 {
            trial.copy_from(&state);
            crate::anneal::random_move(&mut trial, n, &mut rng);
            let got = engine.eval_trial(&trial);
            let mut perf = (
                crate::anneal::PerfCost {
                    network: &network,
                    weight: 1.0,
                    scale,
                },
                oracle_graph.clone(),
            );
            let (_, want) = evaluate(&circuit, &model, &trial, &config, Some(&mut perf));
            oracle_graph = perf.1;
            assert_costs_bit_equal(got, want, &format!("step {step}"));
            if step % 3 == 0 {
                engine.accept();
                std::mem::swap(&mut state, &mut trial);
            }
        }
    }

    #[test]
    fn stacked_unaccepted_trials_stay_consistent() {
        // The temperature probe evaluates a trial that drifts several moves
        // away from the committed state without ever accepting.
        let circuit = testcases::comp1();
        let model = BlockModel::new(&circuit);
        let config = SaConfig::default();
        let n = circuit.num_devices();
        let mut rng = StdRng::seed_from_u64(17);
        let state = random_state(model.len(), n, &mut rng);
        let mut engine = MoveEvaluator::new(&circuit, &model, &config, &state, None);
        let mut probe = state.clone();
        for step in 0..30 {
            crate::anneal::random_move(&mut probe, n, &mut rng);
            let got = engine.eval_trial(&probe);
            let (_, want) = evaluate(&circuit, &model, &probe, &config, None);
            assert_costs_bit_equal(got, want, &format!("probe step {step}"));
        }
        // The committed evaluation never moved.
        let (_, base) = evaluate(&circuit, &model, &state, &config, None);
        assert_costs_bit_equal(engine.cost(), base, "committed");
    }
}
