//! Symmetry-island block model for the SA placer.
//!
//! Classic SA analog placers (symmetry-island formulation, \[5\]) keep
//! symmetry feasible *by construction*: every symmetry group is packed into
//! a rigid island block — mirrored pairs side by side, self-symmetric
//! devices centered — and annealing permutes blocks, never breaking the
//! island. This restricts the search space (the rigidity is exactly the
//! flexibility gap the paper's analytical placer exploits), and is the
//! faithful baseline behavior for the DATE'22 comparison.

use analog_netlist::{Axis, Circuit, DeviceId, Placement};

/// One rigid block: either a singleton device or a symmetry island.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Devices with offsets of their centers from the block's lower-left
    /// corner.
    pub devices: Vec<(DeviceId, f64, f64)>,
    /// Block footprint width (µm).
    pub width: f64,
    /// Block footprint height (µm).
    pub height: f64,
}

/// The block decomposition of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockModel {
    /// All blocks; singletons first is *not* guaranteed.
    pub blocks: Vec<Block>,
}

impl BlockModel {
    /// Builds the island decomposition: one block per symmetry group, one
    /// per remaining device.
    pub fn new(circuit: &Circuit) -> Self {
        let mut in_island = vec![false; circuit.num_devices()];
        let mut blocks = Vec::new();
        for g in &circuit.constraints().symmetry_groups {
            if g.is_empty() {
                continue;
            }
            let mut rows: Vec<Vec<(DeviceId, f64)>> = Vec::new(); // (dev, x-center rel axis)
            let mut row_dims: Vec<(f64, f64)> = Vec::new(); // (width, height)
            match g.axis {
                Axis::Vertical => {
                    for &(a, b) in &g.pairs {
                        let da = circuit.device(a);
                        let db = circuit.device(b);
                        rows.push(vec![(a, -da.width / 2.0), (b, db.width / 2.0)]);
                        row_dims.push((da.width + db.width, da.height.max(db.height)));
                        in_island[a.index()] = true;
                        in_island[b.index()] = true;
                    }
                    for &s in &g.self_symmetric {
                        let d = circuit.device(s);
                        rows.push(vec![(s, 0.0)]);
                        row_dims.push((d.width, d.height));
                        in_island[s.index()] = true;
                    }
                }
                Axis::Horizontal => {
                    // Mirror of the vertical case: pairs stack vertically
                    // about a horizontal axis; realized by swapping roles
                    // below (offsets computed in transposed space).
                    for &(a, b) in &g.pairs {
                        let da = circuit.device(a);
                        let db = circuit.device(b);
                        rows.push(vec![(a, -da.height / 2.0), (b, db.height / 2.0)]);
                        row_dims.push((da.height + db.height, da.width.max(db.width)));
                        in_island[a.index()] = true;
                        in_island[b.index()] = true;
                    }
                    for &s in &g.self_symmetric {
                        let d = circuit.device(s);
                        rows.push(vec![(s, 0.0)]);
                        row_dims.push((d.height, d.width));
                        in_island[s.index()] = true;
                    }
                }
            }
            let island_w = row_dims.iter().map(|d| d.0).fold(0.0, f64::max);
            let island_h: f64 = row_dims.iter().map(|d| d.1).sum();
            let mut devices = Vec::new();
            let mut y_cursor = 0.0;
            for (row, &(_, rh)) in rows.iter().zip(&row_dims) {
                for &(dev, xoff) in row {
                    let d = circuit.device(dev);
                    match g.axis {
                        Axis::Vertical => {
                            devices.push((dev, island_w / 2.0 + xoff, y_cursor + d.height / 2.0));
                        }
                        Axis::Horizontal => {
                            devices.push((dev, y_cursor + d.width / 2.0, island_w / 2.0 + xoff));
                        }
                    }
                }
                y_cursor += rh;
            }
            let (bw, bh) = match g.axis {
                Axis::Vertical => (island_w, island_h),
                Axis::Horizontal => (island_h, island_w),
            };
            blocks.push(Block {
                devices,
                width: bw.max(1e-6),
                height: bh.max(1e-6),
            });
        }
        for (i, d) in circuit.devices().iter().enumerate() {
            if !in_island[i] {
                blocks.push(Block {
                    devices: vec![(DeviceId::new(i), d.width / 2.0, d.height / 2.0)],
                    width: d.width,
                    height: d.height,
                });
            }
        }
        Self { blocks }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the model has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Expands block lower-left positions into a device placement.
    ///
    /// # Panics
    ///
    /// Panics if `origins` has the wrong length.
    pub fn expand(
        &self,
        circuit: &Circuit,
        origins: &[(f64, f64)],
        flips: &[(bool, bool)],
    ) -> Placement {
        assert_eq!(origins.len(), self.blocks.len(), "origin count mismatch");
        let mut placement = Placement::new(circuit.num_devices());
        for (block, &(bx, by)) in self.blocks.iter().zip(origins) {
            for &(dev, ox, oy) in &block.devices {
                placement.positions[dev.index()] = (bx + ox, by + oy);
                placement.flips[dev.index()] = flips[dev.index()];
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn islands_cover_all_devices_once() {
        for circuit in testcases::all_testcases() {
            let model = BlockModel::new(&circuit);
            let mut seen = vec![false; circuit.num_devices()];
            for block in &model.blocks {
                for &(dev, _, _) in &block.devices {
                    assert!(!seen[dev.index()], "{}: device duplicated", circuit.name());
                    seen[dev.index()] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "{}: device missing",
                circuit.name()
            );
        }
    }

    #[test]
    fn island_expansion_is_symmetric() {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        let origins: Vec<(f64, f64)> = (0..model.len()).map(|i| (i as f64 * 30.0, 5.0)).collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let placement = model.expand(&circuit, &origins, &flips);
        assert!(placement.symmetry_violation(&circuit) < 1e-9);
    }

    #[test]
    fn devices_stay_inside_their_block() {
        let circuit = testcases::comp2();
        let model = BlockModel::new(&circuit);
        for block in &model.blocks {
            for &(dev, ox, oy) in &block.devices {
                let d = circuit.device(dev);
                assert!(ox - d.width / 2.0 >= -1e-9);
                assert!(oy - d.height / 2.0 >= -1e-9);
                assert!(ox + d.width / 2.0 <= block.width + 1e-9);
                assert!(oy + d.height / 2.0 <= block.height + 1e-9);
            }
        }
    }

    #[test]
    fn no_overlap_within_island() {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        let origins: Vec<(f64, f64)> = (0..model.len()).map(|i| (i as f64 * 100.0, 0.0)).collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let placement = model.expand(&circuit, &origins, &flips);
        assert!(
            placement.overlapping_pairs(&circuit, 1e-9).is_empty(),
            "island-internal overlap"
        );
    }
}
