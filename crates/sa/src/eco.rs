//! Warm-start ECO refinement for the SA placer.
//!
//! The annealer's state is a sequence pair over symmetry-island blocks,
//! not coordinates, so a warm placement cannot be resumed directly: it is
//! first mapped back into the representation with the classic
//! geometry → sequence-pair construction (Γ⁺ orders blocks by `x − y`,
//! Γ⁻ by `x + y`; a block left of another precedes it in both sequences,
//! a block below another follows in Γ⁺ and precedes in Γ⁻). A short
//! deterministic greedy polish then explores only moves touching blocks
//! that contain delta-dirtied devices — adjacent transpositions in either
//! sequence plus per-device flip toggles — accepting strict improvements
//! under the full [`evaluate`] oracle. No RNG is drawn, so the fast path
//! is reproducible without carrying annealing chain state.
//!
//! The packed result lives in the packer's lower-left frame; it is
//! translated back onto the warm frame (mean displacement over all
//! devices) before the trait engine blends it region-wise and runs the
//! LP repair that restores exact legality.

use analog_netlist::{Circuit, Placement};

use crate::anneal::{evaluate, SaConfig, SaState};
use crate::island::BlockModel;
use crate::seqpair::SequencePair;

/// Sorts block indices by `key`, ties broken by block index (stable).
fn argsort_by_key(keys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap().then(a.cmp(&b)));
    order
}

/// Reconstructs an annealing state from a warm placement: sequence pair
/// from block-center geometry, flips copied per device.
pub fn warm_state(model: &BlockModel, warm: &Placement) -> SaState {
    let centers: Vec<(f64, f64)> = model
        .blocks
        .iter()
        .map(|b| {
            let n = b.devices.len().max(1) as f64;
            let (sx, sy) = b.devices.iter().fold((0.0, 0.0), |(sx, sy), &(d, _, _)| {
                let (x, y) = warm.positions[d.index()];
                (sx + x, sy + y)
            });
            (sx / n, sy / n)
        })
        .collect();
    let diag_up: Vec<f64> = centers.iter().map(|&(x, y)| x - y).collect();
    let diag_dn: Vec<f64> = centers.iter().map(|&(x, y)| x + y).collect();
    SaState {
        seq_pair: SequencePair {
            s1: argsort_by_key(&diag_up),
            s2: argsort_by_key(&diag_dn),
            flips: vec![(false, false); model.len()],
        },
        flips: warm.flips.clone(),
    }
}

/// Block indices whose islands contain at least one dirtied device.
pub fn dirty_blocks(model: &BlockModel, dirty: &[bool]) -> Vec<usize> {
    model
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.devices.iter().any(|&(d, _, _)| dirty[d.index()]))
        .map(|(i, _)| i)
        .collect()
}

/// One candidate polish move, applied to a trial copy of the state.
enum PolishMove {
    /// Swap positions `(p, p+1)` in Γ⁺.
    SwapS1(usize),
    /// Swap positions `(p, p+1)` in Γ⁻.
    SwapS2(usize),
    /// Toggle device `d`'s x-flip.
    FlipX(usize),
    /// Toggle device `d`'s y-flip.
    FlipY(usize),
}

fn apply(state: &mut SaState, mv: &PolishMove) {
    match *mv {
        PolishMove::SwapS1(p) => state.seq_pair.s1.swap(p, p + 1),
        PolishMove::SwapS2(p) => state.seq_pair.s2.swap(p, p + 1),
        PolishMove::FlipX(d) => state.flips[d].0 = !state.flips[d].0,
        PolishMove::FlipY(d) => state.flips[d].1 = !state.flips[d].1,
    }
}

/// Candidate moves touching `block`: adjacent transpositions around its
/// current slot in each sequence, plus flip toggles for its devices.
fn candidates(state: &SaState, model: &BlockModel, block: usize) -> Vec<PolishMove> {
    let mut moves = Vec::new();
    let m = state.seq_pair.s1.len();
    let p1 = state.seq_pair.s1.iter().position(|&b| b == block);
    let p2 = state.seq_pair.s2.iter().position(|&b| b == block);
    if let Some(p) = p1 {
        if p > 0 {
            moves.push(PolishMove::SwapS1(p - 1));
        }
        if p + 1 < m {
            moves.push(PolishMove::SwapS1(p));
        }
    }
    if let Some(p) = p2 {
        if p > 0 {
            moves.push(PolishMove::SwapS2(p - 1));
        }
        if p + 1 < m {
            moves.push(PolishMove::SwapS2(p));
        }
    }
    for &(d, _, _) in &model.blocks[block].devices {
        moves.push(PolishMove::FlipX(d.index()));
        moves.push(PolishMove::FlipY(d.index()));
    }
    moves
}

/// Greedy dirty-scoped polish: up to `passes` sweeps over the dirty
/// blocks' candidate moves, keeping strict cost improvements. Returns the
/// polished packing translated onto the warm frame, plus moves attempted.
pub fn polish(
    circuit: &Circuit,
    model: &BlockModel,
    config: &SaConfig,
    warm: &Placement,
    dirty: &[bool],
    passes: usize,
) -> (Placement, usize) {
    let mut best = warm_state(model, warm);
    let (mut best_place, mut best_cost) = evaluate(circuit, model, &best, config, None);
    let scope = dirty_blocks(model, dirty);
    let mut moves = 0usize;
    for _ in 0..passes.max(1) {
        let mut improved = false;
        for &block in &scope {
            for mv in candidates(&best, model, block) {
                let mut trial = best.clone();
                apply(&mut trial, &mv);
                let (place, cost) = evaluate(circuit, model, &trial, config, None);
                moves += 1;
                if cost.total < best_cost.total {
                    best = trial;
                    best_place = place;
                    best_cost = cost;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    // Re-anchor the packed (lower-left) frame onto the warm coordinates:
    // the mean displacement is the least-squares optimal translation.
    let n = circuit.num_devices();
    if n > 0 {
        let (mut dx, mut dy) = (0.0, 0.0);
        for i in 0..n {
            dx += warm.positions[i].0 - best_place.positions[i].0;
            dy += warm.positions[i].1 - best_place.positions[i].1;
        }
        dx /= n as f64;
        dy /= n as f64;
        for p in &mut best_place.positions {
            p.0 += dx;
            p.1 += dy;
        }
    }
    (best_place, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn warm_state_preserves_left_right_order() {
        let circuit = testcases::adder();
        let model = BlockModel::new(&circuit);
        // Blocks spread along a row: block i strictly left of block i+1.
        let origins: Vec<(f64, f64)> = (0..model.len()).map(|i| (i as f64 * 50.0, 0.0)).collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let warm = model.expand(&circuit, &origins, &flips);
        let state = warm_state(&model, &warm);
        // A pure row ordering maps to identical Γ⁺ and Γ⁻ sequences.
        assert_eq!(state.seq_pair.s1, state.seq_pair.s2);
        for w in state.seq_pair.s1.windows(2) {
            let cx = |b: usize| {
                let blk = &model.blocks[b];
                blk.devices
                    .iter()
                    .map(|&(d, _, _)| warm.positions[d.index()].0)
                    .sum::<f64>()
                    / blk.devices.len() as f64
            };
            assert!(cx(w[0]) < cx(w[1]));
        }
    }

    #[test]
    fn polish_never_worsens_the_reconstructed_cost() {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        let config = SaConfig::default();
        let origins: Vec<(f64, f64)> = (0..model.len())
            .map(|i| ((i % 3) as f64 * 40.0, (i / 3) as f64 * 40.0))
            .collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let warm = model.expand(&circuit, &origins, &flips);
        let base_state = warm_state(&model, &warm);
        let (_, base_cost) = evaluate(&circuit, &model, &base_state, &config, None);
        let mut dirty = vec![false; circuit.num_devices()];
        dirty[0] = true;
        let (polished, moves) = polish(&circuit, &model, &config, &warm, &dirty, 4);
        assert!(moves > 0, "dirty scope must generate candidate moves");
        // The polished packing (before re-anchoring, cost is translation
        // invariant for area/violation and HPWL) is no worse than the
        // straight reconstruction.
        let hpwl = polished.hpwl(&circuit);
        let area = polished.area(&circuit);
        let violation =
            polished.alignment_violation(&circuit) + polished.ordering_violation(&circuit);
        let total = area + config.hpwl_weight * hpwl + config.penalty_weight * violation;
        assert!(total <= base_cost.total + 1e-9);
    }
}
