//! The simulated-annealing engine over symmetry-island sequence pairs.
//!
//! State = a sequence pair over the circuit's [`BlockModel`] blocks (each
//! symmetry group is one rigid island; see [`crate::island`]) plus
//! per-device flip bits. Cost = packed area + w·HPWL + alignment/ordering
//! penalties (+ optional GNN performance term Φ, as in the ICCAD'20 SA
//! flow \[19\]; symmetry is exact by construction). Moves: swaps in Γ⁺, Γ⁻
//! or both, segment relocation, and device flips. Geometric cooling with a
//! move-sampled initial temperature; footnote 1 of the paper applies —
//! practical budgets, no optimality claim.

use analog_netlist::{Circuit, Placement};
use eplace::{BudgetStatus, ConfigError, RunBudget};
use placer_gnn::{CircuitGraph, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::evaluator::{EvalTables, MoveEvaluator};
use crate::island::BlockModel;
use crate::seqpair::SequencePair;
use crate::shared::SaShared;

use placer_telemetry::Counter;

// Whole-run work counters, bumped once per chain (not per move).
static SA_MOVES: Counter = Counter::new("sa_moves");
static SA_ACCEPTS: Counter = Counter::new("sa_accepts");
static SA_PACK_SKIPS: Counter = Counter::new("sa_pack_skips");
static SA_DENSE_SWEEPS: Counter = Counter::new("sa_dense_sweeps");
static SA_SPARSE_REPRICES: Counter = Counter::new("sa_sparse_reprices");

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Number of temperature levels.
    pub temperatures: usize,
    /// Moves attempted per temperature level.
    pub moves_per_temperature: usize,
    /// Geometric cooling factor in (0, 1).
    pub cooling: f64,
    /// HPWL weight relative to area in the cost.
    pub hpwl_weight: f64,
    /// Constraint-violation penalty weight (area units per µm).
    pub penalty_weight: f64,
    /// RNG seed.
    pub seed: u64,
    /// Independent annealing chains to run (best result wins).
    ///
    /// Chains execute concurrently when threads are available, each with
    /// its own RNG stream derived from `seed` and the chain index. The
    /// winner is picked in chain order, so a fixed seed yields an
    /// identical placement for any thread count.
    pub chains: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            temperatures: 120,
            moves_per_temperature: 160,
            cooling: 0.94,
            hpwl_weight: 1.0,
            penalty_weight: 40.0,
            seed: 7,
            chains: 1,
        }
    }
}

impl SaConfig {
    /// Starts a validating builder seeded with [`SaConfig::default`].
    pub fn builder() -> SaConfigBuilder {
        SaConfigBuilder {
            config: SaConfig::default(),
        }
    }

    /// Checks every field; [`SaConfigBuilder::build`] calls this, and
    /// hand-rolled configs can too.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.temperatures == 0 {
            return Err(ConfigError::new("sa.temperatures", "must be > 0"));
        }
        if self.moves_per_temperature == 0 {
            return Err(ConfigError::new("sa.moves_per_temperature", "must be > 0"));
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err(ConfigError::new(
                "sa.cooling",
                format!("must lie in (0, 1), got {}", self.cooling),
            ));
        }
        eplace::require_nonnegative("sa.hpwl_weight", self.hpwl_weight)?;
        eplace::require_nonnegative("sa.penalty_weight", self.penalty_weight)?;
        if self.chains == 0 {
            return Err(ConfigError::new("sa.chains", "must be > 0"));
        }
        Ok(())
    }
}

/// Validating builder for [`SaConfig`]; see [`SaConfig::builder`].
#[derive(Debug, Clone)]
pub struct SaConfigBuilder {
    config: SaConfig,
}

impl SaConfigBuilder {
    /// Sets the number of temperature levels.
    pub fn temperatures(mut self, temperatures: usize) -> Self {
        self.config.temperatures = temperatures;
        self
    }

    /// Sets the moves attempted per temperature level.
    pub fn moves_per_temperature(mut self, moves: usize) -> Self {
        self.config.moves_per_temperature = moves;
        self
    }

    /// Alias for [`SaConfigBuilder::moves_per_temperature`] — "level" and
    /// "temperature" name the same cooling step.
    pub fn moves_per_level(self, moves: usize) -> Self {
        self.moves_per_temperature(moves)
    }

    /// Sets the geometric cooling factor (must end up in `(0, 1)`).
    pub fn cooling(mut self, cooling: f64) -> Self {
        self.config.cooling = cooling;
        self
    }

    /// Sets the HPWL weight in the cost.
    pub fn hpwl_weight(mut self, weight: f64) -> Self {
        self.config.hpwl_weight = weight;
        self
    }

    /// Sets the constraint-violation penalty weight.
    pub fn penalty_weight(mut self, weight: f64) -> Self {
        self.config.penalty_weight = weight;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the number of independent annealing chains.
    pub fn chains(mut self, chains: usize) -> Self {
        self.config.chains = chains;
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<SaConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// An optional performance term for the cost function.
pub struct PerfCost<'a> {
    /// The trained model.
    pub network: &'a Network,
    /// Weight of Φ in the cost (area units).
    pub weight: f64,
    /// Graph coordinate scale the model was trained with.
    pub scale: f64,
}

/// The cost breakdown of an annealing state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaCost {
    /// Bounding-box area of the packing (µm²).
    pub area: f64,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Constraint violation (µm; alignment + ordering, symmetry is exact).
    pub violation: f64,
    /// GNN performance probability (0 when no perf term).
    pub phi: f64,
    /// The combined scalar cost.
    pub total: f64,
}

/// One annealing state: island sequence pair + device flips.
#[derive(Debug, Clone, PartialEq)]
pub struct SaState {
    /// Sequence pair over the blocks.
    pub seq_pair: SequencePair,
    /// Per-device flips.
    pub flips: Vec<(bool, bool)>,
}

impl SaState {
    /// Copies another state of the same shape into `self` without
    /// allocating (the annealer's per-move trial reset).
    ///
    /// # Panics
    ///
    /// Panics if the states disagree on block or device count.
    pub fn copy_from(&mut self, other: &SaState) {
        self.seq_pair.copy_from(&other.seq_pair);
        self.flips.copy_from_slice(&other.flips);
    }
}

/// Evaluates the SA cost of a state.
pub fn evaluate(
    circuit: &Circuit,
    model: &BlockModel,
    state: &SaState,
    config: &SaConfig,
    perf: Option<&mut (PerfCost<'_>, CircuitGraph)>,
) -> (Placement, SaCost) {
    let widths: Vec<f64> = model.blocks.iter().map(|b| b.width).collect();
    let heights: Vec<f64> = model.blocks.iter().map(|b| b.height).collect();
    let origins = state.seq_pair.pack_dims(&widths, &heights);
    let placement = model.expand(circuit, &origins, &state.flips);
    let area = placement.area(circuit);
    let hpwl = placement.hpwl(circuit);
    let violation = placement.alignment_violation(circuit) + placement.ordering_violation(circuit);
    let phi = match perf {
        Some((cost, graph)) => {
            graph.update_positions(&placement);
            cost.network.predict(graph)
        }
        None => 0.0,
    };
    let total = area + config.hpwl_weight * hpwl + config.penalty_weight * violation;
    (
        placement,
        SaCost {
            area,
            hpwl,
            violation,
            phi,
            total,
        },
    )
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best state found.
    pub state: SaState,
    /// Its packed placement.
    pub placement: Placement,
    /// Its cost breakdown.
    pub cost: SaCost,
    /// Total moves attempted.
    pub moves: usize,
}

/// A reversible record of one [`apply_move`] mutation, letting a rejected
/// trial roll back in O(1) instead of recopying the committed state.
#[derive(Debug, Clone, Copy)]
enum MoveRec {
    /// Positions swapped in Γ⁺.
    SwapS1(usize, usize),
    /// Positions swapped in Γ⁻.
    SwapS2(usize, usize),
    /// Positions swapped in both sequences (same two blocks).
    SwapBoth {
        /// Swapped positions in Γ⁺.
        s1: (usize, usize),
        /// Swapped positions in Γ⁻.
        s2: (usize, usize),
    },
    /// Block removed at `.0` and reinserted at `.1` in Γ⁺.
    Relocate(usize, usize),
    /// Device x-flip toggled.
    FlipX(usize),
    /// Device y-flip toggled.
    FlipY(usize),
}

/// Applies one random move in place and returns its undo record.
///
/// This is the annealer's single source of move truth — the RNG draw
/// pattern here defines the chain's stream, and [`random_move`] is a thin
/// wrapper that discards the record.
fn apply_move(state: &mut SaState, num_devices: usize, rng: &mut StdRng) -> MoveRec {
    let sp = &mut state.seq_pair;
    let m = sp.s1.len();
    match rng.gen_range(0..5) {
        0 if m >= 2 => {
            let (i, j) = (rng.gen_range(0..m), rng.gen_range(0..m));
            sp.s1.swap(i, j);
            MoveRec::SwapS1(i, j)
        }
        1 if m >= 2 => {
            let (i, j) = (rng.gen_range(0..m), rng.gen_range(0..m));
            sp.s2.swap(i, j);
            MoveRec::SwapS2(i, j)
        }
        2 if m >= 2 => {
            // Swap the same two blocks in both sequences.
            let (a, b) = (rng.gen_range(0..m), rng.gen_range(0..m));
            let (pa1, pb1) = (
                sp.s1.iter().position(|&d| d == a).expect("present"),
                sp.s1.iter().position(|&d| d == b).expect("present"),
            );
            sp.s1.swap(pa1, pb1);
            let (pa2, pb2) = (
                sp.s2.iter().position(|&d| d == a).expect("present"),
                sp.s2.iter().position(|&d| d == b).expect("present"),
            );
            sp.s2.swap(pa2, pb2);
            MoveRec::SwapBoth {
                s1: (pa1, pb1),
                s2: (pa2, pb2),
            }
        }
        3 if m >= 2 => {
            // Relocate one block within Γ⁺.
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            let d = sp.s1.remove(i);
            sp.s1.insert(j, d);
            MoveRec::Relocate(i, j)
        }
        _ => {
            let d = rng.gen_range(0..num_devices);
            if rng.gen_bool(0.5) {
                state.flips[d].0 = !state.flips[d].0;
                MoveRec::FlipX(d)
            } else {
                state.flips[d].1 = !state.flips[d].1;
                MoveRec::FlipY(d)
            }
        }
    }
}

/// Reverts the mutation recorded by [`apply_move`].
fn undo_move(state: &mut SaState, rec: MoveRec) {
    let sp = &mut state.seq_pair;
    match rec {
        MoveRec::SwapS1(i, j) => sp.s1.swap(i, j),
        MoveRec::SwapS2(i, j) => sp.s2.swap(i, j),
        MoveRec::SwapBoth {
            s1: (a1, b1),
            s2: (a2, b2),
        } => {
            sp.s1.swap(a1, b1);
            sp.s2.swap(a2, b2);
        }
        MoveRec::Relocate(i, j) => {
            let d = sp.s1.remove(j);
            sp.s1.insert(i, d);
        }
        MoveRec::FlipX(d) => state.flips[d].0 = !state.flips[d].0,
        MoveRec::FlipY(d) => state.flips[d].1 = !state.flips[d].1,
    }
}

pub(crate) fn random_move(state: &mut SaState, num_devices: usize, rng: &mut StdRng) {
    let _ = apply_move(state, num_devices, rng);
}

/// Derives the RNG seed of one chain from the base seed.
///
/// Chain 0 keeps the base seed so a single-chain run reproduces the
/// historical sequence exactly; later chains go through a SplitMix64-style
/// finalizer so chains sharing a base seed are decorrelated.
fn chain_seed(seed: u64, chain: usize) -> u64 {
    if chain == 0 {
        return seed;
    }
    let mut z = seed ^ (chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A paused annealing chain, frozen at a temperature-level boundary.
///
/// At a level boundary the trial state equals the committed state, so one
/// [`SaState`] plus the RNG words and the running scalars reproduce the
/// chain exactly: resume rebuilds the [`MoveEvaluator`] from `state`
/// (packing is a pure function of the state, so the rebuilt committed
/// caches are bitwise identical) and replays the remaining levels on the
/// restored RNG stream.
#[derive(Debug, Clone)]
pub struct ChainCheckpoint {
    /// The next temperature level to run.
    pub level: usize,
    /// Temperature at that level.
    pub temperature: f64,
    /// Committed annealing state.
    pub state: SaState,
    /// Cost of `state` (restored bit-for-bit, never recomputed).
    pub cost: SaCost,
    /// Best state seen so far.
    pub best_state: SaState,
    /// Cost of `best_state`.
    pub best_cost: SaCost,
    /// Moves attempted so far.
    pub moves: usize,
    /// Moves accepted so far.
    pub accepts: u64,
    /// xoshiro256++ RNG words at the boundary.
    pub rng: [u64; 4],
}

/// One chain's slot in an [`SaCheckpoint`].
#[derive(Debug, Clone)]
pub enum ChainEntry {
    /// The chain finished (all levels, or its budget expired) before the
    /// run as a whole was cancelled; its result rides along so resume can
    /// still pick the winner across every chain.
    Done {
        /// Best state the finished chain found.
        state: SaState,
        /// Its cost.
        cost: SaCost,
        /// Moves the chain attempted.
        moves: usize,
        /// Whether the chain stopped on budget exhaustion.
        exhausted: bool,
    },
    /// The chain was cancelled mid-run and resumes from here.
    Pending(ChainCheckpoint),
}

/// A cancelled multi-chain annealing run: one entry per chain.
#[derive(Debug, Clone)]
pub struct SaCheckpoint {
    /// Per-chain progress, indexed by chain number.
    pub chains: Vec<ChainEntry>,
}

/// What a budgeted annealing run produced.
#[derive(Debug, Clone)]
pub enum AnnealRun {
    /// Every chain ran all its temperature levels.
    Complete(AnnealResult),
    /// The budget expired; best-so-far across chains (states are packings,
    /// so the placement is overlap-free and symmetric like any SA output).
    Exhausted(AnnealResult),
    /// Cancelled; feed the checkpoint back to [`anneal_budgeted`] to
    /// finish the run bit-for-bit.
    Cancelled(SaCheckpoint),
}

/// How one chain segment ended (crate-internal).
enum ChainRun {
    /// Chain finished its levels (or exhausted its budget).
    Done {
        result: AnnealResult,
        exhausted: bool,
    },
    Cancelled(ChainCheckpoint),
}

type ChainFn = fn(
    &Circuit,
    &SaConfig,
    Option<PerfCost<'_>>,
    u64,
    Option<&RunBudget>,
    Option<&ChainCheckpoint>,
    Option<&SaShared>,
) -> ChainRun;

/// Runs simulated annealing over the circuit's symmetry-island blocks.
///
/// The perf term (when provided) is *inferred* each evaluation, matching
/// the paper's SA baseline where Φ(G) is part of the cost, not a gradient.
///
/// With `config.chains > 1` the independent chains run concurrently (see
/// [`SaConfig::chains`]); `moves` in the result counts attempts across
/// *all* chains.
pub fn anneal(circuit: &Circuit, config: &SaConfig, perf: Option<PerfCost<'_>>) -> AnnealResult {
    match anneal_multi(circuit, config, perf, None, None, None, anneal_chain) {
        AnnealRun::Complete(r) => r,
        // Unreachable without a budget, but harmless to define.
        AnnealRun::Exhausted(r) => r,
        AnnealRun::Cancelled(_) => unreachable!("no budget, cannot cancel"),
    }
}

/// [`anneal`] under a [`RunBudget`], optionally resuming a cancelled run.
///
/// The budget is checked once per temperature level per chain — the same
/// granularity the checkpoints are cut at — never per move. With an
/// unlimited budget and no resume this is bit-identical to [`anneal`].
pub fn anneal_budgeted(
    circuit: &Circuit,
    config: &SaConfig,
    perf: Option<PerfCost<'_>>,
    budget: &RunBudget,
    resume: Option<&SaCheckpoint>,
) -> AnnealRun {
    anneal_budgeted_with(circuit, config, perf, budget, resume, None)
}

/// [`anneal_budgeted`] over optional pre-built shared artifacts — the
/// amortized path for batched sweeps. With `shared` present the chains use
/// its [`BlockModel`]/[`EvalTables`](crate::EvalTables) instead of
/// rebuilding them; both are pure functions of the circuit, so the run is
/// bit-identical to [`anneal_budgeted`] (`shared` must have been built for
/// this circuit).
pub fn anneal_budgeted_with(
    circuit: &Circuit,
    config: &SaConfig,
    perf: Option<PerfCost<'_>>,
    budget: &RunBudget,
    resume: Option<&SaCheckpoint>,
    shared: Option<&SaShared>,
) -> AnnealRun {
    anneal_multi(
        circuit,
        config,
        perf,
        Some(budget),
        resume,
        shared,
        anneal_chain,
    )
}

/// Full-recompute annealer kept as the oracle for the incremental engine.
///
/// Runs the exact same chain (identical RNG stream, identical
/// floating-point evaluation order) but prices every trial move with the
/// whole-circuit [`evaluate`] instead of [`MoveEvaluator`]. Fixed seeds
/// produce bit-identical results to [`anneal`]; the property tests and the
/// `sa_sweep` benchmark lean on that.
pub fn anneal_reference(
    circuit: &Circuit,
    config: &SaConfig,
    perf: Option<PerfCost<'_>>,
) -> AnnealResult {
    match anneal_multi(
        circuit,
        config,
        perf,
        None,
        None,
        None,
        anneal_chain_reference,
    ) {
        AnnealRun::Complete(r) => r,
        AnnealRun::Exhausted(r) => r,
        AnnealRun::Cancelled(_) => unreachable!("no budget, cannot cancel"),
    }
}

/// [`anneal_reference`] under a [`RunBudget`] — the budgeted oracle.
///
/// Checkpoints are interchangeable with [`anneal_budgeted`]'s: a chain
/// frozen by one engine resumes bit-identically on the other, because both
/// store only the committed state and the RNG words.
pub fn anneal_reference_budgeted(
    circuit: &Circuit,
    config: &SaConfig,
    perf: Option<PerfCost<'_>>,
    budget: &RunBudget,
    resume: Option<&SaCheckpoint>,
) -> AnnealRun {
    anneal_multi(
        circuit,
        config,
        perf,
        Some(budget),
        resume,
        None,
        anneal_chain_reference,
    )
}

/// Multi-chain dispatch shared by the budgeted and legacy entry points.
fn anneal_multi(
    circuit: &Circuit,
    config: &SaConfig,
    mut perf: Option<PerfCost<'_>>,
    budget: Option<&RunBudget>,
    resume: Option<&SaCheckpoint>,
    shared: Option<&SaShared>,
    chain: ChainFn,
) -> AnnealRun {
    let chains = config.chains.max(1);
    if let Some(ck) = resume {
        assert_eq!(
            ck.chains.len(),
            chains,
            "checkpoint has {} chains, config wants {chains}",
            ck.chains.len()
        );
    }
    // PerfCost borrows the network immutably, so every chain can share it;
    // each chain rebuilds its own CircuitGraph scratch internally.
    let perf_parts = perf.take().map(|p| (p.network, p.weight, p.scale));
    let run_one = |index: usize| -> ChainRun {
        let chain_perf = perf_parts.map(|(network, weight, scale)| PerfCost {
            network,
            weight,
            scale,
        });
        match resume.map(|ck| &ck.chains[index]) {
            Some(ChainEntry::Done {
                state,
                cost,
                moves,
                exhausted,
            }) => {
                // Finished before the cancellation: rebuild its placement
                // (a pure function of the state) and pass it through.
                let owned;
                let model = match shared {
                    Some(s) => &*s.model,
                    None => {
                        owned = BlockModel::new(circuit);
                        &owned
                    }
                };
                let placement = evaluate(circuit, model, state, config, None).0;
                ChainRun::Done {
                    result: AnnealResult {
                        state: state.clone(),
                        placement,
                        cost: *cost,
                        moves: *moves,
                    },
                    exhausted: *exhausted,
                }
            }
            Some(ChainEntry::Pending(ck)) => chain(
                circuit,
                config,
                chain_perf,
                chain_seed(config.seed, index),
                budget,
                Some(ck),
                shared,
            ),
            None => chain(
                circuit,
                config,
                chain_perf,
                chain_seed(config.seed, index),
                budget,
                None,
                shared,
            ),
        }
    };
    // Thread fan-out only pays once each chain carries real work: below
    // this many device-moves per chain (schedule length × moves × devices),
    // spawn/join overhead exceeds the chain runtime and the bench showed a
    // net regression (sa_chains 0.92× at ~44k device-moves). Chains are
    // fully independent and each owns its RNG stream, so serial and
    // threaded execution are bit-identical — the threshold only moves the
    // crossover point.
    const CHAIN_WORK_THRESHOLD: u64 = 500_000;
    let chain_work = config.temperatures as u64
        * config.moves_per_temperature as u64
        * circuit.num_devices().max(1) as u64;
    let outcomes = if chains == 1 || chain_work < CHAIN_WORK_THRESHOLD {
        (0..chains).map(run_one).collect()
    } else {
        placer_parallel::par_map(chains, run_one)
    };

    if outcomes.iter().any(|o| matches!(o, ChainRun::Cancelled(_))) {
        let entries = outcomes
            .into_iter()
            .map(|o| match o {
                ChainRun::Done { result, exhausted } => ChainEntry::Done {
                    state: result.state,
                    cost: result.cost,
                    moves: result.moves,
                    exhausted,
                },
                ChainRun::Cancelled(ck) => ChainEntry::Pending(ck),
            })
            .collect();
        return AnnealRun::Cancelled(SaCheckpoint { chains: entries });
    }

    // Pick the winner in chain order (strict `<`, so ties break toward the
    // lowest chain index) — deterministic for any thread count.
    let mut total_moves = 0;
    let mut any_exhausted = false;
    let mut best: Option<AnnealResult> = None;
    for o in outcomes {
        let ChainRun::Done { result, exhausted } = o else {
            unreachable!("cancelled runs returned above");
        };
        total_moves += result.moves;
        any_exhausted |= exhausted;
        if best
            .as_ref()
            .is_none_or(|b| result.cost.total < b.cost.total)
        {
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one chain ran");
    best.moves = total_moves;
    if any_exhausted {
        AnnealRun::Exhausted(best)
    } else {
        AnnealRun::Complete(best)
    }
}

/// One annealing chain with an explicit RNG seed, priced incrementally.
///
/// Same move/acceptance/RNG structure as [`anneal_chain_reference`], but a
/// [`MoveEvaluator`] owns all scratch, so the inner loop does O(changed
/// work) per trial and never allocates.
fn anneal_chain(
    circuit: &Circuit,
    config: &SaConfig,
    mut perf: Option<PerfCost<'_>>,
    seed: u64,
    budget: Option<&RunBudget>,
    resume: Option<&ChainCheckpoint>,
    shared: Option<&SaShared>,
) -> ChainRun {
    static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("sa_chain");
    let _span = SPAN.enter();
    let n = circuit.num_devices();
    let owned_model;
    let model: &BlockModel = match shared {
        Some(s) => &s.model,
        None => {
            owned_model = BlockModel::new(circuit);
            &owned_model
        }
    };

    // Committed state + RNG: fresh deterministic shuffle, or the exact
    // words frozen at the checkpoint's level boundary.
    let mut rng;
    let state;
    match resume {
        Some(ck) => {
            rng = StdRng::from_state(ck.rng);
            state = ck.state.clone();
        }
        None => {
            rng = StdRng::seed_from_u64(seed);
            let mut fresh = SaState {
                seq_pair: SequencePair::identity(model.len()),
                flips: vec![(false, false); n],
            };
            // Shuffle the start deterministically.
            for _ in 0..4 * model.len() {
                random_move(&mut fresh, n, &mut rng);
            }
            state = fresh;
        }
    }

    let perf_parts = perf.take().map(|p| (p.network, p.weight, p.scale));
    let perf_weight = perf_parts.map(|(_, weight, _)| weight).unwrap_or(0.0);
    let tables = match shared {
        Some(s) => std::sync::Arc::clone(&s.tables),
        None => std::sync::Arc::new(EvalTables::new(circuit, model)),
    };
    let mut evaluator = MoveEvaluator::with_tables(
        circuit,
        model,
        config,
        &state,
        perf_parts.map(|(network, _, scale)| (network, scale)),
        tables,
    );
    // `MoveEvaluator` reports the oracle cost (Φ unweighted in the total);
    // fold the perf weight in exactly where the reference chain does.
    let with_perf = |mut cost: SaCost| -> SaCost {
        cost.total += perf_weight * cost.phi;
        cost
    };

    let mut trial = state.clone();
    let mut cost;
    let mut temperature;
    let mut best_state;
    let mut best_placement;
    let mut best_cost;
    let mut moves;
    let mut accepts;
    let start_level;
    match resume {
        Some(ck) => {
            // Scalars come back bit-for-bit from the checkpoint; only the
            // best placement is rebuilt (packing is a pure function of the
            // state, so the rebuild is bitwise exact). The init shuffle and
            // temperature probe already happened before the boundary —
            // their RNG draws live inside `ck.rng`.
            cost = ck.cost;
            temperature = ck.temperature;
            best_state = ck.best_state.clone();
            best_placement = evaluate(circuit, model, &best_state, config, None).0;
            best_cost = ck.best_cost;
            moves = ck.moves;
            accepts = ck.accepts;
            start_level = ck.level;
        }
        None => {
            cost = with_perf(evaluator.cost());

            // Sample uphill deltas for the initial temperature. The probe
            // drifts several moves from the committed state without
            // accepting; the evaluator diffs each trial against the
            // committed packing, so stacked moves are priced correctly.
            let mut deltas = Vec::new();
            for _ in 0..30 {
                random_move(&mut trial, n, &mut rng);
                let c = with_perf(evaluator.eval_trial(&trial));
                let d = c.total - cost.total;
                if d > 0.0 {
                    deltas.push(d);
                }
            }
            temperature = if deltas.is_empty() {
                cost.total.abs() * 0.05 + 1.0
            } else {
                deltas.iter().sum::<f64>() / deltas.len() as f64 * 2.0
            };

            best_state = state.clone();
            best_placement = evaluator.placement().clone();
            best_cost = cost;
            moves = 0usize;

            // Re-sync the trial after the probe drift; from here it
            // mirrors the evaluator's committed state between moves, so a
            // rejected trial rolls back with an O(1) undo instead of a
            // full state copy.
            trial.copy_from(&state);
            accepts = 0u64;
            start_level = 0;
        }
    }
    let mut exhausted = false;
    let mut stats_prev = evaluator.stats();
    for level in start_level..config.temperatures {
        // Budget granularity == checkpoint granularity: one check per
        // temperature level, at the boundary where trial == committed.
        if let Some(b) = budget {
            match b.check() {
                BudgetStatus::Continue => {}
                BudgetStatus::Exhausted => {
                    exhausted = true;
                    break;
                }
                BudgetStatus::Cancelled => {
                    return ChainRun::Cancelled(ChainCheckpoint {
                        level,
                        temperature,
                        state: trial.clone(),
                        cost,
                        best_state,
                        best_cost,
                        moves,
                        accepts,
                        rng: rng.state(),
                    });
                }
            }
        }
        let level_accepts_before = accepts;
        for _ in 0..config.moves_per_temperature {
            moves += 1;
            let rec = apply_move(&mut trial, n, &mut rng);
            let cand_cost = with_perf(evaluator.eval_trial(&trial));
            let delta = cand_cost.total - cost.total;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp() {
                evaluator.accept();
                accepts += 1;
                cost = cand_cost;
                if cost.total < best_cost.total {
                    best_state.copy_from(&trial);
                    best_placement
                        .positions
                        .copy_from_slice(&evaluator.placement().positions);
                    best_placement
                        .flips
                        .copy_from_slice(&evaluator.placement().flips);
                    best_cost = cost;
                }
            } else {
                undo_move(&mut trial, rec);
            }
        }
        if placer_telemetry::active() {
            // One buffered event per temperature level, outside the move
            // loop; evaluator counters are emitted as per-level deltas.
            let stats = evaluator.stats();
            let level_moves = config.moves_per_temperature.max(1) as f64;
            placer_telemetry::record(
                "sa_temp",
                &[
                    ("seed", seed as f64),
                    ("level", level as f64),
                    ("levels", config.temperatures as f64),
                    ("temperature", temperature),
                    (
                        "acceptance",
                        (accepts - level_accepts_before) as f64 / level_moves,
                    ),
                    ("cost", cost.total),
                    ("best_cost", best_cost.total),
                    (
                        "pack_skips",
                        (stats.pack_skips - stats_prev.pack_skips) as f64,
                    ),
                    (
                        "dense_sweeps",
                        (stats.dense_sweeps - stats_prev.dense_sweeps) as f64,
                    ),
                    (
                        "sparse_reprices",
                        (stats.sparse_reprices - stats_prev.sparse_reprices) as f64,
                    ),
                    (
                        "dirty_devices",
                        (stats.dirty_devices - stats_prev.dirty_devices) as f64,
                    ),
                ],
            );
            stats_prev = stats;
        }
        temperature *= config.cooling;
    }
    if placer_telemetry::active() {
        SA_MOVES.add(moves as u64);
        SA_ACCEPTS.add(accepts);
        let stats = evaluator.stats();
        SA_PACK_SKIPS.add(stats.pack_skips);
        SA_DENSE_SWEEPS.add(stats.dense_sweeps);
        SA_SPARSE_REPRICES.add(stats.sparse_reprices);
        placer_telemetry::record(
            "sa_chain_done",
            &[
                ("seed", seed as f64),
                ("moves", moves as f64),
                ("accepts", accepts as f64),
                ("best_cost", best_cost.total),
                ("best_hpwl", best_cost.hpwl),
                ("best_area", best_cost.area),
            ],
        );
        // Chains may run on worker threads: drain this thread's ring while
        // the chain still owns it.
        placer_telemetry::flush();
    }
    ChainRun::Done {
        result: AnnealResult {
            state: best_state,
            placement: best_placement,
            cost: best_cost,
            moves,
        },
        exhausted,
    }
}

/// One annealing chain priced by full recomputation (the seed behavior).
fn anneal_chain_reference(
    circuit: &Circuit,
    config: &SaConfig,
    mut perf: Option<PerfCost<'_>>,
    seed: u64,
    budget: Option<&RunBudget>,
    resume: Option<&ChainCheckpoint>,
    shared: Option<&SaShared>,
) -> ChainRun {
    let n = circuit.num_devices();
    let owned_model;
    let model: &BlockModel = match shared {
        Some(s) => &s.model,
        None => {
            owned_model = BlockModel::new(circuit);
            &owned_model
        }
    };

    let mut perf_state = perf.take().map(|p| {
        let graph = CircuitGraph::new(circuit, &Placement::new(n), p.scale);
        (p, graph)
    });
    let perf_weight = perf_state.as_ref().map(|(p, _)| p.weight).unwrap_or(0.0);
    let cost_of = |state: &SaState,
                   perf_state: &mut Option<(PerfCost<'_>, CircuitGraph)>|
     -> (Placement, SaCost) {
        let (placement, mut cost) = evaluate(circuit, model, state, config, perf_state.as_mut());
        cost.total += perf_weight * cost.phi;
        (placement, cost)
    };

    let mut rng;
    let mut state;
    let mut placement;
    let mut cost;
    let mut temperature;
    let mut best_state;
    let mut best_placement;
    let mut best_cost;
    let mut moves;
    let mut accepts;
    let start_level;
    match resume {
        Some(ck) => {
            // Same restore discipline as the incremental chain: scalars
            // come back bit-for-bit, placements are rebuilt from states.
            rng = StdRng::from_state(ck.rng);
            state = ck.state.clone();
            placement = cost_of(&state, &mut perf_state).0;
            cost = ck.cost;
            temperature = ck.temperature;
            best_state = ck.best_state.clone();
            best_placement = cost_of(&best_state, &mut perf_state).0;
            best_cost = ck.best_cost;
            moves = ck.moves;
            accepts = ck.accepts;
            start_level = ck.level;
        }
        None => {
            rng = StdRng::seed_from_u64(seed);
            state = SaState {
                seq_pair: SequencePair::identity(model.len()),
                flips: vec![(false, false); n],
            };
            // Shuffle the start deterministically.
            for _ in 0..4 * model.len() {
                random_move(&mut state, n, &mut rng);
            }

            let (p0, c0) = cost_of(&state, &mut perf_state);
            placement = p0;
            cost = c0;

            // Sample uphill deltas for the initial temperature.
            let mut deltas = Vec::new();
            {
                let mut probe = state.clone();
                for _ in 0..30 {
                    random_move(&mut probe, n, &mut rng);
                    let (_, c) = cost_of(&probe, &mut perf_state);
                    let d = c.total - cost.total;
                    if d > 0.0 {
                        deltas.push(d);
                    }
                }
            }
            temperature = if deltas.is_empty() {
                cost.total.abs() * 0.05 + 1.0
            } else {
                deltas.iter().sum::<f64>() / deltas.len() as f64 * 2.0
            };

            best_state = state.clone();
            best_placement = placement.clone();
            best_cost = cost;
            moves = 0usize;
            accepts = 0u64;
            start_level = 0;
        }
    }

    let mut exhausted = false;
    for level in start_level..config.temperatures {
        if let Some(b) = budget {
            match b.check() {
                BudgetStatus::Continue => {}
                BudgetStatus::Exhausted => {
                    exhausted = true;
                    break;
                }
                BudgetStatus::Cancelled => {
                    return ChainRun::Cancelled(ChainCheckpoint {
                        level,
                        temperature,
                        state: state.clone(),
                        cost,
                        best_state,
                        best_cost,
                        moves,
                        accepts,
                        rng: rng.state(),
                    });
                }
            }
        }
        for _ in 0..config.moves_per_temperature {
            moves += 1;
            let mut candidate = state.clone();
            random_move(&mut candidate, n, &mut rng);
            let (cand_placement, cand_cost) = cost_of(&candidate, &mut perf_state);
            let delta = cand_cost.total - cost.total;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp() {
                state = candidate;
                placement = cand_placement;
                cost = cand_cost;
                accepts += 1;
                if cost.total < best_cost.total {
                    best_state = state.clone();
                    best_placement = placement.clone();
                    best_cost = cost;
                }
            }
        }
        temperature *= config.cooling;
    }
    let _ = placement;
    ChainRun::Done {
        result: AnnealResult {
            state: best_state,
            placement: best_placement,
            cost: best_cost,
            moves,
        },
        exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn quick_config() -> SaConfig {
        SaConfig {
            temperatures: 30,
            moves_per_temperature: 40,
            ..SaConfig::default()
        }
    }

    #[test]
    fn annealing_improves_over_initial_state() {
        let c = testcases::cc_ota();
        let config = quick_config();
        let model = BlockModel::new(&c);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut state = SaState {
            seq_pair: SequencePair::identity(model.len()),
            flips: vec![(false, false); c.num_devices()],
        };
        for _ in 0..4 * model.len() {
            random_move(&mut state, c.num_devices(), &mut rng);
        }
        let (_, initial) = evaluate(&c, &model, &state, &config, None);
        let result = anneal(&c, &config, None);
        assert!(
            result.cost.total < initial.total,
            "SA failed to improve: {} -> {}",
            initial.total,
            result.cost.total
        );
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let c = testcases::adder();
        let a = anneal(&c, &quick_config(), None);
        let b = anneal(&c, &quick_config(), None);
        assert_eq!(a.cost.total, b.cost.total);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn result_placement_is_overlap_free_and_symmetric() {
        let c = testcases::comp1();
        let result = anneal(&c, &quick_config(), None);
        assert!(result.placement.overlapping_pairs(&c, 1e-9).is_empty());
        // Islands make symmetry exact by construction.
        assert!(result.placement.symmetry_violation(&c) < 1e-9);
    }

    #[test]
    fn perf_term_is_evaluated() {
        let c = testcases::adder();
        let network = Network::default_config(3);
        let result = anneal(
            &c,
            &quick_config(),
            Some(PerfCost {
                network: &network,
                weight: 50.0,
                scale: 20.0,
            }),
        );
        assert!(result.cost.phi > 0.0 && result.cost.phi < 1.0);
    }

    #[test]
    fn moves_counter_matches_budget() {
        let c = testcases::adder();
        let cfg = quick_config();
        let result = anneal(&c, &cfg, None);
        assert_eq!(result.moves, cfg.temperatures * cfg.moves_per_temperature);
    }

    #[test]
    fn multi_chain_counts_moves_across_all_chains() {
        let c = testcases::adder();
        let cfg = SaConfig {
            chains: 3,
            ..quick_config()
        };
        let result = anneal(&c, &cfg, None);
        assert_eq!(
            result.moves,
            3 * cfg.temperatures * cfg.moves_per_temperature
        );
    }

    #[test]
    fn multi_chain_is_never_worse_than_chain_zero() {
        let c = testcases::comp1();
        let single = anneal(&c, &quick_config(), None);
        let multi = anneal(
            &c,
            &SaConfig {
                chains: 4,
                ..quick_config()
            },
            None,
        );
        assert!(multi.cost.total <= single.cost.total);
    }

    #[test]
    fn chains_are_deterministic_across_thread_counts() {
        let c = testcases::cc_ota();
        let cfg = SaConfig {
            chains: 4,
            ..quick_config()
        };
        placer_parallel::set_max_threads(1);
        let serial = anneal(&c, &cfg, None);
        placer_parallel::set_max_threads(4);
        let threaded = anneal(&c, &cfg, None);
        placer_parallel::set_max_threads(0);
        assert_eq!(serial.cost.total.to_bits(), threaded.cost.total.to_bits());
        assert_eq!(serial.placement, threaded.placement);
        assert_eq!(serial.state, threaded.state);
        assert_eq!(serial.moves, threaded.moves);
    }

    #[test]
    fn incremental_annealer_matches_full_recompute_reference() {
        // The tentpole claim: switching to the incremental engine changes
        // wall time, not placements. Same seed → bit-identical results.
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let cfg = SaConfig {
                chains: 2,
                ..quick_config()
            };
            let fast = anneal(&circuit, &cfg, None);
            let slow = anneal_reference(&circuit, &cfg, None);
            assert_eq!(
                fast.cost.total.to_bits(),
                slow.cost.total.to_bits(),
                "{}: cost diverged",
                circuit.name()
            );
            assert_eq!(fast.placement, slow.placement, "{}", circuit.name());
            assert_eq!(fast.state, slow.state, "{}", circuit.name());
            assert_eq!(fast.moves, slow.moves, "{}", circuit.name());
        }
    }

    #[test]
    fn incremental_annealer_matches_reference_with_perf_term() {
        let c = testcases::adder();
        let network = Network::default_config(3);
        let perf = || PerfCost {
            network: &network,
            weight: 50.0,
            scale: 20.0,
        };
        let fast = anneal(&c, &quick_config(), Some(perf()));
        let slow = anneal_reference(&c, &quick_config(), Some(perf()));
        assert_eq!(fast.cost.total.to_bits(), slow.cost.total.to_bits());
        assert_eq!(fast.cost.phi.to_bits(), slow.cost.phi.to_bits());
        assert_eq!(fast.placement, slow.placement);

        // Re-verify on an asymmetric circuit now that Φ inference runs on
        // the CSR plan: same contract, different sparsity pattern.
        let c = testcases::comp1();
        let fast = anneal(&c, &quick_config(), Some(perf()));
        let slow = anneal_reference(&c, &quick_config(), Some(perf()));
        assert_eq!(fast.cost.total.to_bits(), slow.cost.total.to_bits());
        assert_eq!(fast.cost.phi.to_bits(), slow.cost.phi.to_bits());
        assert_eq!(fast.placement, slow.placement);
    }

    #[test]
    fn budgeted_with_unlimited_budget_matches_legacy() {
        let c = testcases::cc_ota();
        let cfg = quick_config();
        let legacy = anneal(&c, &cfg, None);
        let AnnealRun::Complete(budgeted) =
            anneal_budgeted(&c, &cfg, None, &RunBudget::unlimited(), None)
        else {
            panic!("unlimited budget must complete");
        };
        assert_eq!(legacy.cost.total.to_bits(), budgeted.cost.total.to_bits());
        assert_eq!(legacy.placement, budgeted.placement);
        assert_eq!(legacy.state, budgeted.state);
        assert_eq!(legacy.moves, budgeted.moves);
    }

    #[test]
    fn reference_engine_resumes_incremental_checkpoints() {
        // The two engines share the checkpoint format: freeze the fast
        // chain, thaw it on the oracle, and land on the same placement the
        // uninterrupted fast run reaches.
        let c = testcases::adder();
        let cfg = quick_config();
        let reference = anneal(&c, &cfg, None);

        let budget = RunBudget::unlimited();
        budget.cancel_after_checks(11);
        let AnnealRun::Cancelled(ck) = anneal_budgeted(&c, &cfg, None, &budget, None) else {
            panic!("expected cancellation at check 11");
        };
        let AnnealRun::Complete(resumed) =
            anneal_reference_budgeted(&c, &cfg, None, &RunBudget::unlimited(), Some(&ck))
        else {
            panic!("resume must complete");
        };
        assert_eq!(reference.cost.total.to_bits(), resumed.cost.total.to_bits());
        assert_eq!(reference.placement, resumed.placement);
        assert_eq!(reference.state, resumed.state);
        assert_eq!(reference.moves, resumed.moves);
    }

    #[test]
    fn repeated_cancellation_still_converges_exactly() {
        let c = testcases::adder();
        let cfg = quick_config();
        let reference = anneal(&c, &cfg, None);

        let mut resume: Option<SaCheckpoint> = None;
        let mut final_result = None;
        for _ in 0..64 {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(4);
            match anneal_budgeted(&c, &cfg, None, &budget, resume.as_ref()) {
                AnnealRun::Cancelled(ck) => resume = Some(ck),
                AnnealRun::Complete(r) => {
                    final_result = Some(r);
                    break;
                }
                AnnealRun::Exhausted(_) => panic!("no step budget set"),
            }
        }
        let r = final_result.expect("run must converge within the interrupt loop");
        assert_eq!(reference.cost.total.to_bits(), r.cost.total.to_bits());
        assert_eq!(reference.placement, r.placement);
        assert_eq!(reference.moves, r.moves);
    }

    #[test]
    fn exhausted_budget_returns_best_so_far() {
        let c = testcases::adder();
        let cfg = quick_config();
        let AnnealRun::Exhausted(r) = anneal_budgeted(&c, &cfg, None, &RunBudget::steps(5), None)
        else {
            panic!("a 5-level budget cannot finish 30 levels");
        };
        // States are packings: even an early stop is overlap-free.
        assert!(r.placement.overlapping_pairs(&c, 1e-9).is_empty());
        assert!(r.cost.total.is_finite());
    }

    #[test]
    fn builder_validates_and_builds() {
        let cfg = SaConfig::builder()
            .temperatures(50)
            .moves_per_level(80)
            .cooling(0.9)
            .seed(11)
            .chains(2)
            .build()
            .unwrap();
        assert_eq!(cfg.temperatures, 50);
        assert_eq!(cfg.moves_per_temperature, 80);
        assert_eq!(cfg.chains, 2);

        assert!(SaConfig::builder().cooling(1.0).build().is_err());
        assert!(SaConfig::builder().cooling(f64::NAN).build().is_err());
        assert!(SaConfig::builder().temperatures(0).build().is_err());
        assert!(SaConfig::builder().moves_per_level(0).build().is_err());
        assert!(SaConfig::builder().hpwl_weight(-1.0).build().is_err());
        assert!(SaConfig::builder().chains(0).build().is_err());
    }

    #[test]
    fn chain_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..8).map(|c| chain_seed(7, c)).collect();
        assert_eq!(seeds[0], 7, "chain 0 must keep the base seed");
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }
}
