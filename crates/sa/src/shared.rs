//! Shared SA build artifacts for batched sweeps.
//!
//! [`SaShared`] bundles everything the annealer derives from the circuit
//! alone — the symmetry-island [`BlockModel`] and the immutable
//! [`EvalTables`] — so a sweep running many SA variants over one netlist
//! builds them once and hands every chain the same read-only copy. Both
//! are pure functions of the circuit, so sharing them changes where the
//! bytes live, not what any chain computes: results stay bit-identical to
//! cold-built runs (asserted by `shared_artifacts_match_cold_build`).

use std::sync::Arc;

use analog_netlist::Circuit;

use crate::evaluator::EvalTables;
use crate::island::BlockModel;

/// Circuit-derived SA state safe to share across concurrent runs.
#[derive(Debug)]
pub struct SaShared {
    /// The symmetry-island decomposition (deterministic per circuit).
    pub model: Arc<BlockModel>,
    /// Immutable move-pricing tables (pure function of circuit + model).
    pub tables: Arc<EvalTables>,
}

impl SaShared {
    /// Builds the shared artifacts for a circuit. This is the one-time
    /// cost a sweep amortizes; everything inside is read-only afterwards.
    pub fn new(circuit: &Circuit) -> Self {
        let model = BlockModel::new(circuit);
        let tables = EvalTables::new(circuit, &model);
        Self {
            model: Arc::new(model),
            tables: Arc::new(tables),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn shared_model_matches_cold_build() {
        let c = testcases::cc_ota();
        let shared = SaShared::new(&c);
        let cold = BlockModel::new(&c);
        assert_eq!(*shared.model, cold);
    }
}
