//! Sequence-pair floorplan representation and longest-path packing.
//!
//! A sequence pair `(Γ⁺, Γ⁻)` encodes pairwise left/below relations:
//! device `i` is left of `j` when `i` precedes `j` in both sequences, and
//! below `j` when `i` follows `j` in `Γ⁺` but precedes it in `Γ⁻`.
//! Packing evaluates the induced constraint graphs by longest path, giving
//! a compact overlap-free placement — the classic representation analog SA
//! placers build on.
//!
//! Two evaluations are provided: the seed's O(n²) longest-path scan
//! ([`SequencePair::pack_dims_reference`]) and the shipping O(n log n)
//! path ([`SequencePair::pack_dims`]) based on the classic
//! longest-common-subsequence formulation with a Fenwick prefix-max tree
//! (Tang/Wong's fast sequence-pair evaluation). Both reduce the same sets
//! of `x_j + w_j` candidates through `f64::max`, which is exact and
//! order-independent, so the two produce **bit-identical** origins — a
//! property-tested invariant the incremental SA engine relies on.

use analog_netlist::{Circuit, Placement};

/// Below this size [`SequencePair::pack_dims_with`] runs a direct
/// quadratic scan instead of the Fenwick tree: at analog block counts the
/// tree's per-item log-factor bookkeeping costs more than the handful of
/// pairwise comparisons it avoids. Both paths reduce the same candidate
/// sets through `f64::max`, so the crossover is a pure speed knob — the
/// equivalence tests cover sizes on both sides of it.
const DIRECT_SCAN_MAX: usize = 32;

/// Reusable scratch for [`SequencePair::pack_dims_with`]: the Fenwick
/// prefix-max tree and the Γ⁻ position index.
///
/// Owning the buffers outside the call makes repeated packing of
/// equally-sized sequence pairs allocation-free (the SA inner loop).
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    /// `match2[d]` = position of item `d` in Γ⁻.
    match2: Vec<usize>,
    /// Fenwick tree over Γ⁻ positions holding prefix maxima (1-indexed).
    tree: Vec<f64>,
    /// Direct-scan staging: Γ⁻ position per Γ⁺ slot. Kept in the scratch
    /// (not on the stack) so small-n calls skip re-zeroing them.
    p2: [usize; DIRECT_SCAN_MAX],
    /// Direct-scan staging: longest-path value per Γ⁺ slot.
    val: [f64; DIRECT_SCAN_MAX],
    /// Direct-scan staging: item extent per Γ⁺ slot.
    dim: [f64; DIRECT_SCAN_MAX],
}

impl PackScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills the Γ⁻ position index (all the direct-scan path needs).
    fn prepare_index(&mut self, s2: &[usize]) {
        let n = s2.len();
        if self.match2.len() != n {
            self.match2.resize(n, 0);
        }
        for (pos, &d) in s2.iter().enumerate() {
            self.match2[d] = pos;
        }
    }

    fn prepare(&mut self, s2: &[usize]) {
        self.prepare_index(s2);
        self.tree.resize(s2.len() + 1, 0.0);
    }

    /// Zeroes the tree (identity of the non-negative max reduction — the
    /// reference scan also starts each longest path at 0.0).
    fn reset_tree(&mut self) {
        self.tree.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Max over items stored at Γ⁻ positions `< pos`.
    #[inline]
    fn prefix_max(&self, pos: usize) -> f64 {
        let mut i = pos; // 1-indexed prefix [1..=pos] covers positions 0..pos
        let mut best = 0.0_f64;
        while i > 0 {
            best = best.max(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        best
    }

    /// Stores `value` at Γ⁻ position `pos` (monotone point update).
    #[inline]
    fn update(&mut self, pos: usize, value: f64) {
        let n = self.tree.len() - 1;
        let mut i = pos + 1;
        while i <= n {
            self.tree[i] = self.tree[i].max(value);
            i += i & i.wrapping_neg();
        }
    }
}

/// A sequence pair over `n` devices plus per-device flip bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencePair {
    /// Γ⁺ (positive sequence) of device indices.
    pub s1: Vec<usize>,
    /// Γ⁻ (negative sequence).
    pub s2: Vec<usize>,
    /// `(flip_x, flip_y)` per device.
    pub flips: Vec<(bool, bool)>,
}

impl SequencePair {
    /// Identity sequence pair (row-major order).
    pub fn identity(n: usize) -> Self {
        Self {
            s1: (0..n).collect(),
            s2: (0..n).collect(),
            flips: vec![(false, false); n],
        }
    }

    /// Copies another equally-sized sequence pair without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn copy_from(&mut self, other: &SequencePair) {
        self.s1.copy_from_slice(&other.s1);
        self.s2.copy_from_slice(&other.s2);
        self.flips.copy_from_slice(&other.flips);
    }

    /// Packs generic rectangles (lower-left compaction): returns each
    /// item's lower-left corner.
    ///
    /// Runs the O(n log n) Fenwick-tree evaluation; see
    /// [`pack_dims_with`](Self::pack_dims_with) for the allocation-free
    /// entry point and [`pack_dims_reference`](Self::pack_dims_reference)
    /// for the seed O(n²) scan (bit-identical results).
    ///
    /// # Panics
    ///
    /// Panics if the dimension arrays mismatch the sequence pair size.
    pub fn pack_dims(&self, widths: &[f64], heights: &[f64]) -> Vec<(f64, f64)> {
        let mut scratch = PackScratch::new();
        let mut out = Vec::new();
        self.pack_dims_with(widths, heights, &mut scratch, &mut out);
        out
    }

    /// Allocation-free packing into a caller-owned buffer: the Fenwick
    /// O(n log n) sweep, or a direct scan below [`DIRECT_SCAN_MAX`] items
    /// (bit-identical, just faster at analog block counts).
    ///
    /// `out` is cleared and refilled with each item's lower-left corner;
    /// with a warm `scratch` and an `out` of sufficient capacity the call
    /// performs no heap allocation (the SA move loop's contract, enforced
    /// by `crates/sa/tests/zero_alloc.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the dimension arrays mismatch the sequence pair size.
    pub fn pack_dims_with(
        &self,
        widths: &[f64],
        heights: &[f64],
        scratch: &mut PackScratch,
        out: &mut Vec<(f64, f64)>,
    ) {
        let n = self.s1.len();
        assert_eq!(widths.len(), n, "widths length mismatch");
        assert_eq!(heights.len(), n, "heights length mismatch");
        assert_eq!(self.s2.len(), n, "sequence pair size mismatch");
        if out.len() != n {
            out.clear();
            out.resize(n, (0.0, 0.0));
        }
        if n <= DIRECT_SCAN_MAX {
            // Small-n fast path: the reference scan's candidate sets and
            // reduction order, restaged in Γ⁺-position space on fixed
            // stack arrays so the pairwise loops run gather-free. Both
            // sweeps assign every slot, so `out` needs no zero fill.
            scratch.prepare_index(&self.s2);
            let PackScratch {
                match2,
                p2,
                val,
                dim,
                ..
            } = scratch;
            for (pi, &i) in self.s1.iter().enumerate() {
                let pos = match2[i];
                p2[pi] = pos;
                dim[pi] = widths[i];
                let mut best = 0.0_f64;
                for q in 0..pi {
                    if p2[q] < pos {
                        best = best.max(val[q] + dim[q]);
                    }
                }
                val[pi] = best;
                out[i].0 = best;
            }
            for (pi, &i) in self.s1.iter().enumerate().rev() {
                let pos = p2[pi];
                dim[pi] = heights[i];
                let mut best = 0.0_f64;
                for q in pi + 1..n {
                    if p2[q] < pos {
                        best = best.max(val[q] + dim[q]);
                    }
                }
                val[pi] = best;
                out[i].1 = best;
            }
            return;
        }
        scratch.prepare(&self.s2);
        // X: i left of j iff pos1(i) < pos1(j) and pos2(i) < pos2(j).
        // Sweep s1 left to right; the tree holds x_j + w_j keyed by pos2(j)
        // for every j already placed, so the strict-prefix max at pos2(i)
        // is exactly the reference scan's candidate set.
        scratch.reset_tree();
        for &i in &self.s1 {
            let pos = scratch.match2[i];
            let x = scratch.prefix_max(pos);
            out[i].0 = x;
            scratch.update(pos, x + widths[i]);
        }
        // Y: i below j iff pos1(i) > pos1(j) and pos2(i) < pos2(j);
        // sweep s1 right to left with the same prefix structure.
        scratch.reset_tree();
        for &i in self.s1.iter().rev() {
            let pos = scratch.match2[i];
            let y = scratch.prefix_max(pos);
            out[i].1 = y;
            scratch.update(pos, y + heights[i]);
        }
    }

    /// The seed O(n²) longest-path evaluation, retained as the oracle for
    /// [`pack_dims`](Self::pack_dims) (equivalence is property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the dimension arrays mismatch the sequence pair size.
    pub fn pack_dims_reference(&self, widths: &[f64], heights: &[f64]) -> Vec<(f64, f64)> {
        let n = self.s1.len();
        assert_eq!(widths.len(), n, "widths length mismatch");
        assert_eq!(heights.len(), n, "heights length mismatch");
        assert_eq!(self.s2.len(), n, "sequence pair size mismatch");
        // match2[d] = position of item d in s2.
        let mut match2 = vec![0usize; n];
        for (pos, &d) in self.s2.iter().enumerate() {
            match2[d] = pos;
        }
        // X: iterate s1 left to right; i left of j iff pos1(i) < pos1(j) and
        // pos2(i) < pos2(j).
        let mut x0 = vec![0.0_f64; n];
        for (pi, &i) in self.s1.iter().enumerate() {
            let mut best = 0.0_f64;
            for &j in &self.s1[..pi] {
                if match2[j] < match2[i] {
                    best = best.max(x0[j] + widths[j]);
                }
            }
            x0[i] = best;
        }
        // Y: i below j iff pos1(i) > pos1(j) and pos2(i) < pos2(j);
        // iterate s1 right to left.
        let mut y0 = vec![0.0_f64; n];
        for (pi, &i) in self.s1.iter().enumerate().rev() {
            let mut best = 0.0_f64;
            for &j in &self.s1[pi + 1..] {
                if match2[j] < match2[i] {
                    best = best.max(y0[j] + heights[j]);
                }
            }
            y0[i] = best;
        }
        (0..n).map(|i| (x0[i], y0[i])).collect()
    }

    /// Packs the sequence pair into a placement (one item per device).
    ///
    /// # Panics
    ///
    /// Panics if the sequence pair size mismatches the circuit.
    pub fn pack(&self, circuit: &Circuit) -> Placement {
        let n = circuit.num_devices();
        let widths: Vec<f64> = circuit.devices().iter().map(|d| d.width).collect();
        let heights: Vec<f64> = circuit.devices().iter().map(|d| d.height).collect();
        let origins = self.pack_dims(&widths, &heights);
        let mut placement = Placement::new(n);
        for (i, (ox, oy)) in origins.iter().enumerate().take(n) {
            let d = circuit.device(analog_netlist::DeviceId::new(i));
            placement.positions[i] = (ox + d.width / 2.0, oy + d.height / 2.0);
            placement.flips[i] = self.flips[i];
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn packing_never_overlaps() {
        for circuit in [testcases::adder(), testcases::cc_ota(), testcases::scf()] {
            let sp = SequencePair::identity(circuit.num_devices());
            let p = sp.pack(&circuit);
            assert!(
                p.overlapping_pairs(&circuit, 1e-9).is_empty(),
                "{} overlaps",
                circuit.name()
            );
        }
    }

    #[test]
    fn identity_pair_packs_in_a_row() {
        // With identity sequences, every device is left of the next.
        let c = testcases::adder();
        let sp = SequencePair::identity(c.num_devices());
        let p = sp.pack(&c);
        for i in 1..c.num_devices() {
            assert!(p.positions[i].0 > p.positions[i - 1].0);
            // All on the floor.
            let d = c.device(analog_netlist::DeviceId::new(i));
            assert!((p.positions[i].1 - d.height / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reversed_s1_packs_in_a_column() {
        let c = testcases::adder();
        let n = c.num_devices();
        let sp = SequencePair {
            s1: (0..n).rev().collect(),
            s2: (0..n).collect(),
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&c);
        for i in 1..n {
            assert!(p.positions[i].1 > p.positions[i - 1].1);
        }
    }

    #[test]
    fn packing_is_compact() {
        // Area of the packed bounding box is at most the sum-of-dims bound.
        let c = testcases::cc_ota();
        let sp = SequencePair::identity(c.num_devices());
        let p = sp.pack(&c);
        let total_w: f64 = c.devices().iter().map(|d| d.width).sum();
        let max_h: f64 = c.devices().iter().map(|d| d.height).fold(0.0, f64::max);
        let bb = p.bounding_box(&c).unwrap();
        assert!(bb.2 - bb.0 <= total_w + 1e-9);
        assert!(bb.3 - bb.1 <= max_h + 1e-9);
    }

    #[test]
    fn flips_carry_into_placement() {
        let c = testcases::adder();
        let mut sp = SequencePair::identity(c.num_devices());
        sp.flips[2] = (true, false);
        let p = sp.pack(&c);
        assert_eq!(p.flips[2], (true, false));
    }

    /// Deterministic pseudo-random permutation for the equivalence checks
    /// (the proptest version lives in `crate::proptests`).
    fn lcg_permutation(n: usize, mut seed: u64) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn fast_pack_is_bit_identical_to_reference() {
        for n in [1usize, 2, 3, 7, 24, 65] {
            for seed in 0..4u64 {
                let sp = SequencePair {
                    s1: lcg_permutation(n, seed * 2 + 1),
                    s2: lcg_permutation(n, seed * 2 + 2),
                    flips: vec![(false, false); n],
                };
                let widths: Vec<f64> = (0..n).map(|i| 0.5 + ((i * 7 + 3) % 11) as f64).collect();
                let heights: Vec<f64> = (0..n).map(|i| 0.25 + ((i * 5 + 1) % 13) as f64).collect();
                let fast = sp.pack_dims(&widths, &heights);
                let slow = sp.pack_dims_reference(&widths, &heights);
                for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(f.0.to_bits(), s.0.to_bits(), "n={n} seed={seed} x[{i}]");
                    assert_eq!(f.1.to_bits(), s.1.to_bits(), "n={n} seed={seed} y[{i}]");
                }
            }
        }
    }

    #[test]
    fn pack_dims_with_reuses_scratch_across_sizes() {
        // Growing then shrinking sequence pairs must not confuse the
        // scratch sizing.
        let mut scratch = PackScratch::new();
        let mut out = Vec::new();
        for n in [5usize, 17, 3] {
            let sp = SequencePair::identity(n);
            let dims: Vec<f64> = vec![2.0; n];
            sp.pack_dims_with(&dims, &dims, &mut scratch, &mut out);
            assert_eq!(out.len(), n);
            assert_eq!(out, sp.pack_dims_reference(&dims, &dims));
        }
    }
}
