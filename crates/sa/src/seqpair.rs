//! Sequence-pair floorplan representation and longest-path packing.
//!
//! A sequence pair `(Γ⁺, Γ⁻)` encodes pairwise left/below relations:
//! device `i` is left of `j` when `i` precedes `j` in both sequences, and
//! below `j` when `i` follows `j` in `Γ⁺` but precedes it in `Γ⁻`.
//! Packing evaluates the induced constraint graphs by longest path, giving
//! a compact overlap-free placement — the classic representation analog SA
//! placers build on.

use analog_netlist::{Circuit, Placement};

/// A sequence pair over `n` devices plus per-device flip bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencePair {
    /// Γ⁺ (positive sequence) of device indices.
    pub s1: Vec<usize>,
    /// Γ⁻ (negative sequence).
    pub s2: Vec<usize>,
    /// `(flip_x, flip_y)` per device.
    pub flips: Vec<(bool, bool)>,
}

impl SequencePair {
    /// Identity sequence pair (row-major order).
    pub fn identity(n: usize) -> Self {
        Self {
            s1: (0..n).collect(),
            s2: (0..n).collect(),
            flips: vec![(false, false); n],
        }
    }

    /// Packs generic rectangles (lower-left compaction): returns each
    /// item's lower-left corner.
    ///
    /// Runs the O(n²) longest-path evaluation on both constraint graphs.
    ///
    /// # Panics
    ///
    /// Panics if the dimension arrays mismatch the sequence pair size.
    pub fn pack_dims(&self, widths: &[f64], heights: &[f64]) -> Vec<(f64, f64)> {
        let n = self.s1.len();
        assert_eq!(widths.len(), n, "widths length mismatch");
        assert_eq!(heights.len(), n, "heights length mismatch");
        assert_eq!(self.s2.len(), n, "sequence pair size mismatch");
        // match2[d] = position of item d in s2.
        let mut match2 = vec![0usize; n];
        for (pos, &d) in self.s2.iter().enumerate() {
            match2[d] = pos;
        }
        // X: iterate s1 left to right; i left of j iff pos1(i) < pos1(j) and
        // pos2(i) < pos2(j).
        let mut x0 = vec![0.0_f64; n];
        for (pi, &i) in self.s1.iter().enumerate() {
            let mut best = 0.0_f64;
            for &j in &self.s1[..pi] {
                if match2[j] < match2[i] {
                    best = best.max(x0[j] + widths[j]);
                }
            }
            x0[i] = best;
        }
        // Y: i below j iff pos1(i) > pos1(j) and pos2(i) < pos2(j);
        // iterate s1 right to left.
        let mut y0 = vec![0.0_f64; n];
        for (pi, &i) in self.s1.iter().enumerate().rev() {
            let mut best = 0.0_f64;
            for &j in &self.s1[pi + 1..] {
                if match2[j] < match2[i] {
                    best = best.max(y0[j] + heights[j]);
                }
            }
            y0[i] = best;
        }
        (0..n).map(|i| (x0[i], y0[i])).collect()
    }

    /// Packs the sequence pair into a placement (one item per device).
    ///
    /// # Panics
    ///
    /// Panics if the sequence pair size mismatches the circuit.
    pub fn pack(&self, circuit: &Circuit) -> Placement {
        let n = circuit.num_devices();
        let widths: Vec<f64> = circuit.devices().iter().map(|d| d.width).collect();
        let heights: Vec<f64> = circuit.devices().iter().map(|d| d.height).collect();
        let origins = self.pack_dims(&widths, &heights);
        let mut placement = Placement::new(n);
        for (i, (ox, oy)) in origins.iter().enumerate().take(n) {
            let d = circuit.device(analog_netlist::DeviceId::new(i));
            placement.positions[i] = (ox + d.width / 2.0, oy + d.height / 2.0);
            placement.flips[i] = self.flips[i];
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn packing_never_overlaps() {
        for circuit in [testcases::adder(), testcases::cc_ota(), testcases::scf()] {
            let sp = SequencePair::identity(circuit.num_devices());
            let p = sp.pack(&circuit);
            assert!(
                p.overlapping_pairs(&circuit, 1e-9).is_empty(),
                "{} overlaps",
                circuit.name()
            );
        }
    }

    #[test]
    fn identity_pair_packs_in_a_row() {
        // With identity sequences, every device is left of the next.
        let c = testcases::adder();
        let sp = SequencePair::identity(c.num_devices());
        let p = sp.pack(&c);
        for i in 1..c.num_devices() {
            assert!(p.positions[i].0 > p.positions[i - 1].0);
            // All on the floor.
            let d = c.device(analog_netlist::DeviceId::new(i));
            assert!((p.positions[i].1 - d.height / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reversed_s1_packs_in_a_column() {
        let c = testcases::adder();
        let n = c.num_devices();
        let sp = SequencePair {
            s1: (0..n).rev().collect(),
            s2: (0..n).collect(),
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&c);
        for i in 1..n {
            assert!(p.positions[i].1 > p.positions[i - 1].1);
        }
    }

    #[test]
    fn packing_is_compact() {
        // Area of the packed bounding box is at most the sum-of-dims bound.
        let c = testcases::cc_ota();
        let sp = SequencePair::identity(c.num_devices());
        let p = sp.pack(&c);
        let total_w: f64 = c.devices().iter().map(|d| d.width).sum();
        let max_h: f64 = c.devices().iter().map(|d| d.height).fold(0.0, f64::max);
        let bb = p.bounding_box(&c).unwrap();
        assert!(bb.2 - bb.0 <= total_w + 1e-9);
        assert!(bb.3 - bb.1 <= max_h + 1e-9);
    }

    #[test]
    fn flips_carry_into_placement() {
        let c = testcases::adder();
        let mut sp = SequencePair::identity(c.num_devices());
        sp.flips[2] = (true, false);
        let p = sp.pack(&c);
        assert_eq!(p.flips[2], (true, false));
    }
}
