//! Minimal-perturbation constraint repair for annealed placements.
//!
//! The annealer keeps layouts overlap-free by construction, but symmetry /
//! alignment / ordering are only penalty-tight. This pass solves one LP per
//! axis that **minimizes total displacement** from the annealed positions
//! subject to the exact constraints and the full relative-order graph of
//! the annealed packing — it snaps constraints without re-optimizing
//! wirelength (which would credit SA with an analytical post-pass).

use analog_netlist::{AlignKind, Axis, Circuit, DeviceId, Placement};
use eplace::SeparationPlanner;
use placer_mathopt::{ConstraintOp, Model, SolveError, VarId};

fn axis_extent(circuit: &Circuit, axis: usize, d: DeviceId) -> f64 {
    let dev = circuit.device(d);
    if axis == 0 {
        dev.width
    } else {
        dev.height
    }
}

fn repair_axis(
    circuit: &Circuit,
    axis: usize,
    targets: &[f64],
    edges: &[(DeviceId, DeviceId)],
) -> Result<Vec<f64>, SolveError> {
    let n = circuit.num_devices();
    let mut model = Model::new();
    let xs: Vec<VarId> = (0..n)
        .map(|i| {
            let half = axis_extent(circuit, axis, DeviceId::new(i)) / 2.0;
            model.add_var(format!("c{i}"), half, f64::INFINITY, 0.0)
        })
        .collect();
    // Displacement |x − target| via two rows per device.
    for (i, &x) in xs.iter().enumerate() {
        let d = model.add_var(format!("d{i}"), 0.0, f64::INFINITY, 1.0);
        model.add_constraint(vec![(d, 1.0), (x, -1.0)], ConstraintOp::Ge, -targets[i]);
        model.add_constraint(vec![(d, 1.0), (x, 1.0)], ConstraintOp::Ge, targets[i]);
    }
    for &(a, b) in edges {
        let gap = (axis_extent(circuit, axis, a) + axis_extent(circuit, axis, b)) / 2.0;
        model.add_constraint(
            vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
            ConstraintOp::Le,
            -gap,
        );
    }
    for g in &circuit.constraints().symmetry_groups {
        let on_axis = matches!((g.axis, axis), (Axis::Vertical, 0) | (Axis::Horizontal, 1));
        if on_axis {
            let m = model.add_var(format!("m_{}", g.name), 0.0, f64::INFINITY, 0.0);
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], 1.0), (m, -2.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            for &s in &g.self_symmetric {
                model.add_constraint(vec![(xs[s.index()], 1.0), (m, -1.0)], ConstraintOp::Eq, 0.0);
            }
        } else {
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
        }
    }
    for al in &circuit.constraints().alignments {
        match (al.kind, axis) {
            (AlignKind::Bottom, 1) => {
                let ha = axis_extent(circuit, 1, al.a) / 2.0;
                let hb = axis_extent(circuit, 1, al.b) / 2.0;
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    ha - hb,
                );
            }
            (AlignKind::VerticalCenter, 0) => {
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            _ => {}
        }
    }
    let sol = model.solve_lp()?;
    Ok(xs.iter().map(|&x| sol.value(x)).collect())
}

/// Repairs an annealed placement: minimal displacement subject to exact
/// constraints and the packing's relative orders.
///
/// # Errors
///
/// Returns the LP error when the constraint system cannot be satisfied
/// (which indicates inconsistent circuit constraints).
pub fn repair_placement(circuit: &Circuit, annealed: &Placement) -> Result<Placement, SolveError> {
    let mut planner = SeparationPlanner::new(circuit);
    planner.extend_all_pairs(circuit, annealed);
    let tx: Vec<f64> = annealed.positions.iter().map(|p| p.0).collect();
    let ty: Vec<f64> = annealed.positions.iter().map(|p| p.1).collect();
    let xs = repair_axis(circuit, 0, &tx, planner.x_edges())?;
    let ys = repair_axis(circuit, 1, &ty, planner.y_edges())?;
    let mut placement = annealed.clone();
    for i in 0..circuit.num_devices() {
        placement.positions[i] = (xs[i], ys[i]);
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{anneal, SaConfig};
    use analog_netlist::testcases;

    #[test]
    fn repair_produces_exact_constraints() {
        let c = testcases::cc_ota();
        let result = anneal(
            &c,
            &SaConfig {
                temperatures: 20,
                moves_per_temperature: 30,
                ..SaConfig::default()
            },
            None,
        );
        let repaired = repair_placement(&c, &result.placement).unwrap();
        assert!(repaired.overlapping_pairs(&c, 1e-6).is_empty());
        assert!(repaired.symmetry_violation(&c) < 1e-6);
        assert!(repaired.alignment_violation(&c) < 1e-6);
        assert!(repaired.ordering_violation(&c) < 1e-6);
    }

    #[test]
    fn repair_moves_devices_minimally_when_already_legal() {
        // A placement that already satisfies everything should barely move.
        let c = testcases::adder();
        let result = anneal(
            &c,
            &SaConfig {
                temperatures: 40,
                moves_per_temperature: 60,
                penalty_weight: 500.0,
                ..SaConfig::default()
            },
            None,
        );
        let repaired = repair_placement(&c, &result.placement).unwrap();
        let displacement: f64 = result
            .placement
            .positions
            .iter()
            .zip(&repaired.positions)
            .map(|(a, b)| (a.0 - b.0).abs() + (a.1 - b.1).abs())
            .sum();
        // Heavy penalties drive the annealed violation near zero, so the
        // repair displacement should be small relative to the layout size.
        let side = c.total_device_area().sqrt();
        assert!(
            displacement < 4.0 * side,
            "displacement {displacement} too large vs side {side}"
        );
    }
}
