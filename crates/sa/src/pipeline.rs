//! End-to-end SA placer: anneal, then repair constraints exactly with one
//! LP pass (wirelength-minimizing, outline-bounded), preserving the packed
//! topology. This mirrors how practical SA analog placers post-process the
//! best annealed floorplan into an exactly-symmetric layout.

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use placer_gnn::Network;
use placer_mathopt::SolveError;

use crate::anneal::{anneal, PerfCost, SaConfig};
use crate::repair::repair_placement;

/// Result of a full SA placement run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Final legal placement (after LP constraint repair).
    pub placement: Placement,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Annealing wall time (s).
    pub anneal_seconds: f64,
    /// Repair wall time (s).
    pub repair_seconds: f64,
    /// Moves attempted by the annealer.
    pub moves: usize,
    /// GNN performance probability of the annealed state (perf runs only).
    pub phi: f64,
}

/// The simulated-annealing analog placer baseline.
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use placer_sa::{SaConfig, SaPlacer};
///
/// # fn main() -> Result<(), placer_mathopt::SolveError> {
/// let circuit = testcases::adder();
/// let config = SaConfig { temperatures: 20, moves_per_temperature: 30, ..SaConfig::default() };
/// let result = SaPlacer::new(config).place(&circuit)?;
/// assert!(result.placement.is_legal(&circuit, 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SaPlacer {
    /// Annealing configuration.
    pub config: SaConfig,
}

impl SaPlacer {
    /// Creates a placer with the given annealing configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    fn finish(
        &self,
        circuit: &Circuit,
        annealed: crate::anneal::AnnealResult,
        anneal_seconds: f64,
    ) -> Result<SaResult, SolveError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("sa_repair");
        let _span = SPAN.enter();
        let t1 = Instant::now();
        // The annealed packing is overlap-free but its symmetry is only
        // penalty-tight; one minimal-displacement LP pass snaps the
        // constraints exactly without re-optimizing wirelength.
        let placement = repair_placement(circuit, &annealed.placement)?;
        let repair_seconds = t1.elapsed().as_secs_f64();
        let hpwl = placement.hpwl(circuit);
        let area = placement.area(circuit);
        Ok(SaResult {
            placement,
            hpwl,
            area,
            anneal_seconds,
            repair_seconds,
            moves: annealed.moves,
            phi: annealed.cost.phi,
        })
    }

    /// Runs the conventional (performance-oblivious) flow.
    ///
    /// # Errors
    ///
    /// Propagates the LP solver error from the repair pass.
    pub fn place(&self, circuit: &Circuit) -> Result<SaResult, SolveError> {
        let t0 = Instant::now();
        let annealed = anneal(circuit, &self.config, None);
        let anneal_seconds = t0.elapsed().as_secs_f64();
        self.finish(circuit, annealed, anneal_seconds)
    }

    /// Runs the performance-driven flow: Φ inference inside the SA cost,
    /// as in the ICCAD'20 baseline \[19\].
    ///
    /// # Errors
    ///
    /// Propagates the LP solver error from the repair pass.
    pub fn place_perf(
        &self,
        circuit: &Circuit,
        network: &Network,
        weight: f64,
        scale: f64,
    ) -> Result<SaResult, SolveError> {
        let t0 = Instant::now();
        let annealed = anneal(
            circuit,
            &self.config,
            Some(PerfCost {
                network,
                weight,
                scale,
            }),
        );
        let anneal_seconds = t0.elapsed().as_secs_f64();
        self.finish(circuit, annealed, anneal_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn quick() -> SaPlacer {
        SaPlacer::new(SaConfig {
            temperatures: 25,
            moves_per_temperature: 40,
            ..SaConfig::default()
        })
    }

    #[test]
    fn sa_pipeline_produces_legal_placement() {
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let result = quick().place(&circuit).unwrap();
            assert!(
                result
                    .placement
                    .overlapping_pairs(&circuit, 1e-6)
                    .is_empty(),
                "{}: overlaps",
                circuit.name()
            );
            assert!(result.placement.symmetry_violation(&circuit) < 1e-6);
            assert!(result.hpwl > 0.0 && result.area > 0.0);
        }
    }

    #[test]
    fn perf_flow_reports_phi() {
        let circuit = testcases::adder();
        let network = placer_gnn::Network::default_config(5);
        let result = quick().place_perf(&circuit, &network, 30.0, 20.0).unwrap();
        assert!(result.phi > 0.0 && result.phi < 1.0);
        assert!(result.placement.is_legal(&circuit, 1e-6));
    }

    #[test]
    fn more_moves_do_not_hurt_quality_much() {
        // A long run should be at least roughly as good as a short one
        // (cost is stochastic; allow 25% slack).
        let circuit = testcases::cc_ota();
        let short = SaPlacer::new(SaConfig {
            temperatures: 10,
            moves_per_temperature: 20,
            ..SaConfig::default()
        })
        .place(&circuit)
        .unwrap();
        let long = SaPlacer::new(SaConfig {
            temperatures: 60,
            moves_per_temperature: 100,
            ..SaConfig::default()
        })
        .place(&circuit)
        .unwrap();
        let score = |r: &SaResult| r.area + r.hpwl;
        assert!(score(&long) < score(&short) * 1.25);
    }
}
