//! End-to-end SA placer: anneal, then repair constraints exactly with one
//! LP pass (wirelength-minimizing, outline-bounded), preserving the packed
//! topology. This mirrors how practical SA analog placers post-process the
//! best annealed floorplan into an exactly-symmetric layout.

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use eplace::{
    expect_placer, Checkpoint, CheckpointError, PlaceError, PlaceOutcome, PlaceSolution, Placer,
    RunBudget,
};
use placer_gnn::Network;

use crate::anneal::{
    anneal, anneal_budgeted_with, AnnealRun, ChainCheckpoint, ChainEntry, PerfCost, SaCheckpoint,
    SaConfig, SaCost, SaState,
};
use crate::island::BlockModel;
use crate::repair::repair_placement;
use crate::seqpair::SequencePair;
use crate::shared::SaShared;

/// Result of a full SA placement run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Final legal placement (after LP constraint repair).
    pub placement: Placement,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Annealing wall time (s).
    pub anneal_seconds: f64,
    /// Repair wall time (s).
    pub repair_seconds: f64,
    /// Moves attempted by the annealer.
    pub moves: usize,
    /// GNN performance probability of the annealed state (perf runs only).
    pub phi: f64,
}

impl SaResult {
    /// Converts into the unified [`PlaceSolution`] (annealing is stage 1,
    /// LP repair is stage 2, moves are the iteration count).
    pub fn into_solution(self) -> PlaceSolution {
        PlaceSolution {
            placement: self.placement,
            hpwl: self.hpwl,
            area: self.area,
            stage1_seconds: self.anneal_seconds,
            stage2_seconds: self.repair_seconds,
            iterations: self.moves,
        }
    }
}

/// The simulated-annealing analog placer baseline.
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use placer_sa::{SaConfig, SaPlacer};
///
/// # fn main() -> Result<(), eplace::PlaceError> {
/// let circuit = testcases::adder();
/// let config = SaConfig { temperatures: 20, moves_per_temperature: 30, ..SaConfig::default() };
/// let result = SaPlacer::new(config).place(&circuit)?;
/// assert!(result.placement.is_legal(&circuit, 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SaPlacer {
    /// Annealing configuration.
    pub config: SaConfig,
}

impl SaPlacer {
    /// Creates a placer with the given annealing configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    fn finish(
        &self,
        circuit: &Circuit,
        annealed: crate::anneal::AnnealResult,
        anneal_seconds: f64,
    ) -> Result<SaResult, PlaceError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("sa_repair");
        let _span = SPAN.enter();
        let t1 = Instant::now();
        // The annealed packing is overlap-free but its symmetry is only
        // penalty-tight; one minimal-displacement LP pass snaps the
        // constraints exactly without re-optimizing wirelength.
        let placement = repair_placement(circuit, &annealed.placement)?;
        let repair_seconds = t1.elapsed().as_secs_f64();
        let hpwl = placement.hpwl(circuit);
        let area = placement.area(circuit);
        Ok(SaResult {
            placement,
            hpwl,
            area,
            anneal_seconds,
            repair_seconds,
            moves: annealed.moves,
            phi: annealed.cost.phi,
        })
    }

    /// Runs the conventional (performance-oblivious) flow.
    ///
    /// # Errors
    ///
    /// Propagates the LP solver error from the repair pass.
    pub fn place(&self, circuit: &Circuit) -> Result<SaResult, PlaceError> {
        let t0 = Instant::now();
        let annealed = anneal(circuit, &self.config, None);
        let anneal_seconds = t0.elapsed().as_secs_f64();
        self.finish(circuit, annealed, anneal_seconds)
    }

    /// Runs the performance-driven flow: Φ inference inside the SA cost,
    /// as in the ICCAD'20 baseline \[19\].
    ///
    /// # Errors
    ///
    /// Propagates the LP solver error from the repair pass.
    pub fn place_perf(
        &self,
        circuit: &Circuit,
        network: &Network,
        weight: f64,
        scale: f64,
    ) -> Result<SaResult, PlaceError> {
        let t0 = Instant::now();
        let annealed = anneal(
            circuit,
            &self.config,
            Some(PerfCost {
                network,
                weight,
                scale,
            }),
        );
        let anneal_seconds = t0.elapsed().as_secs_f64();
        self.finish(circuit, annealed, anneal_seconds)
    }

    fn run_engine(
        &self,
        circuit: &Circuit,
        budget: &RunBudget,
        resume: Option<&SaCheckpoint>,
        shared: Option<&SaShared>,
    ) -> Result<PlaceOutcome, PlaceError> {
        let t0 = Instant::now();
        let run = anneal_budgeted_with(circuit, &self.config, None, budget, resume, shared);
        let anneal_seconds = t0.elapsed().as_secs_f64();
        match run {
            AnnealRun::Complete(annealed) => {
                let result = self.finish(circuit, annealed, anneal_seconds)?;
                Ok(PlaceOutcome::Complete(result.into_solution()))
            }
            AnnealRun::Exhausted(annealed) => {
                // Best-so-far is still a packed floorplan; the same LP
                // repair pass legalizes it, so Exhausted upholds the
                // trait's "always legal" contract.
                let result = self.finish(circuit, annealed, anneal_seconds)?;
                Ok(PlaceOutcome::Exhausted(result.into_solution()))
            }
            AnnealRun::Cancelled(sack) => {
                Ok(PlaceOutcome::Cancelled(encode_checkpoint(circuit, &sack)))
            }
        }
    }
}

impl Placer for SaPlacer {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn place(&self, circuit: &Circuit, budget: &RunBudget) -> Result<PlaceOutcome, PlaceError> {
        self.run_engine(circuit, budget, None, None)
    }

    fn resume(
        &self,
        circuit: &Circuit,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        expect_placer(checkpoint, self.name())?;
        let sack = decode_checkpoint(checkpoint, circuit, &self.config, None)?;
        self.run_engine(circuit, budget, Some(&sack), None)
    }

    fn place_artifacts(
        &self,
        artifacts: &eplace::CircuitArtifacts,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        let shared = artifacts.ext_or_build(SaShared::new);
        self.run_engine(artifacts.circuit(), budget, None, Some(&shared))
    }

    fn resume_artifacts(
        &self,
        artifacts: &eplace::CircuitArtifacts,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        expect_placer(checkpoint, self.name())?;
        let shared = artifacts.ext_or_build(SaShared::new);
        let sack = decode_checkpoint(checkpoint, artifacts.circuit(), &self.config, Some(&shared))?;
        self.run_engine(artifacts.circuit(), budget, Some(&sack), Some(&shared))
    }

    fn probe(&self, circuit: &Circuit, checkpoint: &Checkpoint) -> Option<eplace::RaceProbe> {
        probe_checkpoint(circuit, checkpoint)
    }

    fn eco_refine(
        &self,
        artifacts: &eplace::CircuitArtifacts,
        warm: &Placement,
        dirty: &[bool],
        eco: &eplace::EcoConfig,
    ) -> Result<Option<(Placement, usize)>, PlaceError> {
        // The annealer cannot resume from coordinates, so the warm
        // placement is mapped back into a sequence pair and polished with
        // a deterministic greedy sweep scoped to the dirtied blocks; the
        // engine's region repair restores exact legality afterwards.
        let shared = artifacts.ext_or_build(SaShared::new);
        let (placement, moves) = crate::eco::polish(
            artifacts.circuit(),
            &shared.model,
            &self.config,
            warm,
            dirty,
            eco.refine_iters,
        );
        Ok(Some((placement, moves)))
    }
}

/// Best-so-far quality frozen in an SA checkpoint: scan every chain's
/// committed (`done`) or best-pending cost group and report the lowest
/// total. Pure function of the checkpoint text — no annealing state is
/// touched, so racing probes stay bit-identical across thread counts.
fn probe_checkpoint(circuit: &Circuit, ck: &Checkpoint) -> Option<eplace::RaceProbe> {
    if ck.placer() != "sa" || ck.get_u64("n").ok()? as usize != circuit.num_devices() {
        return None;
    }
    let chains = ck.get_u64("chains").ok()? as usize;
    let mut best: Option<(f64, eplace::RaceProbe)> = None;
    for i in 0..chains {
        let p = format!("c{i}_");
        let cost_prefix = match ck.get_str(&format!("{p}kind")).ok()? {
            "done" => format!("{p}cost_"),
            _ => format!("{p}best_cost_"),
        };
        let total = ck.get_f64(&format!("{cost_prefix}total")).ok()?;
        let probe = eplace::RaceProbe {
            hpwl: ck.get_f64(&format!("{cost_prefix}hpwl")).ok()?,
            area: ck.get_f64(&format!("{cost_prefix}area")).ok()?,
        };
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, probe));
        }
    }
    best.map(|(_, probe)| probe)
}

fn bad_checkpoint(message: String) -> PlaceError {
    PlaceError::BadCheckpoint(CheckpointError { line: 0, message })
}

fn put_state(ck: &mut Checkpoint, prefix: &str, state: &SaState) {
    let s1: Vec<u64> = state.seq_pair.s1.iter().map(|&d| d as u64).collect();
    let s2: Vec<u64> = state.seq_pair.s2.iter().map(|&d| d as u64).collect();
    let bfx: Vec<bool> = state.seq_pair.flips.iter().map(|f| f.0).collect();
    let bfy: Vec<bool> = state.seq_pair.flips.iter().map(|f| f.1).collect();
    let fx: Vec<bool> = state.flips.iter().map(|f| f.0).collect();
    let fy: Vec<bool> = state.flips.iter().map(|f| f.1).collect();
    ck.put_u64s(&format!("{prefix}s1"), &s1);
    ck.put_u64s(&format!("{prefix}s2"), &s2);
    ck.put_bools(&format!("{prefix}bfx"), &bfx);
    ck.put_bools(&format!("{prefix}bfy"), &bfy);
    ck.put_bools(&format!("{prefix}fx"), &fx);
    ck.put_bools(&format!("{prefix}fy"), &fy);
}

fn get_state(
    ck: &Checkpoint,
    prefix: &str,
    blocks: usize,
    n: usize,
) -> Result<SaState, PlaceError> {
    let s1 = ck.get_u64s(&format!("{prefix}s1"))?;
    let s2 = ck.get_u64s(&format!("{prefix}s2"))?;
    let bfx = ck.get_bools(&format!("{prefix}bfx"))?;
    let bfy = ck.get_bools(&format!("{prefix}bfy"))?;
    let fx = ck.get_bools(&format!("{prefix}fx"))?;
    let fy = ck.get_bools(&format!("{prefix}fy"))?;
    if s1.len() != blocks || s2.len() != blocks || bfx.len() != blocks || bfy.len() != blocks {
        return Err(bad_checkpoint(format!(
            "`{prefix}` sequence pair sized for {} blocks, circuit has {blocks}",
            s1.len()
        )));
    }
    if fx.len() != n || fy.len() != n {
        return Err(bad_checkpoint(format!(
            "`{prefix}` flips sized for {} devices, circuit has {n}",
            fx.len()
        )));
    }
    for seq in [&s1, &s2] {
        let mut seen = vec![false; blocks];
        for &d in seq.iter() {
            let d = d as usize;
            if d >= blocks || seen[d] {
                return Err(bad_checkpoint(format!(
                    "`{prefix}` sequence is not a permutation of 0..{blocks}"
                )));
            }
            seen[d] = true;
        }
    }
    Ok(SaState {
        seq_pair: SequencePair {
            s1: s1.iter().map(|&d| d as usize).collect(),
            s2: s2.iter().map(|&d| d as usize).collect(),
            flips: bfx.iter().copied().zip(bfy.iter().copied()).collect(),
        },
        flips: fx.iter().copied().zip(fy.iter().copied()).collect(),
    })
}

fn put_cost(ck: &mut Checkpoint, prefix: &str, cost: &SaCost) {
    ck.put_f64(&format!("{prefix}area"), cost.area);
    ck.put_f64(&format!("{prefix}hpwl"), cost.hpwl);
    ck.put_f64(&format!("{prefix}violation"), cost.violation);
    ck.put_f64(&format!("{prefix}phi"), cost.phi);
    ck.put_f64(&format!("{prefix}total"), cost.total);
}

fn get_cost(ck: &Checkpoint, prefix: &str) -> Result<SaCost, PlaceError> {
    Ok(SaCost {
        area: ck.get_f64(&format!("{prefix}area"))?,
        hpwl: ck.get_f64(&format!("{prefix}hpwl"))?,
        violation: ck.get_f64(&format!("{prefix}violation"))?,
        phi: ck.get_f64(&format!("{prefix}phi"))?,
        total: ck.get_f64(&format!("{prefix}total"))?,
    })
}

/// Serializes a cancelled annealing run into the portable checkpoint
/// format (one `c{i}_`-prefixed field group per chain).
fn encode_checkpoint(circuit: &Circuit, sack: &SaCheckpoint) -> Checkpoint {
    let mut ck = Checkpoint::new("sa");
    ck.put_u64("n", circuit.num_devices() as u64);
    ck.put_u64("chains", sack.chains.len() as u64);
    for (i, entry) in sack.chains.iter().enumerate() {
        let p = format!("c{i}_");
        match entry {
            ChainEntry::Done {
                state,
                cost,
                moves,
                exhausted,
            } => {
                ck.put_str(&format!("{p}kind"), "done");
                put_state(&mut ck, &p, state);
                put_cost(&mut ck, &format!("{p}cost_"), cost);
                ck.put_u64(&format!("{p}moves"), *moves as u64);
                ck.put_u64(&format!("{p}exhausted"), u64::from(*exhausted));
            }
            ChainEntry::Pending(c) => {
                ck.put_str(&format!("{p}kind"), "pending");
                ck.put_u64(&format!("{p}level"), c.level as u64);
                ck.put_f64(&format!("{p}temperature"), c.temperature);
                put_state(&mut ck, &p, &c.state);
                put_cost(&mut ck, &format!("{p}cost_"), &c.cost);
                put_state(&mut ck, &format!("{p}best_"), &c.best_state);
                put_cost(&mut ck, &format!("{p}best_cost_"), &c.best_cost);
                ck.put_u64(&format!("{p}moves"), c.moves as u64);
                ck.put_u64(&format!("{p}accepts"), c.accepts);
                ck.put_u64s(&format!("{p}rng"), &c.rng);
            }
        }
    }
    ck
}

fn decode_checkpoint(
    ck: &Checkpoint,
    circuit: &Circuit,
    config: &SaConfig,
    shared: Option<&SaShared>,
) -> Result<SaCheckpoint, PlaceError> {
    let n = circuit.num_devices();
    let stored_n = ck.get_u64("n")? as usize;
    if stored_n != n {
        return Err(bad_checkpoint(format!(
            "checkpoint is for a {stored_n}-device circuit, got {n} devices"
        )));
    }
    let chains = ck.get_u64("chains")? as usize;
    if chains != config.chains.max(1) {
        return Err(bad_checkpoint(format!(
            "checkpoint has {chains} chains, config wants {}",
            config.chains.max(1)
        )));
    }
    let blocks = match shared {
        Some(s) => s.model.len(),
        None => BlockModel::new(circuit).len(),
    };
    let mut entries = Vec::with_capacity(chains);
    for i in 0..chains {
        let p = format!("c{i}_");
        let kind = ck.get_str(&format!("{p}kind"))?;
        match kind {
            "done" => entries.push(ChainEntry::Done {
                state: get_state(ck, &p, blocks, n)?,
                cost: get_cost(ck, &format!("{p}cost_"))?,
                moves: ck.get_u64(&format!("{p}moves"))? as usize,
                exhausted: ck.get_u64(&format!("{p}exhausted"))? != 0,
            }),
            "pending" => {
                let rng_words = ck.get_u64s(&format!("{p}rng"))?;
                if rng_words.len() != 4 {
                    return Err(bad_checkpoint(format!(
                        "`{p}rng` holds {} words, expected 4",
                        rng_words.len()
                    )));
                }
                let level = ck.get_u64(&format!("{p}level"))? as usize;
                if level >= config.temperatures {
                    return Err(bad_checkpoint(format!(
                        "`{p}level` {level} out of range for {} temperatures",
                        config.temperatures
                    )));
                }
                entries.push(ChainEntry::Pending(ChainCheckpoint {
                    level,
                    temperature: ck.get_f64(&format!("{p}temperature"))?,
                    state: get_state(ck, &p, blocks, n)?,
                    cost: get_cost(ck, &format!("{p}cost_"))?,
                    best_state: get_state(ck, &format!("{p}best_"), blocks, n)?,
                    best_cost: get_cost(ck, &format!("{p}best_cost_"))?,
                    moves: ck.get_u64(&format!("{p}moves"))? as usize,
                    accepts: ck.get_u64(&format!("{p}accepts"))?,
                    rng: [rng_words[0], rng_words[1], rng_words[2], rng_words[3]],
                }))
            }
            other => {
                return Err(bad_checkpoint(format!(
                    "`{p}kind` is `{other}`, expected `done` or `pending`"
                )))
            }
        }
    }
    Ok(SaCheckpoint { chains: entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn quick() -> SaPlacer {
        SaPlacer::new(SaConfig {
            temperatures: 25,
            moves_per_temperature: 40,
            ..SaConfig::default()
        })
    }

    #[test]
    fn sa_pipeline_produces_legal_placement() {
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let result = quick().place(&circuit).unwrap();
            assert!(
                result
                    .placement
                    .overlapping_pairs(&circuit, 1e-6)
                    .is_empty(),
                "{}: overlaps",
                circuit.name()
            );
            assert!(result.placement.symmetry_violation(&circuit) < 1e-6);
            assert!(result.hpwl > 0.0 && result.area > 0.0);
        }
    }

    #[test]
    fn perf_flow_reports_phi() {
        let circuit = testcases::adder();
        let network = placer_gnn::Network::default_config(5);
        let result = quick().place_perf(&circuit, &network, 30.0, 20.0).unwrap();
        assert!(result.phi > 0.0 && result.phi < 1.0);
        assert!(result.placement.is_legal(&circuit, 1e-6));
    }

    #[test]
    fn more_moves_do_not_hurt_quality_much() {
        // A long run should be at least roughly as good as a short one
        // (cost is stochastic; allow 25% slack).
        let circuit = testcases::cc_ota();
        let short = SaPlacer::new(SaConfig {
            temperatures: 10,
            moves_per_temperature: 20,
            ..SaConfig::default()
        })
        .place(&circuit)
        .unwrap();
        let long = SaPlacer::new(SaConfig {
            temperatures: 60,
            moves_per_temperature: 100,
            ..SaConfig::default()
        })
        .place(&circuit)
        .unwrap();
        let score = |r: &SaResult| r.area + r.hpwl;
        assert!(score(&long) < score(&short) * 1.25);
    }

    #[test]
    fn trait_place_with_unlimited_budget_matches_legacy() {
        let circuit = testcases::cc_ota();
        let placer = quick();
        let legacy = placer.place(&circuit).unwrap();
        let outcome = Placer::place(&placer, &circuit, &RunBudget::unlimited()).unwrap();
        let solution = outcome.solution().expect("complete");
        assert!(outcome.is_complete());
        assert_eq!(legacy.placement, solution.placement);
        assert_eq!(legacy.hpwl.to_bits(), solution.hpwl.to_bits());
        assert_eq!(legacy.moves, solution.iterations);
    }

    #[test]
    fn cancel_resume_roundtrips_through_the_text_codec() {
        let circuit = testcases::adder();
        let placer = quick();
        let reference = Placer::place(&placer, &circuit, &RunBudget::unlimited()).unwrap();

        for cancel_at in [0u64, 4, 20] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
            let ck = outcome.checkpoint().expect("cancelled");
            // Through the codec, like the jobs engine does on disk.
            let decoded = Checkpoint::decode(&ck.encode()).unwrap();
            let resumed = placer
                .resume(&circuit, &decoded, &RunBudget::unlimited())
                .unwrap();
            let a = reference.solution().unwrap();
            let b = resumed.solution().expect("complete after resume");
            assert_eq!(a.placement, b.placement, "cancel_at={cancel_at}");
            assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
            assert_eq!(a.iterations, b.iterations, "moves must match");
        }
    }

    #[test]
    fn multi_chain_cancel_resume_is_bit_identical() {
        let circuit = testcases::adder();
        let placer = SaPlacer::new(SaConfig {
            temperatures: 20,
            moves_per_temperature: 30,
            chains: 3,
            ..SaConfig::default()
        });
        let reference = Placer::place(&placer, &circuit, &RunBudget::unlimited()).unwrap();

        let budget = RunBudget::unlimited();
        budget.cancel_after_checks(8);
        let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
        let ck = outcome.checkpoint().expect("cancelled");
        let resumed = placer
            .resume(&circuit, ck, &RunBudget::unlimited())
            .unwrap();
        let a = reference.solution().unwrap();
        let b = resumed.solution().expect("complete");
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn exhausted_runs_return_legal_placements() {
        let circuit = testcases::cc_ota();
        let placer = quick();
        for steps in [1u64, 10] {
            let outcome = Placer::place(&placer, &circuit, &RunBudget::steps(steps)).unwrap();
            assert!(outcome.is_exhausted(), "steps={steps}");
            let s = outcome.solution().unwrap();
            assert!(
                s.placement.is_legal(&circuit, 1e-6),
                "steps={steps}: exhausted placement must stay legal"
            );
        }
    }

    #[test]
    fn eco_replace_fast_path_is_legal() {
        let circuit = testcases::cc_ota();
        let placer = quick();
        let cold = placer.place(&circuit).unwrap();
        let artifacts = eplace::CircuitArtifacts::build(circuit.clone());
        let warm = eplace::eco::warm_checkpoint(&circuit, &cold.placement);
        let delta = analog_netlist::NetlistDelta::parse("resize RB 18k\n").unwrap();
        let rep = placer
            .replace(
                &artifacts,
                &delta,
                &warm,
                &RunBudget::unlimited(),
                &eplace::EcoConfig::default(),
            )
            .unwrap();
        assert!(rep.outcome.is_fast());
        let sol = rep.outcome.solution().unwrap();
        assert!(sol.placement.is_legal(rep.artifacts.circuit(), 1e-6));
    }

    #[test]
    fn resume_rejects_mismatched_configs() {
        let circuit = testcases::adder();
        let placer = SaPlacer::new(SaConfig {
            temperatures: 20,
            moves_per_temperature: 30,
            chains: 2,
            ..SaConfig::default()
        });
        let budget = RunBudget::unlimited();
        budget.cancel_after_checks(3);
        let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
        let ck = outcome.checkpoint().expect("cancelled");
        // A single-chain placer cannot consume a two-chain checkpoint.
        let other = quick();
        let err = other
            .resume(&circuit, ck, &RunBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, PlaceError::BadCheckpoint(_)));
    }
}
