//! Property-based tests for the sequence-pair floorplanner, islands, and
//! the incremental move evaluator.

#![cfg(test)]

use analog_netlist::testcases;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anneal::{evaluate, random_move, SaConfig, SaState};
use crate::evaluator::MoveEvaluator;
use crate::island::BlockModel;
use crate::seqpair::{PackScratch, SequencePair};

fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

fn cc_ota_size() -> usize {
    testcases::cc_ota().num_devices()
}

fn adder_size() -> usize {
    testcases::adder().num_devices()
}

proptest! {
    /// Any sequence pair packs without overlap (the representation's core
    /// guarantee), for arbitrary permutations.
    #[test]
    fn arbitrary_sequence_pairs_pack_legally(
        s1 in permutation(cc_ota_size()),
        s2 in permutation(cc_ota_size()),
    ) {
        let circuit = testcases::cc_ota();
        let n = circuit.num_devices();
        let sp = SequencePair {
            s1,
            s2,
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&circuit);
        prop_assert!(p.overlapping_pairs(&circuit, 1e-9).is_empty());
        // Lower-left compaction: nothing below/left of the origin.
        for (id, d) in circuit.device_ids() {
            let (x, y) = p.position(id);
            prop_assert!(x >= d.width / 2.0 - 1e-9);
            prop_assert!(y >= d.height / 2.0 - 1e-9);
        }
    }

    /// Packing area is invariant under relabeling both sequences with the
    /// same permutation of identical-size items... weaker but useful:
    /// swapping the two sequences transposes left-of/below relations, so
    /// the bounding box of the transpose equals the original's transpose
    /// for identical squares. Here we assert the general sanity bound: the
    /// packed bounding box never exceeds the serial row/column bounds.
    #[test]
    fn packing_is_bounded_by_serial_layouts(
        s1 in permutation(adder_size()),
        s2 in permutation(adder_size()),
    ) {
        let circuit = testcases::adder();
        let n = circuit.num_devices();
        let sp = SequencePair {
            s1,
            s2,
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&circuit);
        let bb = p.bounding_box(&circuit).unwrap();
        let total_w: f64 = circuit.devices().iter().map(|d| d.width).sum();
        let total_h: f64 = circuit.devices().iter().map(|d| d.height).sum();
        prop_assert!(bb.2 - bb.0 <= total_w + 1e-9);
        prop_assert!(bb.3 - bb.1 <= total_h + 1e-9);
    }

    /// Islands expanded at arbitrary origins preserve exact symmetry.
    #[test]
    fn island_symmetry_invariant_under_origins(
        xs in proptest::collection::vec(0.0..200.0f64, 12),
        ys in proptest::collection::vec(0.0..200.0f64, 12),
    ) {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        prop_assume!(model.len() <= 12);
        let origins: Vec<(f64, f64)> = (0..model.len())
            .map(|i| (xs[i] * 3.0, ys[i])) // spread x to avoid overlaps mattering
            .collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let placement = model.expand(&circuit, &origins, &flips);
        prop_assert!(placement.symmetry_violation(&circuit) < 1e-9);
    }

    /// The O(n log n) Fenwick packing is bit-identical to the O(n²)
    /// longest-path reference on arbitrary sequence pairs with arbitrary
    /// positive dimensions.
    #[test]
    fn fenwick_packing_matches_reference(
        s1 in permutation(24),
        s2 in permutation(24),
        dims in proptest::collection::vec((0.1..50.0f64, 0.1..50.0f64), 24),
    ) {
        let sp = SequencePair {
            s1,
            s2,
            flips: vec![(false, false); 24],
        };
        let widths: Vec<f64> = dims.iter().map(|d| d.0).collect();
        let heights: Vec<f64> = dims.iter().map(|d| d.1).collect();
        let want = sp.pack_dims_reference(&widths, &heights);
        let mut scratch = PackScratch::new();
        let mut got = Vec::new();
        sp.pack_dims_with(&widths, &heights, &mut scratch, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.0.to_bits(), w.0.to_bits(), "x of block {}", i);
            prop_assert_eq!(g.1.to_bits(), w.1.to_bits(), "y of block {}", i);
        }
    }

    /// Random move/accept/reject sequences keep the incremental cost
    /// within 1e-9 of the full-recompute oracle (it is in fact
    /// bit-identical; the tolerance assertion documents the ISSUE's
    /// contract, the bit check enforces the stronger one).
    #[test]
    fn incremental_cost_tracks_oracle_over_move_sequences(
        seed in 0u64..1u64 << 48,
        accepts in proptest::collection::vec(proptest::bool::ANY, 40),
    ) {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        let config = SaConfig::default();
        let n = circuit.num_devices();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = SaState {
            seq_pair: SequencePair::identity(model.len()),
            flips: vec![(false, false); n],
        };
        for _ in 0..2 * model.len() {
            random_move(&mut state, n, &mut rng);
        }
        let mut engine = MoveEvaluator::new(&circuit, &model, &config, &state, None);
        let mut trial = state.clone();
        for (step, &accept) in accepts.iter().enumerate() {
            trial.copy_from(&state);
            random_move(&mut trial, n, &mut rng);
            let got = engine.eval_trial(&trial);
            let (_, want) = evaluate(&circuit, &model, &trial, &config, None);
            prop_assert!((got.total - want.total).abs() <= 1e-9, "step {}", step);
            prop_assert_eq!(got.total.to_bits(), want.total.to_bits(), "step {}", step);
            prop_assert_eq!(got.hpwl.to_bits(), want.hpwl.to_bits(), "step {}", step);
            prop_assert_eq!(
                got.violation.to_bits(),
                want.violation.to_bits(),
                "step {}",
                step
            );
            if accept {
                engine.accept();
                std::mem::swap(&mut state, &mut trial);
            }
        }
    }
}
