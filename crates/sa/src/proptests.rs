//! Property-based tests for the sequence-pair floorplanner and islands.

#![cfg(test)]

use analog_netlist::testcases;
use proptest::prelude::*;

use crate::island::BlockModel;
use crate::seqpair::SequencePair;

fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

fn cc_ota_size() -> usize {
    testcases::cc_ota().num_devices()
}

fn adder_size() -> usize {
    testcases::adder().num_devices()
}

proptest! {
    /// Any sequence pair packs without overlap (the representation's core
    /// guarantee), for arbitrary permutations.
    #[test]
    fn arbitrary_sequence_pairs_pack_legally(
        s1 in permutation(cc_ota_size()),
        s2 in permutation(cc_ota_size()),
    ) {
        let circuit = testcases::cc_ota();
        let n = circuit.num_devices();
        let sp = SequencePair {
            s1,
            s2,
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&circuit);
        prop_assert!(p.overlapping_pairs(&circuit, 1e-9).is_empty());
        // Lower-left compaction: nothing below/left of the origin.
        for (id, d) in circuit.device_ids() {
            let (x, y) = p.position(id);
            prop_assert!(x >= d.width / 2.0 - 1e-9);
            prop_assert!(y >= d.height / 2.0 - 1e-9);
        }
    }

    /// Packing area is invariant under relabeling both sequences with the
    /// same permutation of identical-size items... weaker but useful:
    /// swapping the two sequences transposes left-of/below relations, so
    /// the bounding box of the transpose equals the original's transpose
    /// for identical squares. Here we assert the general sanity bound: the
    /// packed bounding box never exceeds the serial row/column bounds.
    #[test]
    fn packing_is_bounded_by_serial_layouts(
        s1 in permutation(adder_size()),
        s2 in permutation(adder_size()),
    ) {
        let circuit = testcases::adder();
        let n = circuit.num_devices();
        let sp = SequencePair {
            s1,
            s2,
            flips: vec![(false, false); n],
        };
        let p = sp.pack(&circuit);
        let bb = p.bounding_box(&circuit).unwrap();
        let total_w: f64 = circuit.devices().iter().map(|d| d.width).sum();
        let total_h: f64 = circuit.devices().iter().map(|d| d.height).sum();
        prop_assert!(bb.2 - bb.0 <= total_w + 1e-9);
        prop_assert!(bb.3 - bb.1 <= total_h + 1e-9);
    }

    /// Islands expanded at arbitrary origins preserve exact symmetry.
    #[test]
    fn island_symmetry_invariant_under_origins(
        xs in proptest::collection::vec(0.0..200.0f64, 12),
        ys in proptest::collection::vec(0.0..200.0f64, 12),
    ) {
        let circuit = testcases::cc_ota();
        let model = BlockModel::new(&circuit);
        prop_assume!(model.len() <= 12);
        let origins: Vec<(f64, f64)> = (0..model.len())
            .map(|i| (xs[i] * 3.0, ys[i])) // spread x to avoid overlaps mattering
            .collect();
        let flips = vec![(false, false); circuit.num_devices()];
        let placement = model.expand(&circuit, &origins, &flips);
        prop_assert!(placement.symmetry_violation(&circuit) < 1e-9);
    }
}
