//! Flat JSONL parsing and serialization helpers.
//!
//! Every file the observability stack reads or writes — traces, job
//! reports, progress streams, the run ledger, metrics snapshots — is one
//! flat (non-nested) JSON object per line: string keys, scalar values, no
//! arrays or sub-objects. [`parse_flat_json`] covers exactly that shape,
//! so the report tools need no external JSON dependency.

use std::fmt::Write as FmtWrite;

/// A scalar value in one flat JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON number (the sinks never write exponents they can't reparse).
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null` (the sinks write NaN/inf samples as null).
    Null,
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat (non-nested) JSON object line into ordered key/value
/// pairs. This covers the shapes the harness emits — string keys, scalar
/// values, optional spacing after `:` and `,` (job report rows use
/// `"key": value`), no arrays or sub-objects.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_flat_json(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
                skip_ws(&mut chars);
            }
            Some('"') => {}
            Some(c) => return Err(format!("unexpected character {c:?}")),
            None => return Err("unterminated object".into()),
        }
        if chars.peek() == Some(&'"') {
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => JsonValue::Str(parse_string(&mut chars)?),
                Some('t') | Some('f') | Some('n') => {
                    let word: String = chars
                        .by_ref()
                        .take_while(|c| c.is_ascii_alphabetic())
                        .collect();
                    // take_while consumed the delimiter (',' or '}'); put
                    // its effect back by handling it here.
                    let v = match word.as_str() {
                        "true" => JsonValue::Bool(true),
                        "false" => JsonValue::Bool(false),
                        "null" => JsonValue::Null,
                        w => return Err(format!("bad literal {w:?}")),
                    };
                    out.push((key, v));
                    // The delimiter swallowed by take_while was ',' or '}'.
                    // Peek at what follows: if the line continues, loop; if
                    // not, we are done.
                    if chars.peek().is_none() {
                        return Ok(out);
                    }
                    continue;
                }
                _ => {
                    let mut num = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() || "+-.eE".contains(c) {
                            num.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    JsonValue::Num(
                        num.parse()
                            .map_err(|e| format!("bad number {num:?}: {e}"))?,
                    )
                }
            };
            out.push((key, value));
        }
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                Some('r') => s.push('\r'),
                Some('t') => s.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => s.push(c),
        }
    }
}

/// Appends `s` to `line` with JSON string escaping (no surrounding
/// quotes).
pub fn push_escaped(line: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(line, "\\u{:04x}", c as u32);
            }
            c => line.push(c),
        }
    }
}

/// Appends `value` as a JSON number, or `null` when non-finite.
pub fn push_f64(line: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(line, "{value}");
    } else {
        line.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_event_line() {
        let kv = parse_flat_json(r#"{"type":"event","kind":"gp_iter","t_us":42,"overflow":0.75}"#)
            .unwrap();
        assert_eq!(kv[0], ("type".into(), JsonValue::Str("event".into())));
        assert_eq!(kv[1], ("kind".into(), JsonValue::Str("gp_iter".into())));
        assert_eq!(kv[2].1.as_num(), Some(42.0));
        assert_eq!(kv[3].1.as_num(), Some(0.75));
    }

    #[test]
    fn parses_literals_and_escapes() {
        let kv = parse_flat_json(
            r#"{"ok":true,"off":false,"cost":null,"name":"a\"b\\c","neg":-1.5e-3}"#,
        )
        .unwrap();
        assert_eq!(kv[0].1, JsonValue::Bool(true));
        assert_eq!(kv[1].1, JsonValue::Bool(false));
        assert_eq!(kv[2].1, JsonValue::Null);
        assert_eq!(kv[3].1.as_str(), Some("a\"b\\c"));
        assert_eq!(kv[4].1.as_num(), Some(-1.5e-3));
    }

    // Job report rows (`JobReport::to_line`) and pretty-printed tool
    // output space their separators; the parser must accept both shapes.
    #[test]
    fn parses_spaced_report_row() {
        let kv = parse_flat_json(
            r#"{"id": "a1", "status": "complete", "wall_ms": 13.05, "legal": true, "fom": null}"#,
        )
        .unwrap();
        assert_eq!(kv[0].1.as_str(), Some("a1"));
        assert_eq!(kv[1].1.as_str(), Some("complete"));
        assert_eq!(kv[2].1.as_num(), Some(13.05));
        assert_eq!(kv[3].1, JsonValue::Bool(true));
        assert_eq!(kv[4].1, JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json(r#"{"k":}"#).is_err());
        assert!(parse_flat_json(r#"{"k":nope}"#).is_err());
        assert!(parse_flat_json(r#"{"unterminated"#).is_err());
    }

    #[test]
    fn escape_round_trip() {
        let mut line = String::from("{\"k\":\"");
        push_escaped(&mut line, "a\"b\\c\nd\te");
        line.push_str("\"}");
        let kv = parse_flat_json(&line).unwrap();
        assert_eq!(kv[0].1.as_str(), Some("a\"b\\c\nd\te"));
    }
}
