//! Point-in-time snapshots of the telemetry stat registries.
//!
//! A [`MetricsSnapshot`] copies every registered counter, span, and
//! histogram out of `placer-telemetry`'s intrusive registries (cheap, no
//! locks held by the recording side), so it can be taken mid-run. It
//! serializes two ways:
//!
//! * **Flat JSON** — one line with dotted keys (`counter.jobs_completed`,
//!   `span.gp_run.total_ns`, `hist.job_deadline_slack_ms.b34`), parseable
//!   by [`crate::json::parse_flat_json`] and embeddable verbatim in a run
//!   ledger record. [`MetricsSnapshot::from_flat_json`] round-trips it.
//! * **Prometheus text exposition** — counters, per-span counters, and
//!   cumulative-bucket histograms under a `placer_` prefix.
//!
//! Histogram percentiles are estimated from the log-scale buckets: bucket
//! `i` in `1..=63` covers `[2^(i-33), 2^(i-32))` and is represented by its
//! geometric midpoint, bucket 0 (non-positive/non-finite samples) by `0`.
//! The estimate is therefore within a factor of `sqrt(2)` of the true
//! sample value, which is what a 2x-bucketed histogram can promise.

use std::fmt::Write as FmtWrite;

use crate::json::{self, push_escaped, push_f64, JsonValue};
use placer_telemetry::{histogram_bucket_bounds, HISTOGRAM_BUCKETS};

/// One monotonic counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered counter name.
    pub name: String,
    /// Count accumulated since the current trace/observer session began.
    pub value: u64,
}

/// One scoped-timer aggregate at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registered span name.
    pub name: String,
    /// Number of completed enters.
    pub calls: u64,
    /// Total wall time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Total time excluding nested spans on the same thread, nanoseconds.
    pub self_ns: u64,
}

/// One log-scale histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered histogram name.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Per-bucket sample counts; index semantics follow
    /// [`placer_telemetry::histogram_bucket_bounds`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram with all-zero buckets.
    pub fn empty(name: &str) -> Self {
        HistogramSnapshot {
            name: name.to_string(),
            count: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// The representative value of bucket `i`: `0` for bucket 0, the
    /// geometric midpoint of the bucket's bounds otherwise.
    pub fn bucket_value(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let (lo, hi) = histogram_bucket_bounds(i);
        (lo * hi).sqrt()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the buckets.
    /// Returns `None` for an empty histogram. A single-sample histogram
    /// returns that sample's bucket representative for every `q`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if n > 0 && cum >= target {
                return Some(Self::bucket_value(i));
            }
        }
        // count and buckets are updated by separate relaxed atomics, so a
        // mid-record snapshot can see count ahead of the buckets; answer
        // with the highest populated bucket.
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(Self::bucket_value)
    }

    /// `(p50, p90, p99)` estimates, or `None` when empty.
    pub fn summary(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.percentile(0.50)?,
            self.percentile(0.90)?,
            self.percentile(0.99)?,
        ))
    }
}

/// A copy of every registered counter, span, and histogram, sorted by
/// name for deterministic serialization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered spans.
    pub spans: Vec<SpanSnapshot>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Snapshots the live telemetry registries. Against a build without
    /// the `telemetry` feature (no-op registries) this returns an empty
    /// snapshot.
    pub fn capture() -> Self {
        let mut snap = MetricsSnapshot::default();
        placer_telemetry::visit_counters(&mut |name, value| {
            snap.counters.push(CounterSnapshot {
                name: name.to_string(),
                value,
            });
        });
        placer_telemetry::visit_spans(&mut |name, calls, total_ns, self_ns| {
            snap.spans.push(SpanSnapshot {
                name: name.to_string(),
                calls,
                total_ns,
                self_ns,
            });
        });
        placer_telemetry::visit_histograms(&mut |name, count, buckets| {
            snap.histograms.push(HistogramSnapshot {
                name: name.to_string(),
                count,
                buckets: buckets.to_vec(),
            });
        });
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.spans.sort_by(|a, b| a.name.cmp(&b.name));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }

    /// True when nothing is registered (e.g. telemetry compiled out).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.histograms.is_empty()
    }

    /// Appends the snapshot's dotted key/value pairs (each preceded by a
    /// comma) to a flat JSON object under construction.
    pub fn append_flat(&self, line: &mut String) {
        for c in &self.counters {
            line.push_str(",\"counter.");
            push_escaped(line, &c.name);
            let _ = write!(line, "\":{}", c.value);
        }
        for s in &self.spans {
            for (field, value) in [
                ("calls", s.calls),
                ("total_ns", s.total_ns),
                ("self_ns", s.self_ns),
            ] {
                line.push_str(",\"span.");
                push_escaped(line, &s.name);
                let _ = write!(line, ".{field}\":{value}");
            }
        }
        for h in &self.histograms {
            line.push_str(",\"hist.");
            push_escaped(line, &h.name);
            let _ = write!(line, ".count\":{}", h.count);
            for (i, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    line.push_str(",\"hist.");
                    push_escaped(line, &h.name);
                    let _ = write!(line, ".b{i}\":{n}");
                }
            }
            if let Some((p50, p90, p99)) = h.summary() {
                for (tag, v) in [("p50", p50), ("p90", p90), ("p99", p99)] {
                    line.push_str(",\"hist.");
                    push_escaped(line, &h.name);
                    let _ = write!(line, ".{tag}\":");
                    push_f64(line, v);
                }
            }
        }
    }

    /// One flat JSON line: `{"type":"metrics","counter.x":1,...}`.
    pub fn to_flat_json(&self) -> String {
        let mut line = String::from("{\"type\":\"metrics\"");
        self.append_flat(&mut line);
        line.push('}');
        line
    }

    /// Rebuilds a snapshot from a [`Self::to_flat_json`] line (or any flat
    /// object using the same dotted keys, e.g. a ledger record). Derived
    /// percentile keys (`.p50`/`.p90`/`.p99`) are ignored — they are
    /// recomputed from the buckets.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable lines or malformed keys.
    pub fn from_flat_json(line: &str) -> Result<Self, String> {
        let pairs = json::parse_flat_json(line)?;
        let mut snap = MetricsSnapshot::default();
        for (key, value) in pairs {
            let num = |v: &JsonValue| -> Result<u64, String> {
                v.as_num()
                    .map(|f| f as u64)
                    .ok_or_else(|| format!("non-numeric value for {key:?}"))
            };
            if let Some(name) = key.strip_prefix("counter.") {
                snap.counters.push(CounterSnapshot {
                    name: name.to_string(),
                    value: num(&value)?,
                });
            } else if let Some(rest) = key.strip_prefix("span.") {
                let (name, field) = rest
                    .rsplit_once('.')
                    .ok_or_else(|| format!("bad span key {key:?}"))?;
                let span = match snap.spans.last_mut() {
                    Some(s) if s.name == name => s,
                    _ => {
                        snap.spans.push(SpanSnapshot {
                            name: name.to_string(),
                            calls: 0,
                            total_ns: 0,
                            self_ns: 0,
                        });
                        snap.spans.last_mut().unwrap()
                    }
                };
                match field {
                    "calls" => span.calls = num(&value)?,
                    "total_ns" => span.total_ns = num(&value)?,
                    "self_ns" => span.self_ns = num(&value)?,
                    other => return Err(format!("unknown span field {other:?}")),
                }
            } else if let Some(rest) = key.strip_prefix("hist.") {
                let (name, field) = rest
                    .rsplit_once('.')
                    .ok_or_else(|| format!("bad histogram key {key:?}"))?;
                if matches!(field, "p50" | "p90" | "p99") {
                    continue;
                }
                let hist = match snap.histograms.last_mut() {
                    Some(h) if h.name == name => h,
                    _ => {
                        snap.histograms.push(HistogramSnapshot::empty(name));
                        snap.histograms.last_mut().unwrap()
                    }
                };
                if field == "count" {
                    hist.count = num(&value)?;
                } else if let Some(i) = field.strip_prefix('b') {
                    let i: usize = i.parse().map_err(|_| format!("bad bucket key {key:?}"))?;
                    if i >= HISTOGRAM_BUCKETS {
                        return Err(format!("bucket index out of range in {key:?}"));
                    }
                    hist.buckets[i] = num(&value)?;
                } else {
                    return Err(format!("unknown histogram field {field:?}"));
                }
            }
        }
        Ok(snap)
    }

    /// Prometheus text exposition format (one `placer_`-prefixed family
    /// per counter and span field; histograms with cumulative `le`
    /// buckets). The histogram `_sum` is approximated from bucket
    /// representatives — exact sums are not recorded.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(out: &mut String, name: &str) {
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
        }
        let mut out = String::new();
        for c in &self.counters {
            let mut name = String::from("placer_");
            sanitize(&mut name, &c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "# TYPE placer_span_calls_total counter");
            let _ = writeln!(out, "# TYPE placer_span_time_seconds_total counter");
            let _ = writeln!(out, "# TYPE placer_span_self_seconds_total counter");
            for s in &self.spans {
                let mut label = String::new();
                sanitize(&mut label, &s.name);
                let _ = writeln!(
                    out,
                    "placer_span_calls_total{{span=\"{label}\"}} {}",
                    s.calls
                );
                let _ = writeln!(
                    out,
                    "placer_span_time_seconds_total{{span=\"{label}\"}} {}",
                    s.total_ns as f64 / 1e9
                );
                let _ = writeln!(
                    out,
                    "placer_span_self_seconds_total{{span=\"{label}\"}} {}",
                    s.self_ns as f64 / 1e9
                );
            }
        }
        for h in &self.histograms {
            let mut name = String::from("placer_");
            sanitize(&mut name, &h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let top = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            let mut cum = 0u64;
            let mut sum = 0.0f64;
            for (i, &n) in h.buckets.iter().enumerate().take(top + 1) {
                cum += n;
                sum += n as f64 * HistogramSnapshot::bucket_value(i);
                let le = histogram_bucket_bounds(i).1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(samples_by_bucket: &[(usize, u64)]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::empty("t");
        for &(i, n) in samples_by_bucket {
            h.buckets[i] = n;
            h.count += n;
        }
        h
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = HistogramSnapshot::empty("t");
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn percentile_single_sample() {
        // One sample in bucket 33 ([1, 2)); every quantile answers its
        // geometric midpoint sqrt(2).
        let h = hist_with(&[(33, 1)]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!((p - 2f64.sqrt()).abs() < 1e-12, "q={q} -> {p}");
        }
    }

    #[test]
    fn percentile_log_bucket_edges() {
        // 10 samples in [1,2), 10 in [2,4): p50 from bucket 33, p90+ from
        // bucket 34 (midpoint sqrt(2*4) = 2*sqrt(2)).
        let h = hist_with(&[(33, 10), (34, 10)]);
        assert!((h.percentile(0.50).unwrap() - 2f64.sqrt()).abs() < 1e-12);
        assert!((h.percentile(0.90).unwrap() - 8f64.sqrt()).abs() < 1e-12);
        assert!((h.percentile(1.0).unwrap() - 8f64.sqrt()).abs() < 1e-12);
        // Clamp buckets: 63 is the top; its midpoint still answers.
        let top = hist_with(&[(63, 1)]);
        assert!(top.percentile(0.5).unwrap().is_finite());
        // Bucket 1 is the bottom positive bucket.
        let bottom = hist_with(&[(1, 3)]);
        let (lo, hi) = histogram_bucket_bounds(1);
        assert!((bottom.percentile(0.5).unwrap() - (lo * hi).sqrt()).abs() < 1e-40);
    }

    #[test]
    fn percentile_bucket_zero_reports_zero() {
        // Non-positive samples land in bucket 0 and answer 0.0.
        let h = hist_with(&[(0, 5), (33, 5)]);
        assert_eq!(h.percentile(0.25), Some(0.0));
        assert!((h.percentile(0.9).unwrap() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn flat_json_round_trip() {
        let snap = MetricsSnapshot {
            counters: vec![
                CounterSnapshot {
                    name: "jobs_completed".into(),
                    value: 3,
                },
                CounterSnapshot {
                    name: "sa_moves".into(),
                    value: 12345,
                },
            ],
            spans: vec![SpanSnapshot {
                name: "gp_run".into(),
                calls: 2,
                total_ns: 1_500_000,
                self_ns: 900_000,
            }],
            histograms: vec![hist_with(&[(0, 1), (33, 4), (40, 2)])],
        };
        let line = snap.to_flat_json();
        assert!(line.starts_with("{\"type\":\"metrics\""));
        assert!(line.contains("\"counter.jobs_completed\":3"));
        assert!(line.contains("\"span.gp_run.total_ns\":1500000"));
        assert!(line.contains("\"hist.t.b33\":4"));
        assert!(line.contains("\"hist.t.p50\":"));
        let back = MetricsSnapshot::from_flat_json(&line).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_flat_json_rejects_garbage() {
        assert!(MetricsSnapshot::from_flat_json("nope").is_err());
        assert!(MetricsSnapshot::from_flat_json(r#"{"hist.t.b99":1}"#).is_err());
        assert!(MetricsSnapshot::from_flat_json(r#"{"span.t.weird":1}"#).is_err());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "jobs_completed".into(),
                value: 3,
            }],
            spans: vec![SpanSnapshot {
                name: "gp_run".into(),
                calls: 2,
                total_ns: 2_000_000_000,
                self_ns: 1_000_000_000,
            }],
            histograms: vec![hist_with(&[(33, 2), (34, 2)])],
        };
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE placer_jobs_completed counter"));
        assert!(text.contains("placer_jobs_completed 3"));
        assert!(text.contains("placer_span_time_seconds_total{span=\"gp_run\"} 2"));
        // Cumulative buckets end at the total count under +Inf.
        assert!(text.contains("placer_t_bucket{le=\"2\"} 2"));
        assert!(text.contains("placer_t_bucket{le=\"4\"} 4"));
        assert!(text.contains("placer_t_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("placer_t_count 4"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn empty_capture_against_noop_registries() {
        // Without the telemetry feature the visitors are no-ops; with it
        // this still holds before any counter is touched in this process
        // — either way capture() must not panic.
        let snap = MetricsSnapshot::capture();
        let _ = snap.to_flat_json();
        let _ = snap.to_prometheus();
    }
}
