//! The run ledger: an append-only JSONL manifest of every invocation.
//!
//! Each jobs/sweep/bench run appends one flat JSON record to
//! [`DEFAULT_LEDGER_PATH`] (override with `--ledger PATH`, disable with
//! `--ledger none`). A record carries the provenance (`git describe`,
//! OS/arch, timestamp), the run shape (command, wall time, outcome
//! counts), and a flattened [`MetricsSnapshot`], so `results/ledger.jsonl`
//! becomes a machine-readable history of what ran on this checkout —
//! `trace_report` summarizes it, `trace_diff` compares entries.
//!
//! Appends are a single `write` on a file opened with `O_APPEND`, so
//! concurrent invocations interleave whole records, never partial lines.

use std::fmt::Write as FmtWrite;
use std::fs::OpenOptions;
use std::io::{self, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{push_escaped, push_f64};
use crate::metrics::MetricsSnapshot;

/// Where ledger records go unless overridden.
pub const DEFAULT_LEDGER_PATH: &str = "results/ledger.jsonl";

/// Ledger record schema version, bumped on breaking key changes.
pub const LEDGER_SCHEMA: u64 = 1;

/// `git describe --always --dirty --tags` for the working directory, or
/// `"unknown"` when git (or a repository) is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Destination for ledger appends; construct with [`RunLedger::from_flag`].
#[derive(Debug, Clone)]
pub struct RunLedger {
    path: Option<PathBuf>,
}

impl RunLedger {
    /// Maps a `--ledger` flag value to a destination: absent means
    /// [`DEFAULT_LEDGER_PATH`], `none`/`off` disables, anything else is a
    /// path.
    pub fn from_flag(flag: Option<&str>) -> Self {
        let path = match flag {
            Some("none") | Some("off") => None,
            Some(path) => Some(PathBuf::from(path)),
            None => Some(PathBuf::from(DEFAULT_LEDGER_PATH)),
        };
        RunLedger { path }
    }

    /// A ledger that drops every record.
    pub fn disabled() -> Self {
        RunLedger { path: None }
    }

    /// The destination path, if appends are enabled.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Appends one record (creating parent directories and the file on
    /// first use). Returns `Ok(false)` when the ledger is disabled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the open or write.
    pub fn append(&self, record: &LedgerRecord) -> io::Result<bool> {
        let Some(path) = &self.path else {
            return Ok(false);
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(record.to_line().as_bytes())?;
        Ok(true)
    }
}

/// One ledger record under construction: a flat JSON object that always
/// starts with the provenance stamp.
#[derive(Debug, Clone)]
pub struct LedgerRecord {
    line: String,
}

impl LedgerRecord {
    /// Starts a record for command `cmd`, stamped with the schema
    /// version, Unix timestamp, `git describe`, and OS/arch.
    pub fn new(cmd: &str) -> Self {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut record = LedgerRecord {
            line: String::with_capacity(1024),
        };
        record.line.push_str("{\"type\":\"ledger\"");
        record.uint("schema", LEDGER_SCHEMA);
        record.str_field("cmd", cmd);
        record.uint("ts_ms", ts_ms);
        record.str_field("git", &git_describe());
        record.str_field("os", std::env::consts::OS);
        record.str_field("arch", std::env::consts::ARCH);
        record
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.line.push('"');
        push_escaped(&mut self.line, value);
        self.line.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.line, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        push_f64(&mut self.line, value);
        self
    }

    /// Adds a boolean field.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.line.push_str(if value { "true" } else { "false" });
        self
    }

    /// Flattens a metrics snapshot into the record (dotted `counter.*`,
    /// `span.*`, `hist.*` keys).
    pub fn metrics(&mut self, snapshot: &MetricsSnapshot) -> &mut Self {
        snapshot.append_flat(&mut self.line);
        self
    }

    fn key(&mut self, key: &str) {
        self.line.push_str(",\"");
        push_escaped(&mut self.line, key);
        self.line.push_str("\":");
    }

    /// The finished record as one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut line = self.line.clone();
        line.push_str("}\n");
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_flat_json, JsonValue};

    fn temp_ledger(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("placer_ledger_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn records_append_and_parse() {
        let path = temp_ledger("basic");
        std::fs::remove_file(&path).ok();
        let ledger = RunLedger::from_flag(Some(path.to_str().unwrap()));
        let mut record = LedgerRecord::new("jobs");
        record
            .uint("jobs", 3)
            .num("wall_ms", 41.5)
            .flag("resume", false)
            .str_field("note", "quote\" here");
        assert!(ledger.append(&record).unwrap());
        assert!(ledger.append(&record).unwrap());

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let kv = parse_flat_json(line).unwrap();
            assert_eq!(kv[0].1, JsonValue::Str("ledger".into()));
            let get = |k: &str| kv.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
            assert_eq!(get("schema").unwrap().as_num(), Some(LEDGER_SCHEMA as f64));
            assert_eq!(get("cmd").unwrap().as_str(), Some("jobs"));
            assert_eq!(get("jobs").unwrap().as_num(), Some(3.0));
            assert_eq!(get("wall_ms").unwrap().as_num(), Some(41.5));
            assert_eq!(get("note").unwrap().as_str(), Some("quote\" here"));
            assert!(get("git").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn none_flag_disables() {
        let ledger = RunLedger::from_flag(Some("none"));
        assert!(ledger.path().is_none());
        let record = LedgerRecord::new("bench");
        assert!(!ledger.append(&record).unwrap());
        assert!(RunLedger::disabled().path().is_none());
    }

    #[test]
    fn default_flag_points_at_results() {
        let ledger = RunLedger::from_flag(None);
        assert_eq!(ledger.path().unwrap(), Path::new(DEFAULT_LEDGER_PATH));
    }

    #[test]
    fn metrics_flatten_into_record() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(crate::metrics::CounterSnapshot {
            name: "jobs_completed".into(),
            value: 7,
        });
        let mut record = LedgerRecord::new("sweep");
        record.metrics(&snap);
        let line = record.to_line();
        let kv = parse_flat_json(&line).unwrap();
        assert!(kv
            .iter()
            .any(|(k, v)| k == "counter.jobs_completed" && v.as_num() == Some(7.0)));
    }
}
