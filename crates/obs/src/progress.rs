//! Live progress streaming from solver instrumentation points.
//!
//! With a [`ProgressSink`] installed, the telemetry observer hook taps the
//! per-placer loop events — Nesterov iteration (`gp_iter`), SA temperature
//! level (`sa_temp`), Xu19 round (`xu_round`), GNN epoch (`gnn_epoch`) —
//! rate-limits them per recording thread, and pushes fixed-size
//! [`ProgressEvent`] slots into a bounded ring. A dedicated reporter
//! thread drains the ring every few tens of milliseconds and writes one
//! status line per event, as human text or machine-clean JSONL, to stderr
//! or a file.
//!
//! The recording side keeps the PR-3 hot-loop contracts:
//!
//! * **allocation-free** — slots are `Copy` with inline label bytes; the
//!   push formats nothing.
//! * **non-blocking** — the ring mutex is only ever `try_lock`ed by
//!   producers; contention or a full ring drops the event (counted in
//!   [`dropped`]), it never stalls a solver.
//! * **observation-only** — nothing here feeds back into solver state, so
//!   observed and unobserved runs stay bit-identical.
//!
//! Per-job context comes from [`job_scope`]: the job engine (or sweep
//! racer) wraps each unit of work in a scope guard carrying a label and
//! optional deadline, and every event recorded on that thread inside the
//! scope gets the label, remaining budget slack, and an ETA extrapolated
//! from the loop's progress fraction. [`job_done`] emits the terminal
//! per-job status line directly (not rate-limited).
//!
//! Without the `enabled` feature this module keeps its API but does
//! nothing; binaries gate `--progress` on
//! [`crate::progress_compiled`] and refuse with a rebuild hint.

/// Output flavor of a progress stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// One readable status line per event.
    Human,
    /// One flat JSON object per event (`{"type":"progress",...}`).
    Jsonl,
}

impl ProgressMode {
    /// Parses a `--progress=` flag value.
    pub fn parse(s: &str) -> Option<ProgressMode> {
        match s {
            "human" => Some(ProgressMode::Human),
            "jsonl" => Some(ProgressMode::Jsonl),
            _ => None,
        }
    }
}

/// Maximum label bytes carried inline by a progress event; longer job
/// labels are truncated at a character boundary.
pub const LABEL_CAP: usize = 48;

/// Bounded ring capacity between the recording threads and the reporter.
pub const RING_CAPACITY: usize = 1024;

/// Per-thread minimum spacing between streamed loop events. Terminal
/// events ([`job_done`], scope starts) bypass this.
pub const MIN_EVENT_INTERVAL_US: u64 = 20_000;

pub use imp::{
    dropped, install, install_silent, install_to_file, installed, job_done, job_scope, subscribe,
    uninstall, JobScope, ProgressSubscription,
};

#[cfg(feature = "enabled")]
mod imp {
    use super::{ProgressMode, LABEL_CAP, MIN_EVENT_INTERVAL_US, RING_CAPACITY};
    use std::cell::Cell;
    use std::fmt::Write as FmtWrite;
    use std::fs::File;
    use std::io::{self, Write as IoWrite};
    use std::marker::PhantomData;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::thread::JoinHandle;
    use std::time::Duration;

    use crate::json::{push_escaped, push_f64};

    const STATUS_CAP: usize = 16;
    const DRAIN_INTERVAL_MS: u64 = 25;

    /// One fixed-size progress record; `f64::NAN` marks "unknown" for
    /// every numeric field.
    #[derive(Clone, Copy)]
    struct Slot {
        label: [u8; LABEL_CAP],
        label_len: u8,
        status: [u8; STATUS_CAP],
        status_len: u8,
        phase: &'static str,
        t_us: u64,
        iter: f64,
        total: f64,
        cost: f64,
        hpwl: f64,
        wall_ms: f64,
        slack_ms: f64,
        eta_ms: f64,
    }

    const EMPTY_SLOT: Slot = Slot {
        label: [0; LABEL_CAP],
        label_len: 0,
        status: [0; STATUS_CAP],
        status_len: 0,
        phase: "",
        t_us: 0,
        iter: f64::NAN,
        total: f64::NAN,
        cost: f64::NAN,
        hpwl: f64::NAN,
        wall_ms: f64::NAN,
        slack_ms: f64::NAN,
        eta_ms: f64::NAN,
    };

    fn copy_str(dst: &mut [u8], s: &str) -> u8 {
        let mut n = s.len().min(dst.len());
        while n > 0 && !s.is_char_boundary(n) {
            n -= 1;
        }
        dst[..n].copy_from_slice(&s.as_bytes()[..n]);
        n as u8
    }

    fn slot_str(bytes: &[u8], len: u8) -> &str {
        std::str::from_utf8(&bytes[..len as usize]).unwrap_or("")
    }

    struct Ring {
        slots: Vec<Slot>,
        len: usize,
    }

    static RING: Mutex<Ring> = Mutex::new(Ring {
        slots: Vec::new(),
        len: 0,
    });
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    static REPORTER: Mutex<Option<JoinHandle<()>>> = Mutex::new(None);

    #[derive(Clone, Copy)]
    struct Scope {
        label: [u8; LABEL_CAP],
        label_len: u8,
        start_us: u64,
        deadline_ms: f64,
    }

    const NO_SCOPE: Scope = Scope {
        label: [0; LABEL_CAP],
        label_len: 0,
        start_us: 0,
        deadline_ms: f64::NAN,
    };

    thread_local! {
        static SCOPE: Cell<Scope> = const { Cell::new(NO_SCOPE) };
        static LAST_PUSH_US: Cell<u64> = const { Cell::new(0) };
    }

    /// RAII guard from [`job_scope`]; restores the previous scope (for
    /// nesting) when dropped. Not `Send`: it manipulates thread-locals.
    pub struct JobScope {
        prev: Scope,
        _not_send: PhantomData<*const ()>,
    }

    impl Drop for JobScope {
        fn drop(&mut self) {
            SCOPE.with(|s| s.set(self.prev));
        }
    }

    /// Tags the current thread with a job label (and optional deadline in
    /// milliseconds) until the returned guard drops. Emits a `job_start`
    /// status line when a sink is live.
    pub fn job_scope(label: &str, deadline_ms: Option<f64>) -> JobScope {
        let mut scope = NO_SCOPE;
        scope.label_len = copy_str(&mut scope.label, label);
        scope.start_us = placer_telemetry::now_us();
        scope.deadline_ms = deadline_ms.unwrap_or(f64::NAN);
        let prev = SCOPE.with(|s| s.replace(scope));
        if INSTALLED.load(Ordering::Acquire) {
            let mut slot = EMPTY_SLOT;
            slot.phase = "job_start";
            slot.t_us = scope.start_us;
            slot.label = scope.label;
            slot.label_len = scope.label_len;
            slot.slack_ms = scope.deadline_ms;
            push(&slot);
        }
        JobScope {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Emits the terminal status line for a finished job/racer. Not
    /// rate-limited; a no-op without an installed sink.
    pub fn job_done(label: &str, status: &str, wall_ms: f64, hpwl: Option<f64>) {
        if !INSTALLED.load(Ordering::Acquire) {
            return;
        }
        let mut slot = EMPTY_SLOT;
        slot.phase = "job_done";
        slot.t_us = placer_telemetry::now_us();
        slot.label_len = copy_str(&mut slot.label, label);
        slot.status_len = copy_str(&mut slot.status, status);
        slot.wall_ms = wall_ms;
        slot.hpwl = hpwl.unwrap_or(f64::NAN);
        push(&slot);
    }

    fn push(slot: &Slot) -> bool {
        // try_lock only: producers must never block behind the reporter.
        let Ok(mut ring) = RING.try_lock() else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        if ring.len == ring.slots.len() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let len = ring.len;
        ring.slots[len] = *slot;
        ring.len = len + 1;
        true
    }

    /// The telemetry observer: maps known solver loop kinds onto progress
    /// slots. Runs on the recording thread — allocation-free, and bails
    /// in a few branches for unmapped kinds.
    fn observe(kind: &'static str, t_us: u64, fields: &[(&'static str, f64)]) {
        let (iter_key, total_key, cost_key, hpwl_key) = match kind {
            "gp_iter" => ("iter", "max_iters", "", "hpwl"),
            "sa_temp" => ("level", "levels", "cost", ""),
            "xu_round" => ("round", "rounds", "value", ""),
            "gnn_epoch" => ("epoch", "epochs", "loss", ""),
            _ => return,
        };
        if !INSTALLED.load(Ordering::Acquire) {
            return;
        }
        // A stored 0 means "nothing pushed yet": the first event always
        // streams, even right after the epoch is pinned.
        let last = LAST_PUSH_US.with(|c| c.get());
        if last != 0 && t_us.saturating_sub(last) < MIN_EVENT_INTERVAL_US {
            return;
        }
        let mut slot = EMPTY_SLOT;
        slot.phase = kind;
        slot.t_us = t_us;
        for &(name, value) in fields {
            if name == iter_key {
                slot.iter = value;
            } else if name == total_key {
                slot.total = value;
            } else if !cost_key.is_empty() && name == cost_key {
                slot.cost = value;
            } else if !hpwl_key.is_empty() && name == hpwl_key {
                slot.hpwl = value;
            }
        }
        let scope = SCOPE.with(|s| s.get());
        if scope.label_len > 0 {
            slot.label = scope.label;
            slot.label_len = scope.label_len;
            let elapsed_ms = t_us.saturating_sub(scope.start_us) as f64 / 1e3;
            slot.slack_ms = scope.deadline_ms - elapsed_ms;
            // ETA from the loop's progress fraction: remaining iterations
            // scaled by the per-iteration pace so far.
            if slot.iter > 0.0 && slot.total >= slot.iter {
                slot.eta_ms = elapsed_ms * (slot.total - slot.iter) / slot.iter;
            }
        }
        if push(&slot) {
            LAST_PUSH_US.with(|c| c.set(t_us.max(1)));
        }
    }

    enum Output {
        Stderr,
        File(File),
        /// Fan-out-only sink: the reporter drains the ring for
        /// subscribers without writing anywhere itself (the daemon's
        /// mode — each connection gets its own subscription instead of a
        /// process-wide stream).
        Null,
    }

    impl Output {
        fn write_line(&mut self, line: &str) {
            match self {
                Output::Stderr => {
                    let _ = io::stderr().lock().write_all(line.as_bytes());
                }
                Output::File(f) => {
                    let _ = f.write_all(line.as_bytes());
                }
                Output::Null => {}
            }
        }
    }

    // ---- per-connection fan-out -------------------------------------
    //
    // Subscribers receive the JSONL rendering of every event whose job
    // label is in their watch set (an empty set means "everything").
    // Registration is rare and guarded by a mutex; the reporter checks a
    // single atomic before doing any fan-out work, so the no-subscriber
    // path (every CLI run, the zero-alloc telemetry test) is unchanged.

    struct Subscriber {
        id: u64,
        jobs: std::sync::Arc<Mutex<std::collections::HashSet<String>>>,
        tx: std::sync::mpsc::Sender<String>,
    }

    static SUBSCRIBERS: Mutex<Vec<Subscriber>> = Mutex::new(Vec::new());
    static SUBSCRIBER_COUNT: AtomicU64 = AtomicU64::new(0);
    static NEXT_SUBSCRIBER: AtomicU64 = AtomicU64::new(1);

    /// A live progress feed for one consumer (one daemon connection).
    ///
    /// Receives the JSONL line of every event whose job label is in the
    /// watch set ([`watch`](Self::watch)); an empty set receives every
    /// event. Unregisters on drop. Lines only flow while a sink is
    /// installed ([`install`], [`install_to_file`] or — the daemon's
    /// choice — [`install_silent`]), because the reporter thread is what
    /// drains the ring.
    pub struct ProgressSubscription {
        id: u64,
        jobs: std::sync::Arc<Mutex<std::collections::HashSet<String>>>,
        // Behind a lock so the subscription is `Sync`: the daemon shares
        // it between a connection handler (watch) and a forwarder thread
        // (recv).
        rx: Mutex<std::sync::mpsc::Receiver<String>>,
    }

    impl ProgressSubscription {
        /// Adds a job id to the watch set. Events for unwatched jobs are
        /// filtered out at the fan-out point, not delivered and dropped.
        pub fn watch(&self, job_id: &str) {
            self.jobs.lock().unwrap().insert(job_id.to_string());
        }

        /// Blocks up to `timeout` for the next line (without its trailing
        /// newline). `None` on timeout or after [`uninstall`] tore the
        /// fan-out down.
        pub fn recv_timeout(&self, timeout: Duration) -> Option<String> {
            self.rx.lock().unwrap().recv_timeout(timeout).ok()
        }

        /// Drains every line already queued, without blocking.
        pub fn drain(&self) -> Vec<String> {
            self.rx.lock().unwrap().try_iter().collect()
        }
    }

    impl Drop for ProgressSubscription {
        fn drop(&mut self) {
            let mut subs = SUBSCRIBERS.lock().unwrap();
            subs.retain(|s| s.id != self.id);
            SUBSCRIBER_COUNT.store(subs.len() as u64, Ordering::Release);
        }
    }

    /// Registers a progress subscriber; see [`ProgressSubscription`].
    pub fn subscribe() -> ProgressSubscription {
        let (tx, rx) = std::sync::mpsc::channel();
        let jobs = std::sync::Arc::new(Mutex::new(std::collections::HashSet::new()));
        let id = NEXT_SUBSCRIBER.fetch_add(1, Ordering::Relaxed);
        let mut subs = SUBSCRIBERS.lock().unwrap();
        subs.push(Subscriber {
            id,
            jobs: jobs.clone(),
            tx,
        });
        SUBSCRIBER_COUNT.store(subs.len() as u64, Ordering::Release);
        drop(subs);
        ProgressSubscription {
            id,
            jobs,
            rx: Mutex::new(rx),
        }
    }

    /// Sends `slot` to every subscriber watching its label. Runs on the
    /// reporter thread, only when at least one subscriber exists.
    fn fan_out(slot: &Slot, line: &mut String) {
        let label = slot_str(&slot.label, slot.label_len);
        let mut rendered = false;
        let subs = SUBSCRIBERS.lock().unwrap();
        for sub in subs.iter() {
            {
                let jobs = sub.jobs.lock().unwrap();
                if !jobs.is_empty() && !jobs.contains(label) {
                    continue;
                }
            }
            if !rendered {
                format_jsonl(slot, line);
                rendered = true;
            }
            // Trailing newline stripped: the consumer frames lines itself.
            let _ = sub.tx.send(line.trim_end().to_string());
        }
    }

    /// Renders one slot as a flat JSONL progress frame
    /// (`{"type":"progress","v":1,...}`), shared by the stream writer and
    /// the subscriber fan-out. `v` matches `placer_jobs::PROTOCOL_VERSION`
    /// (hardcoded here — the dependency points the other way).
    fn format_jsonl(slot: &Slot, line: &mut String) {
        line.clear();
        let label = slot_str(&slot.label, slot.label_len);
        let status = slot_str(&slot.status, slot.status_len);
        let _ = write!(
            line,
            "{{\"type\":\"progress\",\"v\":1,\"t_us\":{}",
            slot.t_us
        );
        line.push_str(",\"phase\":\"");
        push_escaped(line, slot.phase);
        line.push('"');
        if !label.is_empty() {
            line.push_str(",\"job\":\"");
            push_escaped(line, label);
            line.push('"');
        }
        if !status.is_empty() {
            line.push_str(",\"status\":\"");
            push_escaped(line, status);
            line.push('"');
        }
        for (key, value) in [
            ("iter", slot.iter),
            ("total", slot.total),
            ("cost", slot.cost),
            ("hpwl", slot.hpwl),
            ("wall_ms", slot.wall_ms),
            ("slack_ms", slot.slack_ms),
            ("eta_ms", slot.eta_ms),
        ] {
            if value.is_finite() {
                let _ = write!(line, ",\"{key}\":");
                push_f64(line, value);
            }
        }
        line.push_str("}\n");
    }

    fn emit(slot: &Slot, mode: ProgressMode, line: &mut String, out: &mut Output) {
        line.clear();
        let label = slot_str(&slot.label, slot.label_len);
        let status = slot_str(&slot.status, slot.status_len);
        match mode {
            ProgressMode::Jsonl => {
                format_jsonl(slot, line);
            }
            ProgressMode::Human => {
                line.push_str("[placer] ");
                if !label.is_empty() {
                    line.push_str(label);
                    line.push_str(": ");
                }
                line.push_str(slot.phase);
                if !status.is_empty() {
                    let _ = write!(line, " status={status}");
                }
                if slot.iter.is_finite() {
                    let _ = write!(line, " {}", slot.iter);
                    if slot.total.is_finite() {
                        let _ = write!(line, "/{}", slot.total);
                    }
                }
                if slot.cost.is_finite() {
                    let _ = write!(line, " cost={:.4}", slot.cost);
                }
                if slot.hpwl.is_finite() {
                    let _ = write!(line, " hpwl={:.4}", slot.hpwl);
                }
                if slot.wall_ms.is_finite() {
                    let _ = write!(line, " wall={:.0}ms", slot.wall_ms);
                }
                if slot.slack_ms.is_finite() {
                    let _ = write!(line, " slack={:.0}ms", slot.slack_ms);
                }
                if slot.eta_ms.is_finite() {
                    let _ = write!(line, " eta={:.0}ms", slot.eta_ms);
                }
                line.push('\n');
            }
        }
        out.write_line(line);
    }

    fn reporter(mode: ProgressMode, mut out: Output) {
        // Preallocated so the steady-state drain loop never allocates —
        // the zero-alloc counting-allocator test watches every thread.
        let mut scratch: Vec<Slot> = Vec::with_capacity(RING_CAPACITY);
        let mut line = String::with_capacity(2048);
        loop {
            let stop = SHUTDOWN.load(Ordering::Acquire);
            scratch.clear();
            {
                let mut ring = RING.lock().unwrap();
                let len = ring.len;
                scratch.extend_from_slice(&ring.slots[..len]);
                ring.len = 0;
            }
            let subscribed = SUBSCRIBER_COUNT.load(Ordering::Acquire) > 0;
            for slot in &scratch {
                emit(slot, mode, &mut line, &mut out);
                if subscribed {
                    fan_out(slot, &mut line);
                }
            }
            if let Output::File(f) = &mut out {
                let _ = f.flush();
            }
            if stop {
                break;
            }
            std::thread::sleep(Duration::from_millis(DRAIN_INTERVAL_MS));
        }
    }

    fn install_inner(mode: ProgressMode, out: Output) -> io::Result<()> {
        uninstall();
        {
            let mut ring = RING.lock().unwrap();
            ring.slots.clear();
            ring.slots.resize(RING_CAPACITY, EMPTY_SLOT);
            ring.len = 0;
        }
        DROPPED.store(0, Ordering::Relaxed);
        SHUTDOWN.store(false, Ordering::Release);
        let handle = std::thread::Builder::new()
            .name("obs-progress".into())
            .spawn(move || reporter(mode, out))?;
        *REPORTER.lock().unwrap() = Some(handle);
        INSTALLED.store(true, Ordering::Release);
        placer_telemetry::install_observer(observe);
        Ok(())
    }

    /// Installs a progress sink writing to stderr (replacing any existing
    /// one) and registers the telemetry observer.
    ///
    /// # Errors
    ///
    /// Fails only if the reporter thread cannot be spawned.
    pub fn install(mode: ProgressMode) -> io::Result<()> {
        install_inner(mode, Output::Stderr)
    }

    /// Installs a fan-out-only sink: the reporter thread runs (so
    /// [`subscribe`]rs receive events) but no process-wide stream is
    /// written. The daemon's mode.
    ///
    /// # Errors
    ///
    /// Fails only if the reporter thread cannot be spawned.
    pub fn install_silent() -> io::Result<()> {
        install_inner(ProgressMode::Jsonl, Output::Null)
    }

    /// Like [`install`], but writing to a file (parents created).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and thread-spawn errors.
    pub fn install_to_file(path: &Path, mode: ProgressMode) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        install_inner(mode, Output::File(file))
    }

    /// Unregisters the observer, drains outstanding events, and joins the
    /// reporter thread. Idempotent.
    pub fn uninstall() {
        if !INSTALLED.swap(false, Ordering::AcqRel) {
            return;
        }
        placer_telemetry::uninstall_observer();
        SHUTDOWN.store(true, Ordering::Release);
        if let Some(handle) = REPORTER.lock().unwrap().take() {
            let _ = handle.join();
        }
    }

    /// True while a progress sink is installed.
    pub fn installed() -> bool {
        INSTALLED.load(Ordering::Acquire)
    }

    /// Events dropped by rate-ring overflow or contention since install.
    pub fn dropped() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::ProgressMode;
    use std::io;
    use std::path::Path;

    /// Inert stand-in; see the `enabled` implementation.
    pub struct JobScope(());

    /// No-op without the `enabled` feature.
    pub fn job_scope(_label: &str, _deadline_ms: Option<f64>) -> JobScope {
        JobScope(())
    }

    /// No-op without the `enabled` feature.
    pub fn job_done(_label: &str, _status: &str, _wall_ms: f64, _hpwl: Option<f64>) {}

    /// Succeeds without doing anything; binaries should gate on
    /// [`crate::progress_compiled`] first to give users a rebuild hint.
    pub fn install(_mode: ProgressMode) -> io::Result<()> {
        Ok(())
    }

    /// No-op without the `enabled` feature.
    pub fn install_silent() -> io::Result<()> {
        Ok(())
    }

    /// Inert subscription; never yields a line without the `enabled`
    /// feature. Daemons gate streaming on [`crate::progress_compiled`]
    /// and answer stream requests with a structured "unavailable" error.
    pub struct ProgressSubscription(());

    impl ProgressSubscription {
        /// No-op without the `enabled` feature.
        pub fn watch(&self, _job_id: &str) {}

        /// Always `None` without the `enabled` feature.
        pub fn recv_timeout(&self, _timeout: std::time::Duration) -> Option<String> {
            None
        }

        /// Always empty without the `enabled` feature.
        pub fn drain(&self) -> Vec<String> {
            Vec::new()
        }
    }

    /// Returns an inert subscription without the `enabled` feature.
    pub fn subscribe() -> ProgressSubscription {
        ProgressSubscription(())
    }

    /// See [`install`].
    pub fn install_to_file(_path: &Path, _mode: ProgressMode) -> io::Result<()> {
        Ok(())
    }

    /// No-op without the `enabled` feature.
    pub fn uninstall() {}

    /// Constant `false` without the `enabled` feature.
    pub fn installed() -> bool {
        false
    }

    /// Constant `0` without the `enabled` feature.
    pub fn dropped() -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses() {
        assert_eq!(ProgressMode::parse("human"), Some(ProgressMode::Human));
        assert_eq!(ProgressMode::parse("jsonl"), Some(ProgressMode::Jsonl));
        assert_eq!(ProgressMode::parse("xml"), None);
    }

    // Progress state is process-global (ring, observer, reporter thread),
    // so everything that installs a sink lives in this one test.
    #[cfg(feature = "enabled")]
    #[test]
    fn end_to_end_stream_scope_and_rate_limit() {
        use crate::json::{parse_flat_json, JsonValue};

        let path =
            std::env::temp_dir().join(format!("placer_obs_progress_{}.jsonl", std::process::id()));
        install_to_file(&path, ProgressMode::Jsonl).unwrap();
        assert!(installed());
        assert!(placer_telemetry::active());

        {
            let _scope = job_scope("unit-a", Some(5_000.0));
            // First mapped event streams; the immediate repeat is
            // rate-limited away.
            placer_telemetry::record(
                "gp_iter",
                &[("iter", 10.0), ("max_iters", 40.0), ("hpwl", 123.5)],
            );
            placer_telemetry::record(
                "gp_iter",
                &[("iter", 11.0), ("max_iters", 40.0), ("hpwl", 123.4)],
            );
            // Unmapped kinds never stream.
            placer_telemetry::record("dp_round", &[("round", 1.0)]);
            job_done("unit-a", "complete", 41.5, Some(123.4));
        }
        uninstall();
        assert!(!installed());

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        // job_start + one gp_iter + job_done.
        assert_eq!(lines.len(), 3, "got: {text}");
        for line in &lines {
            let kv = parse_flat_json(line).unwrap();
            assert_eq!(kv[0].1, JsonValue::Str("progress".into()));
        }
        let get = |line: &str, k: &str| -> Option<JsonValue> {
            parse_flat_json(line)
                .unwrap()
                .into_iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
        };
        assert_eq!(get(lines[0], "phase").unwrap().as_str(), Some("job_start"));
        assert_eq!(get(lines[1], "phase").unwrap().as_str(), Some("gp_iter"));
        assert_eq!(get(lines[1], "job").unwrap().as_str(), Some("unit-a"));
        assert_eq!(get(lines[1], "iter").unwrap().as_num(), Some(10.0));
        assert_eq!(get(lines[1], "total").unwrap().as_num(), Some(40.0));
        assert!(get(lines[1], "eta_ms").unwrap().as_num().unwrap() >= 0.0);
        assert!(get(lines[1], "slack_ms").unwrap().as_num().unwrap() <= 5_000.0);
        assert_eq!(get(lines[2], "phase").unwrap().as_str(), Some("job_done"));
        assert_eq!(get(lines[2], "status").unwrap().as_str(), Some("complete"));
        assert_eq!(get(lines[2], "wall_ms").unwrap().as_num(), Some(41.5));

        // Metrics snapshots are capturable mid-run; with the observer
        // gone, recording deactivates again (no sink in this test).
        let snap = crate::metrics::MetricsSnapshot::capture();
        let _ = snap.to_flat_json();
        assert!(!placer_telemetry::active());

        // Human mode formats without panicking and honors the scope label.
        let path2 = std::env::temp_dir().join(format!(
            "placer_obs_progress_human_{}.txt",
            std::process::id()
        ));
        install_to_file(&path2, ProgressMode::Human).unwrap();
        {
            let _scope = job_scope("unit-b", None);
            placer_telemetry::record(
                "sa_temp",
                &[("level", 3.0), ("levels", 9.0), ("cost", 7.25)],
            );
        }
        uninstall();
        let text2 = std::fs::read_to_string(&path2).unwrap();
        std::fs::remove_file(&path2).ok();
        assert!(text2.contains("[placer] unit-b: sa_temp 3/9"), "{text2}");
        assert!(text2.contains("cost=7.2500"), "{text2}");

        // Fan-out: a silent sink delivers filtered frames to subscribers
        // without writing a process-wide stream anywhere.
        install_silent().unwrap();
        let all = subscribe();
        let only_c = subscribe();
        only_c.watch("unit-c");
        {
            let _scope = job_scope("unit-c", None);
            job_done("unit-c", "complete", 1.0, Some(9.0));
        }
        {
            let _scope = job_scope("unit-d", None);
            job_done("unit-d", "complete", 2.0, None);
        }
        // Collect until both terminal frames arrive (the reporter drains
        // every 25ms); cap the wait so a regression fails, not hangs.
        let mut seen = Vec::new();
        for _ in 0..200 {
            seen.extend(all.drain());
            if seen.iter().filter(|l| l.contains("job_done")).count() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        uninstall();
        seen.extend(all.drain());
        let done: Vec<&String> = seen.iter().filter(|l| l.contains("job_done")).collect();
        assert_eq!(done.len(), 2, "unfiltered subscriber sees both: {seen:?}");
        for line in &seen {
            let kv = parse_flat_json(line).unwrap();
            assert_eq!(kv[0].1, JsonValue::Str("progress".into()));
            assert_eq!(kv[1].0, "v", "frames are versioned: {line}");
            assert_eq!(kv[1].1, JsonValue::Num(1.0));
        }
        let filtered = only_c.drain();
        assert!(!filtered.is_empty(), "watched job streamed");
        for line in &filtered {
            assert!(line.contains("\"job\":\"unit-c\""), "filter leak: {line}");
        }
    }
}
