//! Operational observability for the placement workspace.
//!
//! This crate turns the raw `placer-telemetry` primitives (per-thread event
//! rings, counters, histograms, spans) into the layer an operator actually
//! watches a run through:
//!
//! * [`progress`] — a live [`progress::ProgressSink`]: solver loop events
//!   (Nesterov iteration, SA temperature level, Xu19 round, GNN epoch) are
//!   tapped via the telemetry observer hook, rate-limited per thread,
//!   pushed into a bounded non-blocking ring, and drained by a reporter
//!   thread into human or JSONL status lines on stderr (or a file).
//!   Per-job context (label, deadline) attaches budget slack and an ETA
//!   estimate to each event.
//! * [`metrics`] — [`metrics::MetricsSnapshot`]: a point-in-time copy of
//!   every registered counter/span/histogram, with log-bucket percentile
//!   summaries, serializable to flat JSON (one line, `trace_report`
//!   compatible) and to Prometheus text exposition format.
//! * [`ledger`] — [`ledger::RunLedger`]: an append-only JSONL manifest of
//!   every jobs/sweep/bench invocation (git describe, ISA, wall time,
//!   outcome counts, metrics snapshot), one atomic `write` per record.
//! * [`json`] — the flat-JSON line parser shared by every tool that reads
//!   trace, report, progress, or ledger files.
//!
//! Like the telemetry crate, the hot half has two personalities: with the
//! `enabled` feature the progress pipeline is live; without it progress
//! installation is an inert no-op (the binaries refuse `--progress` with a
//! rebuild hint). Metrics and the ledger are always compiled — against
//! no-op registries they simply produce empty snapshots.
//!
//! The PR-3 contracts carry over: nothing here perturbs solver arithmetic
//! (bit-identity of observed vs unobserved runs), and the recording side of
//! the progress pipeline is allocation-free and non-blocking after warm-up.

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod progress;

/// True when this build carries the live progress pipeline (the `enabled`
/// feature, forwarded from the workspace `telemetry` feature).
pub fn progress_compiled() -> bool {
    cfg!(feature = "enabled")
}
