//! Verifies the SIMD kernels' zero-allocation contract with a counting
//! global allocator: once dispatch has resolved (the first `selected()`
//! call may read `PLACER_SIMD` from the environment, which allocates),
//! every kernel in the crate runs entirely on caller-provided buffers.
//!
//! This file must hold exactly one test: other tests running concurrently
//! in the same binary would bump the counters and produce false failures.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use placer_simd::{DeviceArrays, PinArrays};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a side
// effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn kernels_allocate_nothing_after_dispatch_resolves() {
    // Resolve dispatch (may read the environment) and build every input
    // buffer before the measured window.
    let backend = placer_simd::selected();
    let n = 37; // odd on purpose: exercises every SIMD tail
    let coords: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 20.0).collect();
    let mut ep = vec![0.0; n];
    let mut em = vec![0.0; n];
    let mut grads = vec![0.0; n];
    let mut acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    let xs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut row = vec![0.0; n];
    let ex: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let ey: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
    let nd = 9;
    let pos_x: Vec<f64> = (0..nd).map(|i| i as f64 * 3.0).collect();
    let pos_y: Vec<f64> = (0..nd).map(|i| i as f64 * 2.0).collect();
    let flip_x: Vec<f64> = (0..nd).map(|i| (i % 2) as f64).collect();
    let flip_y: Vec<f64> = (0..nd).map(|i| (i % 3 == 0) as u8 as f64).collect();
    let halfw_d: Vec<f64> = (0..nd).map(|i| 0.5 + i as f64 * 0.1).collect();
    let halfh_d: Vec<f64> = (0..nd).map(|i| 0.4 + i as f64 * 0.1).collect();
    let dev: Vec<u32> = (0..n).map(|i| (i % nd) as u32).collect();
    let halfw: Vec<f64> = (0..n).map(|i| 0.5 + (i % 4) as f64 * 0.25).collect();
    let halfh: Vec<f64> = (0..n).map(|i| 0.3 + (i % 3) as f64 * 0.25).collect();
    let offx: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.1).collect();
    let offx_flip: Vec<f64> = offx.iter().map(|o| 1.0 - o).collect();
    let offy: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.1).collect();
    let offy_flip: Vec<f64> = offy.iter().map(|o| 0.8 - o).collect();
    let mut out_x = vec![0.0; n];
    let mut out_y = vec![0.0; n];
    let pins = PinArrays {
        dev: &dev,
        halfw: &halfw,
        halfh: &halfh,
        offx: &offx,
        offx_flip: &offx_flip,
        offy: &offy,
        offy_flip: &offy_flip,
    };
    let devs = DeviceArrays {
        pos_x: &pos_x,
        pos_y: &pos_y,
        flip_x: &flip_x,
        flip_y: &flip_y,
    };

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut sink = 0.0;
    for _ in 0..50 {
        let (xmin, xmax) = placer_simd::min_max(&coords);
        let (s1, s1x, s2, s2x) =
            placer_simd::wa_exp_sums(&coords, 1.3, xmax, xmin, &mut ep, &mut em);
        placer_simd::wa_grad_finish(
            &coords,
            &ep,
            &em,
            1.3,
            s1x / s1,
            s2x / s2,
            s1,
            s2,
            &mut grads,
        );
        placer_simd::lse_grad_finish(&ep, &em, s1, s2, &mut grads);
        placer_simd::exp_slice(&mut ep);
        placer_simd::axpy(&mut acc, 0.5, &xs);
        let bb = placer_simd::bbox(&pos_x, &pos_y, &halfw_d, &halfh_d);
        placer_simd::scatter_row(&mut row, 3, 0.8, 1.0, 7.5, 0.6, 0.64);
        let (mut fx, mut fy) = (0.0, 0.0);
        placer_simd::gather_row(&ex, &ey, 3, 0.8, 1.0, 7.5, 0.6, 0.64, &mut fx, &mut fy);
        placer_simd::pin_coords(&pins, &devs, &mut out_x, &mut out_y);
        sink += s1 + bb.2 + fx + fy + out_x[n - 1] + grads[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "kernels allocated {} times across 50 sweeps on backend {}",
        after - before,
        backend.name()
    );
}
