//! Elementwise and reduction sweeps: uncontracted axpy, min/max folds,
//! outline bounding boxes, and flip-resolved pin coordinates.
//!
//! Every kernel here is **bit-exact** against its `_reference` twin for
//! NaN-free inputs: the maps are elementwise with the reference's exact op
//! order, and the min/max folds are associative + commutative, so any lane
//! decomposition folds to the identical value (see the crate docs for the
//! `±0.0` sign caveat).

use crate::Backend;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// `acc[i] += a * x[i]` over `min(acc.len(), x.len())` elements.
///
/// Multiply **then** add — deliberately never contracted to an FMA — so
/// every backend is bit-identical to the seed loops in the CSR SpMM row
/// accumulation and the Nesterov gradient mix.
pub fn axpy(acc: &mut [f64], a: f64, x: &[f64]) {
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { axpy_avx512(acc, a, x) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { axpy_avx2(acc, a, x) },
        _ => axpy_reference(acc, a, x),
    }
}

/// Scalar twin of [`axpy`] (the seed accumulation loop, op for op).
pub fn axpy_reference(acc: &mut [f64], a: f64, x: &[f64]) {
    for (o, &r) in acc.iter_mut().zip(x) {
        *o += a * r;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn axpy_avx2(acc: &mut [f64], a: f64, x: &[f64]) {
    let n = acc.len().min(x.len());
    let va = _mm256_set1_pd(a);
    let mut i = 0;
    while i + 4 <= n {
        let vx = _mm256_loadu_pd(x.as_ptr().add(i));
        let vo = _mm256_loadu_pd(acc.as_ptr().add(i));
        // mul + add, not fmadd: bit-exact contract.
        let vo = _mm256_add_pd(vo, _mm256_mul_pd(va, vx));
        _mm256_storeu_pd(acc.as_mut_ptr().add(i), vo);
        i += 4;
    }
    axpy_reference(&mut acc[i..n], a, &x[i..n]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn axpy_avx512(acc: &mut [f64], a: f64, x: &[f64]) {
    let n = acc.len().min(x.len());
    let va = _mm512_set1_pd(a);
    let mut i = 0;
    while i + 8 <= n {
        let vx = _mm512_loadu_pd(x.as_ptr().add(i));
        let vo = _mm512_loadu_pd(acc.as_ptr().add(i));
        let vo = _mm512_add_pd(vo, _mm512_mul_pd(va, vx));
        _mm512_storeu_pd(acc.as_mut_ptr().add(i), vo);
        i += 8;
    }
    axpy_reference(&mut acc[i..n], a, &x[i..n]);
}

/// `(min, max)` of `xs` — `(∞, −∞)` when empty.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { min_max_avx512(xs) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { min_max_avx2(xs) },
        _ => min_max_reference(xs),
    }
}

/// Scalar twin of [`min_max`] (the seed's `fold(∞, f64::min)` /
/// `fold(−∞, f64::max)` pair, interleaved into one pass — per-accumulator
/// op sequences are unchanged).
pub fn min_max_reference(xs: &[f64]) -> (f64, f64) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    for &x in xs {
        mn = mn.min(x);
        mx = mx.max(x);
    }
    (mn, mx)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn min_max_avx2(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    let mut vmn = _mm256_set1_pd(f64::INFINITY);
    let mut vmx = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_pd(xs.as_ptr().add(i));
        vmn = _mm256_min_pd(vmn, v);
        vmx = _mm256_max_pd(vmx, v);
        i += 4;
    }
    let mut mn = fold_min4(vmn);
    let mut mx = fold_max4(vmx);
    while i < n {
        mn = mn.min(xs[i]);
        mx = mx.max(xs[i]);
        i += 1;
    }
    (mn, mx)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn min_max_avx512(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    let mut vmn = _mm512_set1_pd(f64::INFINITY);
    let mut vmx = _mm512_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm512_loadu_pd(xs.as_ptr().add(i));
        vmn = _mm512_min_pd(vmn, v);
        vmx = _mm512_max_pd(vmx, v);
        i += 8;
    }
    let mut mn = _mm512_reduce_min_pd(vmn);
    let mut mx = _mm512_reduce_max_pd(vmx);
    while i < n {
        mn = mn.min(xs[i]);
        mx = mx.max(xs[i]);
        i += 1;
    }
    (mn, mx)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_min4(v: __m256d) -> f64 {
    let mut l = [0.0f64; 4];
    _mm256_storeu_pd(l.as_mut_ptr(), v);
    l[0].min(l[1]).min(l[2]).min(l[3])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_max4(v: __m256d) -> f64 {
    let mut l = [0.0f64; 4];
    _mm256_storeu_pd(l.as_mut_ptr(), v);
    l[0].max(l[1]).max(l[2]).max(l[3])
}

/// Outline bounding box `(xmin, ymin, xmax, ymax)` over device centers and
/// half-dims — the SA cost assembly's area fold. `(∞, ∞, −∞, −∞)` when
/// empty.
///
/// # Panics
///
/// Panics on slice length mismatches.
pub fn bbox(pos_x: &[f64], pos_y: &[f64], halfw: &[f64], halfh: &[f64]) -> (f64, f64, f64, f64) {
    let n = pos_x.len();
    assert!(
        pos_y.len() == n && halfw.len() == n && halfh.len() == n,
        "bbox slice length mismatch"
    );
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { bbox_avx512(pos_x, pos_y, halfw, halfh) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { bbox_avx2(pos_x, pos_y, halfw, halfh) },
        _ => bbox_reference(pos_x, pos_y, halfw, halfh),
    }
}

/// Scalar twin of [`bbox`] (the evaluator's id-order folds, op for op).
pub fn bbox_reference(
    pos_x: &[f64],
    pos_y: &[f64],
    halfw: &[f64],
    halfh: &[f64],
) -> (f64, f64, f64, f64) {
    let mut xmin = f64::INFINITY;
    let mut ymin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for i in 0..pos_x.len() {
        xmin = xmin.min(pos_x[i] - halfw[i]);
        ymin = ymin.min(pos_y[i] - halfh[i]);
        xmax = xmax.max(pos_x[i] + halfw[i]);
        ymax = ymax.max(pos_y[i] + halfh[i]);
    }
    (xmin, ymin, xmax, ymax)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn bbox_avx2(
    pos_x: &[f64],
    pos_y: &[f64],
    halfw: &[f64],
    halfh: &[f64],
) -> (f64, f64, f64, f64) {
    let n = pos_x.len();
    let mut vxmin = _mm256_set1_pd(f64::INFINITY);
    let mut vymin = _mm256_set1_pd(f64::INFINITY);
    let mut vxmax = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut vymax = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 4 <= n {
        let px = _mm256_loadu_pd(pos_x.as_ptr().add(i));
        let py = _mm256_loadu_pd(pos_y.as_ptr().add(i));
        let hw = _mm256_loadu_pd(halfw.as_ptr().add(i));
        let hh = _mm256_loadu_pd(halfh.as_ptr().add(i));
        vxmin = _mm256_min_pd(vxmin, _mm256_sub_pd(px, hw));
        vymin = _mm256_min_pd(vymin, _mm256_sub_pd(py, hh));
        vxmax = _mm256_max_pd(vxmax, _mm256_add_pd(px, hw));
        vymax = _mm256_max_pd(vymax, _mm256_add_pd(py, hh));
        i += 4;
    }
    let mut xmin = fold_min4(vxmin);
    let mut ymin = fold_min4(vymin);
    let mut xmax = fold_max4(vxmax);
    let mut ymax = fold_max4(vymax);
    while i < n {
        xmin = xmin.min(pos_x[i] - halfw[i]);
        ymin = ymin.min(pos_y[i] - halfh[i]);
        xmax = xmax.max(pos_x[i] + halfw[i]);
        ymax = ymax.max(pos_y[i] + halfh[i]);
        i += 1;
    }
    (xmin, ymin, xmax, ymax)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn bbox_avx512(
    pos_x: &[f64],
    pos_y: &[f64],
    halfw: &[f64],
    halfh: &[f64],
) -> (f64, f64, f64, f64) {
    let n = pos_x.len();
    let mut vxmin = _mm512_set1_pd(f64::INFINITY);
    let mut vymin = _mm512_set1_pd(f64::INFINITY);
    let mut vxmax = _mm512_set1_pd(f64::NEG_INFINITY);
    let mut vymax = _mm512_set1_pd(f64::NEG_INFINITY);
    let mut i = 0;
    while i + 8 <= n {
        let px = _mm512_loadu_pd(pos_x.as_ptr().add(i));
        let py = _mm512_loadu_pd(pos_y.as_ptr().add(i));
        let hw = _mm512_loadu_pd(halfw.as_ptr().add(i));
        let hh = _mm512_loadu_pd(halfh.as_ptr().add(i));
        vxmin = _mm512_min_pd(vxmin, _mm512_sub_pd(px, hw));
        vymin = _mm512_min_pd(vymin, _mm512_sub_pd(py, hh));
        vxmax = _mm512_max_pd(vxmax, _mm512_add_pd(px, hw));
        vymax = _mm512_max_pd(vymax, _mm512_add_pd(py, hh));
        i += 8;
    }
    let mut xmin = _mm512_reduce_min_pd(vxmin);
    let mut ymin = _mm512_reduce_min_pd(vymin);
    let mut xmax = _mm512_reduce_max_pd(vxmax);
    let mut ymax = _mm512_reduce_max_pd(vymax);
    while i < n {
        xmin = xmin.min(pos_x[i] - halfw[i]);
        ymin = ymin.min(pos_y[i] - halfh[i]);
        xmax = xmax.max(pos_x[i] + halfw[i]);
        ymax = ymax.max(pos_y[i] + halfh[i]);
        i += 1;
    }
    (xmin, ymin, xmax, ymax)
}

/// Per-pin constant arrays for [`pin_coords`], in flat pin order (the SoA
/// mirror of the SA evaluator's `FlatPin`).
#[derive(Debug, Clone, Copy)]
pub struct PinArrays<'a> {
    /// Owning device of each pin.
    pub dev: &'a [u32],
    /// Owning device's half-width, repeated per pin.
    pub halfw: &'a [f64],
    /// Owning device's half-height, repeated per pin.
    pub halfh: &'a [f64],
    /// Unflipped x pin offset.
    pub offx: &'a [f64],
    /// Flipped x pin offset.
    pub offx_flip: &'a [f64],
    /// Unflipped y pin offset.
    pub offy: &'a [f64],
    /// Flipped y pin offset.
    pub offy_flip: &'a [f64],
}

/// Per-device state arrays for [`pin_coords`]: center coordinates plus
/// flip masks encoded as `1.0` (flipped) / `0.0` (not flipped).
#[derive(Debug, Clone, Copy)]
pub struct DeviceArrays<'a> {
    /// Device center x.
    pub pos_x: &'a [f64],
    /// Device center y.
    pub pos_y: &'a [f64],
    /// X flip mask (`1.0` / `0.0`).
    pub flip_x: &'a [f64],
    /// Y flip mask (`1.0` / `0.0`).
    pub flip_y: &'a [f64],
}

/// Resolves every pin's absolute coordinates:
/// `out[i] = (pos[dev[i]] - half[i]) + off[i]` with the flip-selected
/// offset — the arithmetic of the SA evaluator's `flat_net_hpwl` pin loop,
/// op for op. Elementwise, so bit-exact under every backend.
///
/// # Panics
///
/// Panics on slice length mismatches or a `dev` entry out of range of the
/// device arrays (the bound that makes the SIMD gathers sound).
pub fn pin_coords(pins: &PinArrays, devs: &DeviceArrays, out_x: &mut [f64], out_y: &mut [f64]) {
    let n = pins.dev.len();
    assert!(
        pins.halfw.len() == n
            && pins.halfh.len() == n
            && pins.offx.len() == n
            && pins.offx_flip.len() == n
            && pins.offy.len() == n
            && pins.offy_flip.len() == n
            && out_x.len() == n
            && out_y.len() == n,
        "pin_coords pin-array length mismatch"
    );
    let nd = devs.pos_x.len();
    assert!(
        devs.pos_y.len() == nd && devs.flip_x.len() == nd && devs.flip_y.len() == nd,
        "pin_coords device-array length mismatch"
    );
    assert!(
        pins.dev.iter().all(|&d| (d as usize) < nd),
        "pin_coords device index out of range"
    );
    match crate::selected() {
        // AVX-512 runs the AVX2 kernel: the gathers dominate and stay
        // 4-wide either way ([`crate::detected`] guarantees AVX2+FMA
        // whenever AVX-512 is selected).
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 | Backend::Avx2 => unsafe { pin_coords_avx2(pins, devs, out_x, out_y, 0) },
        _ => pin_coords_range(pins, devs, out_x, out_y, 0),
    }
}

/// Scalar twin of [`pin_coords`].
pub fn pin_coords_reference(
    pins: &PinArrays,
    devs: &DeviceArrays,
    out_x: &mut [f64],
    out_y: &mut [f64],
) {
    pin_coords_range(pins, devs, out_x, out_y, 0);
}

/// Scalar pin resolution from `start` to the end (also the SIMD tail).
fn pin_coords_range(
    pins: &PinArrays,
    devs: &DeviceArrays,
    out_x: &mut [f64],
    out_y: &mut [f64],
    start: usize,
) {
    for i in start..pins.dev.len() {
        let d = pins.dev[i] as usize;
        let off_x = if devs.flip_x[d] > 0.5 {
            pins.offx_flip[i]
        } else {
            pins.offx[i]
        };
        let off_y = if devs.flip_y[d] > 0.5 {
            pins.offy_flip[i]
        } else {
            pins.offy[i]
        };
        out_x[i] = devs.pos_x[d] - pins.halfw[i] + off_x;
        out_y[i] = devs.pos_y[d] - pins.halfh[i] + off_y;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn pin_coords_avx2(
    pins: &PinArrays,
    devs: &DeviceArrays,
    out_x: &mut [f64],
    out_y: &mut [f64],
    start: usize,
) {
    let n = pins.dev.len();
    let half = _mm256_set1_pd(0.5);
    let mut i = start;
    while i + 4 <= n {
        let idx = _mm_loadu_si128(pins.dev.as_ptr().add(i) as *const __m128i);
        let fx = _mm256_i32gather_pd::<8>(devs.flip_x.as_ptr(), idx);
        let fy = _mm256_i32gather_pd::<8>(devs.flip_y.as_ptr(), idx);
        let px = _mm256_i32gather_pd::<8>(devs.pos_x.as_ptr(), idx);
        let py = _mm256_i32gather_pd::<8>(devs.pos_y.as_ptr(), idx);
        let off_x = _mm256_blendv_pd(
            _mm256_loadu_pd(pins.offx.as_ptr().add(i)),
            _mm256_loadu_pd(pins.offx_flip.as_ptr().add(i)),
            _mm256_cmp_pd::<_CMP_GT_OQ>(fx, half),
        );
        let off_y = _mm256_blendv_pd(
            _mm256_loadu_pd(pins.offy.as_ptr().add(i)),
            _mm256_loadu_pd(pins.offy_flip.as_ptr().add(i)),
            _mm256_cmp_pd::<_CMP_GT_OQ>(fy, half),
        );
        let x = _mm256_add_pd(
            _mm256_sub_pd(px, _mm256_loadu_pd(pins.halfw.as_ptr().add(i))),
            off_x,
        );
        let y = _mm256_add_pd(
            _mm256_sub_pd(py, _mm256_loadu_pd(pins.halfh.as_ptr().add(i))),
            off_y,
        );
        _mm256_storeu_pd(out_x.as_mut_ptr().add(i), x);
        _mm256_storeu_pd(out_y.as_mut_ptr().add(i), y);
        i += 4;
    }
    pin_coords_range(pins, devs, out_x, out_y, i);
}
