//! Vectorized `exp` for f64 lanes (Cephes `expd`-style).
//!
//! Range reduction `x = n·ln2 + r` with a Cody–Waite split of ln2, a
//! degree-(2,3) rational approximation of `expm1(r)/r` on the reduced
//! interval, and exponent reconstruction through the IEEE bit pattern.
//! Accuracy is ≤ 2 ULP of `f64::exp` over the full finite range (the
//! proptests pin a relative error of 1e-15); inputs below the underflow
//! threshold flush to `0.0` and above the overflow threshold saturate to
//! `+inf`, matching `f64::exp`'s limits.
//!
//! The scalar backends never call this — they use `f64::exp` so the
//! forced-scalar lane stays bit-identical to the pre-SIMD seed paths.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// log2(e), for `n = round(x / ln 2)`.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High part of ln 2 (Cody–Waite).
const C1: f64 = 6.931_457_519_531_25e-1;
/// Low part of ln 2 (Cody–Waite).
const C2: f64 = 1.428_606_820_309_417_2e-6;
/// Above this, `exp` overflows to `+inf`.
const MAX_X: f64 = 709.437;
/// Below this, `exp` underflows to `0.0` (the subnormal tail is flushed —
/// WA/LSE weights that small contribute nothing to the sums).
const MIN_X: f64 = -708.396_418_532_264_1;

const P0: f64 = 1.261_771_930_748_105_9e-4;
const P1: f64 = 3.029_944_077_074_419_6e-2;
const P2: f64 = 9.999_999_999_999_999e-1;
const Q0: f64 = 3.001_985_051_386_644_6e-6;
const Q1: f64 = 2.524_483_403_496_841e-3;
const Q2: f64 = 2.272_655_482_081_550_3e-1;
const Q3: f64 = 2.0;

/// 4-lane `exp`.
///
/// # Safety
///
/// Requires AVX2 + FMA (callers are themselves `#[target_feature]`
/// functions guarded by dispatch).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn exp_pd_avx2(x: __m256d) -> __m256d {
    let n = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(_mm256_mul_pd(
        x,
        _mm256_set1_pd(LOG2E),
    ));
    // r = x - n*C1 - n*C2 (two-step Cody–Waite).
    let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(C1), x);
    let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(C2), r);
    let rr = _mm256_mul_pd(r, r);
    // p = r · P(r²)
    let p = _mm256_fmadd_pd(_mm256_set1_pd(P0), rr, _mm256_set1_pd(P1));
    let p = _mm256_fmadd_pd(p, rr, _mm256_set1_pd(P2));
    let p = _mm256_mul_pd(p, r);
    // q = Q(r²)
    let q = _mm256_fmadd_pd(_mm256_set1_pd(Q0), rr, _mm256_set1_pd(Q1));
    let q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(Q2));
    let q = _mm256_fmadd_pd(q, rr, _mm256_set1_pd(Q3));
    // expm1(r) = 2·p/(q − p); exp(r) = 1 + expm1(r).
    let e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
    let e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), _mm256_set1_pd(1.0));
    // Scale by 2^n through the exponent bits.
    let n_i32 = _mm256_cvtpd_epi32(n);
    let n_i64 = _mm256_cvtepi32_epi64(n_i32);
    let pow2 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
        n_i64,
        _mm256_set1_epi64x(1023),
    )));
    let y = _mm256_mul_pd(e, pow2);
    // Saturate the extremes.
    let y = _mm256_blendv_pd(
        y,
        _mm256_set1_pd(f64::INFINITY),
        _mm256_cmp_pd::<_CMP_GT_OQ>(x, _mm256_set1_pd(MAX_X)),
    );
    _mm256_blendv_pd(
        y,
        _mm256_setzero_pd(),
        _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_set1_pd(MIN_X)),
    )
}

/// 8-lane `exp`.
///
/// # Safety
///
/// Requires AVX-512F.
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn exp_pd_avx512(x: __m512d) -> __m512d {
    let n = _mm512_roundscale_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
        _mm512_mul_pd(x, _mm512_set1_pd(LOG2E)),
    );
    let r = _mm512_fnmadd_pd(n, _mm512_set1_pd(C1), x);
    let r = _mm512_fnmadd_pd(n, _mm512_set1_pd(C2), r);
    let rr = _mm512_mul_pd(r, r);
    let p = _mm512_fmadd_pd(_mm512_set1_pd(P0), rr, _mm512_set1_pd(P1));
    let p = _mm512_fmadd_pd(p, rr, _mm512_set1_pd(P2));
    let p = _mm512_mul_pd(p, r);
    let q = _mm512_fmadd_pd(_mm512_set1_pd(Q0), rr, _mm512_set1_pd(Q1));
    let q = _mm512_fmadd_pd(q, rr, _mm512_set1_pd(Q2));
    let q = _mm512_fmadd_pd(q, rr, _mm512_set1_pd(Q3));
    let e = _mm512_div_pd(p, _mm512_sub_pd(q, p));
    let e = _mm512_fmadd_pd(e, _mm512_set1_pd(2.0), _mm512_set1_pd(1.0));
    let n_i32 = _mm512_cvtpd_epi32(n);
    let n_i64 = _mm512_cvtepi32_epi64(n_i32);
    let pow2 = _mm512_castsi512_pd(_mm512_slli_epi64::<52>(_mm512_add_epi64(
        n_i64,
        _mm512_set1_epi64(1023),
    )));
    let y = _mm512_mul_pd(e, pow2);
    let over = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(x, _mm512_set1_pd(MAX_X));
    let under = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(x, _mm512_set1_pd(MIN_X));
    let y = _mm512_mask_blend_pd(over, y, _mm512_set1_pd(f64::INFINITY));
    _mm512_mask_blend_pd(under, y, _mm512_setzero_pd())
}
