//! Property tests pinning every SIMD kernel against its scalar reference
//! at the documented contract: `to_bits` equality for the elementwise maps
//! and min/max folds, bounded relative error for the re-associated sums
//! and the vector `exp`.
//!
//! Per-ISA kernels are exercised directly (guarded by [`crate::detected`])
//! so every backend the host supports is tested regardless of which one
//! dispatch selected — no global backend forcing, so these tests cannot
//! race the dispatch tests in `lib.rs`.

use proptest::prelude::*;

fn unzip2(v: Vec<(f64, f64)>) -> (Vec<f64>, Vec<f64>) {
    v.into_iter().unzip()
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    /// The public wrapper honors the bit-exact contract under whatever
    /// backend is currently selected.
    #[test]
    fn dispatch_axpy_bit_exact_any_backend(
        pairs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..70),
        a in -3.0..3.0f64,
    ) {
        let (mut got, xs) = unzip2(pairs);
        let mut want = got.clone();
        crate::axpy_reference(&mut want, a, &xs);
        crate::axpy(&mut got, a, &xs);
        prop_assert!(bits_eq(&got, &want));
    }

    /// The full WA pipeline through the public wrappers stays within the
    /// documented tolerance of the all-reference pipeline under whatever
    /// backend is selected (per-ISA accuracy is pinned in `isa` below).
    #[test]
    fn dispatch_wa_pipeline_close_to_reference(
        coords in prop::collection::vec(-30.0..30.0f64, 2..64),
        gamma in 0.05..5.0f64,
    ) {
        let n = coords.len();
        let (xmin_d, xmax_d) = crate::min_max(&coords);
        let (xmin, xmax) = crate::min_max_reference(&coords);
        prop_assert_eq!(xmin_d.to_bits(), xmin.to_bits());
        prop_assert_eq!(xmax_d.to_bits(), xmax.to_bits());

        let (mut ep, mut em) = (vec![0.0; n], vec![0.0; n]);
        let (s1, s1x, s2, s2x) = crate::wa_exp_sums(&coords, gamma, xmax, xmin, &mut ep, &mut em);
        let (mut rep, mut rem) = (vec![0.0; n], vec![0.0; n]);
        let (r1, r1x, r2, r2x) =
            crate::wa_exp_sums_reference(&coords, gamma, xmax, xmin, &mut rep, &mut rem);

        let value = s1x / s1 - s2x / s2;
        let r_value = r1x / r1 - r2x / r2;
        prop_assert!(
            (value - r_value).abs() <= 1e-9 * (1.0 + r_value.abs()),
            "value {value} vs {r_value}"
        );

        let mut grads = vec![0.0; n];
        crate::wa_grad_finish(&coords, &ep, &em, gamma, s1x / s1, s2x / s2, s1, s2, &mut grads);
        let mut r_grads = vec![0.0; n];
        crate::wa_grad_finish_reference(
            &coords, &rep, &rem, gamma, r1x / r1, r2x / r2, r1, r2, &mut r_grads,
        );
        for (g, w) in grads.iter().zip(&r_grads) {
            prop_assert!((g - w).abs() <= 1e-8, "grad {g} vs {w}");
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod isa {
    use super::{bits_eq, unzip2};
    use crate::{detected, grid, sweep, wa, Backend};
    use proptest::prelude::*;
    use std::arch::x86_64::*;

    fn have_avx2() -> bool {
        detected() >= Backend::Avx2
    }

    fn have_avx512() -> bool {
        detected() >= Backend::Avx512
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp4(x: [f64; 4]) -> [f64; 4] {
        let v = crate::exp::exp_pd_avx2(_mm256_loadu_pd(x.as_ptr()));
        let mut out = [0.0; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), v);
        out
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn exp8(x: [f64; 8]) -> [f64; 8] {
        let v = crate::exp::exp_pd_avx512(_mm512_loadu_pd(x.as_ptr()));
        let mut out = [0.0; 8];
        _mm512_storeu_pd(out.as_mut_ptr(), v);
        out
    }

    #[test]
    fn vector_exp_saturates_extremes_and_nails_zero() {
        if have_avx2() {
            let got = unsafe { exp4([710.0, 1000.0, -746.0, 0.0]) };
            assert_eq!(got[0], f64::INFINITY);
            assert_eq!(got[1], f64::INFINITY);
            assert_eq!(got[2], 0.0);
            assert_eq!(got[3], 1.0);
        }
        if have_avx512() {
            let got = unsafe { exp8([710.0, -746.0, 0.0, 1.0, -1.0, 700.0, -700.0, 0.5]) };
            assert_eq!(got[0], f64::INFINITY);
            assert_eq!(got[1], 0.0);
            assert_eq!(got[2], 1.0);
        }
    }

    proptest! {
        /// Vector `exp` stays within the documented ULP bound of
        /// `f64::exp` over the full finite range.
        #[test]
        fn vector_exp_matches_std(xs in prop::collection::vec(-708.0..709.0f64, 8)) {
            let want: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
            if have_avx2() {
                for c in 0..2 {
                    let mut chunk = [0.0; 4];
                    chunk.copy_from_slice(&xs[4 * c..4 * c + 4]);
                    let got = unsafe { exp4(chunk) };
                    for k in 0..4 {
                        let w = want[4 * c + k];
                        prop_assert!(
                            (got[k] - w).abs() <= 1e-13 * w.abs() + 1e-300,
                            "exp({}) = {} want {}", chunk[k], got[k], w
                        );
                    }
                }
            }
            if have_avx512() {
                let mut chunk = [0.0; 8];
                chunk.copy_from_slice(&xs);
                let got = unsafe { exp8(chunk) };
                for k in 0..8 {
                    let w = want[k];
                    prop_assert!(
                        (got[k] - w).abs() <= 1e-13 * w.abs() + 1e-300,
                        "exp({}) = {} want {}", chunk[k], got[k], w
                    );
                }
            }
        }

        /// The batch exponential stays within the vector polynomial's
        /// documented tolerance of `f64::exp` on every supported ISA, for
        /// every slice length (tails run scalar and are bit-exact).
        #[test]
        fn exp_slice_isa_bounded_ulp(
            xs in prop::collection::vec(-700.0..700.0f64, 0..70),
        ) {
            let mut want = xs.clone();
            wa::exp_slice_reference(&mut want);
            prop_assert!(bits_eq(
                &want,
                &xs.iter().map(|x| x.exp()).collect::<Vec<_>>()
            ));
            if have_avx2() {
                let mut got = xs.clone();
                unsafe { wa::exp_slice_avx2(&mut got) };
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!(
                        (g - w).abs() <= 1e-13 * w.abs() + 1e-300,
                        "avx2 exp {g} vs {w}"
                    );
                }
            }
            if have_avx512() {
                let mut got = xs.clone();
                unsafe { wa::exp_slice_avx512(&mut got) };
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!(
                        (g - w).abs() <= 1e-13 * w.abs() + 1e-300,
                        "avx512 exp {g} vs {w}"
                    );
                }
            }
        }

        #[test]
        fn axpy_isa_bit_exact(
            pairs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..70),
            a in -3.0..3.0f64,
        ) {
            let (base, xs) = unzip2(pairs);
            let mut want = base.clone();
            sweep::axpy_reference(&mut want, a, &xs);
            if have_avx2() {
                let mut got = base.clone();
                unsafe { sweep::axpy_avx2(&mut got, a, &xs) };
                prop_assert!(bits_eq(&got, &want));
            }
            if have_avx512() {
                let mut got = base.clone();
                unsafe { sweep::axpy_avx512(&mut got, a, &xs) };
                prop_assert!(bits_eq(&got, &want));
            }
        }

        #[test]
        fn min_max_and_bbox_isa_bit_exact(
            devs in prop::collection::vec(
                (-100.0..100.0f64, -100.0..100.0f64, 0.1..5.0f64, 0.1..5.0f64),
                0..70,
            ),
        ) {
            let pos_x: Vec<f64> = devs.iter().map(|d| d.0).collect();
            let pos_y: Vec<f64> = devs.iter().map(|d| d.1).collect();
            let hw: Vec<f64> = devs.iter().map(|d| d.2).collect();
            let hh: Vec<f64> = devs.iter().map(|d| d.3).collect();
            let want_mm = sweep::min_max_reference(&pos_x);
            let want_bb = sweep::bbox_reference(&pos_x, &pos_y, &hw, &hh);
            if have_avx2() {
                let mm = unsafe { sweep::min_max_avx2(&pos_x) };
                prop_assert_eq!(mm.0.to_bits(), want_mm.0.to_bits());
                prop_assert_eq!(mm.1.to_bits(), want_mm.1.to_bits());
                let bb = unsafe { sweep::bbox_avx2(&pos_x, &pos_y, &hw, &hh) };
                prop_assert!(bits_eq(
                    &[bb.0, bb.1, bb.2, bb.3],
                    &[want_bb.0, want_bb.1, want_bb.2, want_bb.3]
                ));
            }
            if have_avx512() {
                let mm = unsafe { sweep::min_max_avx512(&pos_x) };
                prop_assert_eq!(mm.0.to_bits(), want_mm.0.to_bits());
                prop_assert_eq!(mm.1.to_bits(), want_mm.1.to_bits());
                let bb = unsafe { sweep::bbox_avx512(&pos_x, &pos_y, &hw, &hh) };
                prop_assert!(bits_eq(
                    &[bb.0, bb.1, bb.2, bb.3],
                    &[want_bb.0, want_bb.1, want_bb.2, want_bb.3]
                ));
            }
        }

        #[test]
        fn pin_coords_isa_bit_exact(
            devs in prop::collection::vec(
                (-50.0..50.0f64, -50.0..50.0f64, prop::bool::ANY, prop::bool::ANY),
                1..16,
            ),
            pins in prop::collection::vec(
                (
                    0..10_000u32,
                    (0.1..4.0f64, 0.1..4.0f64),
                    (-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64),
                ),
                0..50,
            ),
        ) {
            let nd = devs.len() as u32;
            let pos_x: Vec<f64> = devs.iter().map(|d| d.0).collect();
            let pos_y: Vec<f64> = devs.iter().map(|d| d.1).collect();
            let flip_x: Vec<f64> = devs.iter().map(|d| if d.2 { 1.0 } else { 0.0 }).collect();
            let flip_y: Vec<f64> = devs.iter().map(|d| if d.3 { 1.0 } else { 0.0 }).collect();
            let dev: Vec<u32> = pins.iter().map(|&(d, _, _)| d % nd).collect();
            let halfw: Vec<f64> = pins.iter().map(|&(_, (hw, _), _)| hw).collect();
            let halfh: Vec<f64> = pins.iter().map(|&(_, (_, hh), _)| hh).collect();
            let offx: Vec<f64> = pins.iter().map(|&(_, _, (o, _, _, _))| o).collect();
            let offx_flip: Vec<f64> = pins.iter().map(|&(_, _, (_, o, _, _))| o).collect();
            let offy: Vec<f64> = pins.iter().map(|&(_, _, (_, _, o, _))| o).collect();
            let offy_flip: Vec<f64> = pins.iter().map(|&(_, _, (_, _, _, o))| o).collect();
            let pa = sweep::PinArrays {
                dev: &dev,
                halfw: &halfw,
                halfh: &halfh,
                offx: &offx,
                offx_flip: &offx_flip,
                offy: &offy,
                offy_flip: &offy_flip,
            };
            let da = sweep::DeviceArrays {
                pos_x: &pos_x,
                pos_y: &pos_y,
                flip_x: &flip_x,
                flip_y: &flip_y,
            };
            let n = dev.len();
            let (mut wx, mut wy) = (vec![0.0; n], vec![0.0; n]);
            sweep::pin_coords_reference(&pa, &da, &mut wx, &mut wy);
            if have_avx2() {
                let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
                unsafe { sweep::pin_coords_avx2(&pa, &da, &mut gx, &mut gy, 0) };
                prop_assert!(bits_eq(&gx, &wx) && bits_eq(&gy, &wy));
            }
        }

        #[test]
        fn scatter_row_isa_bit_exact(
            row in prop::collection::vec(-10.0..10.0f64, 0..40),
            first_bx in 0..64usize,
            bin_w in 0.1..2.0f64,
            span in (-20.0..20.0f64, 0.1..30.0f64),
            oy in 0.0..2.0f64,
        ) {
            let (x0, width) = span;
            let x1 = x0 + width;
            let bin_area = bin_w * bin_w;
            let mut want = row.clone();
            grid::scatter_row_reference(&mut want, first_bx, bin_w, x0, x1, oy, bin_area);
            if have_avx2() {
                let mut got = row.clone();
                unsafe { grid::scatter_row_avx2(&mut got, first_bx, bin_w, x0, x1, oy, bin_area) };
                prop_assert!(bits_eq(&got, &want));
            }
            if have_avx512() {
                let mut got = row.clone();
                unsafe { grid::scatter_row_avx512(&mut got, first_bx, bin_w, x0, x1, oy, bin_area) };
                prop_assert!(bits_eq(&got, &want));
            }
        }

        #[test]
        fn gather_row_isa_bounded_ulp(
            cells in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 0..40),
            first_bx in 0..64usize,
            bin_w in 0.1..2.0f64,
            span in (-20.0..20.0f64, 0.1..30.0f64),
            oy in 0.0..2.0f64,
        ) {
            let (ex, ey) = unzip2(cells);
            let (x0, width) = span;
            let x1 = x0 + width;
            let bin_area = bin_w * bin_w;
            let (mut wfx, mut wfy) = (0.25, -0.5);
            grid::gather_row_reference(
                &ex, &ey, first_bx, bin_w, x0, x1, oy, bin_area, &mut wfx, &mut wfy,
            );
            let mut scale = 1.0;
            for j in 0..ex.len() {
                let cell_x0 = (first_bx + j) as f64 * bin_w;
                let ox = (x1.min(cell_x0 + bin_w) - x0.max(cell_x0)).max(0.0);
                let q = ox * oy / bin_area;
                scale += (q * ex[j]).abs() + (q * ey[j]).abs();
            }
            if have_avx2() {
                let (mut fx, mut fy) = (0.25, -0.5);
                unsafe {
                    grid::gather_row_avx2(
                        &ex, &ey, first_bx, bin_w, x0, x1, oy, bin_area, &mut fx, &mut fy,
                    )
                };
                prop_assert!((fx - wfx).abs() <= 1e-12 * scale, "{fx} vs {wfx}");
                prop_assert!((fy - wfy).abs() <= 1e-12 * scale, "{fy} vs {wfy}");
            }
            if have_avx512() {
                let (mut fx, mut fy) = (0.25, -0.5);
                unsafe {
                    grid::gather_row_avx512(
                        &ex, &ey, first_bx, bin_w, x0, x1, oy, bin_area, &mut fx, &mut fy,
                    )
                };
                prop_assert!((fx - wfx).abs() <= 1e-12 * scale, "{fx} vs {wfx}");
                prop_assert!((fy - wfy).abs() <= 1e-12 * scale, "{fy} vs {wfy}");
            }
        }

        #[test]
        fn wa_exp_sums_isa_bounded_ulp(
            coords in prop::collection::vec(-30.0..30.0f64, 2..64),
            gamma in 0.05..5.0f64,
        ) {
            let n = coords.len();
            let (xmin, xmax) = sweep::min_max_reference(&coords);
            let (mut wep, mut wem) = (vec![0.0; n], vec![0.0; n]);
            let want = wa::wa_exp_sums_reference(&coords, gamma, xmax, xmin, &mut wep, &mut wem);
            let sx_scale: f64 =
                coords.iter().zip(&wep).map(|(x, e)| (x * e).abs()).sum::<f64>() + 1.0;
            let sm_scale: f64 =
                coords.iter().zip(&wem).map(|(x, e)| (x * e).abs()).sum::<f64>() + 1.0;
            let check = |got: (f64, f64, f64, f64), ep: &[f64], em: &[f64]| {
                for i in 0..n {
                    assert!(
                        (ep[i] - wep[i]).abs() <= 1e-13 * wep[i].abs() + 1e-300,
                        "ep[{i}] {} vs {}", ep[i], wep[i]
                    );
                    assert!(
                        (em[i] - wem[i]).abs() <= 1e-13 * wem[i].abs() + 1e-300,
                        "em[{i}] {} vs {}", em[i], wem[i]
                    );
                }
                assert!((got.0 - want.0).abs() <= 1e-12 * want.0, "s1 {} vs {}", got.0, want.0);
                assert!((got.1 - want.1).abs() <= 1e-12 * sx_scale, "s1x {} vs {}", got.1, want.1);
                assert!((got.2 - want.2).abs() <= 1e-12 * want.2, "s2 {} vs {}", got.2, want.2);
                assert!((got.3 - want.3).abs() <= 1e-12 * sm_scale, "s2x {} vs {}", got.3, want.3);
            };
            if have_avx2() {
                let (mut ep, mut em) = (vec![0.0; n], vec![0.0; n]);
                let got = unsafe { wa::wa_exp_sums_avx2(&coords, gamma, xmax, xmin, &mut ep, &mut em) };
                check(got, &ep, &em);
            }
            if have_avx512() {
                let (mut ep, mut em) = (vec![0.0; n], vec![0.0; n]);
                let got =
                    unsafe { wa::wa_exp_sums_avx512(&coords, gamma, xmax, xmin, &mut ep, &mut em) };
                check(got, &ep, &em);
            }
        }

        #[test]
        fn grad_finish_isa_bit_exact(
            coords in prop::collection::vec(-30.0..30.0f64, 2..64),
            gamma in 0.05..5.0f64,
        ) {
            let n = coords.len();
            let (xmin, xmax) = sweep::min_max_reference(&coords);
            let (mut ep, mut em) = (vec![0.0; n], vec![0.0; n]);
            let (s1, s1x, s2, s2x) =
                wa::wa_exp_sums_reference(&coords, gamma, xmax, xmin, &mut ep, &mut em);
            let (wa_max, wa_min) = (s1x / s1, s2x / s2);
            let mut want = vec![0.0; n];
            wa::wa_grad_finish_reference(
                &coords, &ep, &em, gamma, wa_max, wa_min, s1, s2, &mut want,
            );
            let mut want_lse = vec![0.0; n];
            wa::lse_grad_finish_reference(&ep, &em, s1, s2, &mut want_lse);
            if have_avx2() {
                let mut got = vec![0.0; n];
                unsafe {
                    wa::wa_grad_finish_avx2(
                        &coords, &ep, &em, gamma, wa_max, wa_min, s1, s2, &mut got,
                    )
                };
                prop_assert!(bits_eq(&got, &want));
                let mut got_lse = vec![0.0; n];
                unsafe { wa::lse_grad_finish_avx2(&ep, &em, s1, s2, &mut got_lse) };
                prop_assert!(bits_eq(&got_lse, &want_lse));
            }
            if have_avx512() {
                let mut got = vec![0.0; n];
                unsafe {
                    wa::wa_grad_finish_avx512(
                        &coords, &ep, &em, gamma, wa_max, wa_min, s1, s2, &mut got,
                    )
                };
                prop_assert!(bits_eq(&got, &want));
                let mut got_lse = vec![0.0; n];
                unsafe { wa::lse_grad_finish_avx512(&ep, &em, s1, s2, &mut got_lse) };
                prop_assert!(bits_eq(&got_lse, &want_lse));
            }
        }
    }
}
