//! WA / LSE wirelength-smoothing inner kernels.
//!
//! The smoothing hot loop splits into two passes per net axis: an
//! exponential-sums pass ([`wa_exp_sums`], **bounded-ULP**: lane sums
//! re-associate and the vector `exp` differs from `f64::exp` in the last
//! bits) and a gradient finish ([`wa_grad_finish`] / [`lse_grad_finish`],
//! **bit-exact**: purely elementwise with the reference's op order, given
//! the same stored weights). Storing the weights in `ep`/`em` also halves
//! the exponential count versus the seed, which recomputed them in its
//! gradient pass — under the scalar backend the stored values are
//! bit-identical to that recomputation, so the seed arithmetic is
//! preserved exactly.

use crate::Backend;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Exponential weight sums for one axis of WA smoothing, stabilized around
/// the coordinate extremes: fills `ep[i] = e^{(x_i − xmax)/γ}` and
/// `em[i] = e^{(xmin − x_i)/γ}` and returns
/// `(Σep, Σx·ep, Σem, Σx·em)` accumulated in element order.
///
/// LSE smoothing uses the same kernel and ignores the `Σx·e` terms — the
/// extra FMAs are cheaper than a second kernel, and the `Σe` accumulation
/// sequences are unchanged by the extra accumulators.
///
/// Bounded-ULP under SIMD backends (re-associated lane sums + vector
/// `exp`); the scalar backend is the seed loop op for op.
///
/// # Panics
///
/// Panics on slice length mismatches.
pub fn wa_exp_sums(
    coords: &[f64],
    gamma: f64,
    xmax: f64,
    xmin: f64,
    ep: &mut [f64],
    em: &mut [f64],
) -> (f64, f64, f64, f64) {
    assert!(
        ep.len() == coords.len() && em.len() == coords.len(),
        "wa_exp_sums slice length mismatch"
    );
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { wa_exp_sums_avx512(coords, gamma, xmax, xmin, ep, em) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { wa_exp_sums_avx2(coords, gamma, xmax, xmin, ep, em) },
        _ => wa_exp_sums_reference(coords, gamma, xmax, xmin, ep, em),
    }
}

/// Scalar twin of [`wa_exp_sums`] (the seed accumulation loop, op for op).
pub fn wa_exp_sums_reference(
    coords: &[f64],
    gamma: f64,
    xmax: f64,
    xmin: f64,
    ep: &mut [f64],
    em: &mut [f64],
) -> (f64, f64, f64, f64) {
    let mut s1 = 0.0;
    let mut s1x = 0.0;
    let mut s2 = 0.0;
    let mut s2x = 0.0;
    for (i, &x) in coords.iter().enumerate() {
        let e_p = ((x - xmax) / gamma).exp();
        let e_m = ((xmin - x) / gamma).exp();
        s1 += e_p;
        s1x += x * e_p;
        s2 += e_m;
        s2x += x * e_m;
        ep[i] = e_p;
        em[i] = e_m;
    }
    (s1, s1x, s2, s2x)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn wa_exp_sums_avx2(
    coords: &[f64],
    gamma: f64,
    xmax: f64,
    xmin: f64,
    ep: &mut [f64],
    em: &mut [f64],
) -> (f64, f64, f64, f64) {
    let n = coords.len();
    let vg = _mm256_set1_pd(gamma);
    let vmax = _mm256_set1_pd(xmax);
    let vmin = _mm256_set1_pd(xmin);
    let mut vs1 = _mm256_setzero_pd();
    let mut vs1x = _mm256_setzero_pd();
    let mut vs2 = _mm256_setzero_pd();
    let mut vs2x = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm256_loadu_pd(coords.as_ptr().add(i));
        let e_p = crate::exp::exp_pd_avx2(_mm256_div_pd(_mm256_sub_pd(x, vmax), vg));
        let e_m = crate::exp::exp_pd_avx2(_mm256_div_pd(_mm256_sub_pd(vmin, x), vg));
        _mm256_storeu_pd(ep.as_mut_ptr().add(i), e_p);
        _mm256_storeu_pd(em.as_mut_ptr().add(i), e_m);
        vs1 = _mm256_add_pd(vs1, e_p);
        vs1x = _mm256_fmadd_pd(x, e_p, vs1x);
        vs2 = _mm256_add_pd(vs2, e_m);
        vs2x = _mm256_fmadd_pd(x, e_m, vs2x);
        i += 4;
    }
    let mut s1 = hsum4(vs1);
    let mut s1x = hsum4(vs1x);
    let mut s2 = hsum4(vs2);
    let mut s2x = hsum4(vs2x);
    while i < n {
        let x = coords[i];
        let e_p = ((x - xmax) / gamma).exp();
        let e_m = ((xmin - x) / gamma).exp();
        s1 += e_p;
        s1x += x * e_p;
        s2 += e_m;
        s2x += x * e_m;
        ep[i] = e_p;
        em[i] = e_m;
        i += 1;
    }
    (s1, s1x, s2, s2x)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn wa_exp_sums_avx512(
    coords: &[f64],
    gamma: f64,
    xmax: f64,
    xmin: f64,
    ep: &mut [f64],
    em: &mut [f64],
) -> (f64, f64, f64, f64) {
    let n = coords.len();
    let vg = _mm512_set1_pd(gamma);
    let vmax = _mm512_set1_pd(xmax);
    let vmin = _mm512_set1_pd(xmin);
    let mut vs1 = _mm512_setzero_pd();
    let mut vs1x = _mm512_setzero_pd();
    let mut vs2 = _mm512_setzero_pd();
    let mut vs2x = _mm512_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm512_loadu_pd(coords.as_ptr().add(i));
        let e_p = crate::exp::exp_pd_avx512(_mm512_div_pd(_mm512_sub_pd(x, vmax), vg));
        let e_m = crate::exp::exp_pd_avx512(_mm512_div_pd(_mm512_sub_pd(vmin, x), vg));
        _mm512_storeu_pd(ep.as_mut_ptr().add(i), e_p);
        _mm512_storeu_pd(em.as_mut_ptr().add(i), e_m);
        vs1 = _mm512_add_pd(vs1, e_p);
        vs1x = _mm512_fmadd_pd(x, e_p, vs1x);
        vs2 = _mm512_add_pd(vs2, e_m);
        vs2x = _mm512_fmadd_pd(x, e_m, vs2x);
        i += 8;
    }
    let mut s1 = hsum8(vs1);
    let mut s1x = hsum8(vs1x);
    let mut s2 = hsum8(vs2);
    let mut s2x = hsum8(vs2x);
    while i < n {
        let x = coords[i];
        let e_p = ((x - xmax) / gamma).exp();
        let e_m = ((xmin - x) / gamma).exp();
        s1 += e_p;
        s1x += x * e_p;
        s2 += e_m;
        s2x += x * e_m;
        ep[i] = e_p;
        em[i] = e_m;
        i += 1;
    }
    (s1, s1x, s2, s2x)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum4(v: __m256d) -> f64 {
    let mut l = [0.0f64; 4];
    _mm256_storeu_pd(l.as_mut_ptr(), v);
    ((l[0] + l[1]) + l[2]) + l[3]
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn hsum8(v: __m512d) -> f64 {
    let mut l = [0.0f64; 8];
    _mm512_storeu_pd(l.as_mut_ptr(), v);
    l.iter().skip(1).fold(l[0], |a, &b| a + b)
}

/// WA gradient finish: given the stored weights and their sums,
/// `grads[i] = ep/s1·(1 + (x − wa_max)/γ) − em/s2·(1 − (x − wa_min)/γ)`
/// — the seed's gradient pass, op for op. Elementwise, so **bit-exact**
/// under every backend.
///
/// # Panics
///
/// Panics on slice length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn wa_grad_finish(
    coords: &[f64],
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    wa_max: f64,
    wa_min: f64,
    s1: f64,
    s2: f64,
    grads: &mut [f64],
) {
    let n = coords.len();
    assert!(
        ep.len() == n && em.len() == n && grads.len() == n,
        "wa_grad_finish slice length mismatch"
    );
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe {
            wa_grad_finish_avx512(coords, ep, em, gamma, wa_max, wa_min, s1, s2, grads)
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            wa_grad_finish_avx2(coords, ep, em, gamma, wa_max, wa_min, s1, s2, grads)
        },
        _ => wa_grad_finish_reference(coords, ep, em, gamma, wa_max, wa_min, s1, s2, grads),
    }
}

/// Scalar twin of [`wa_grad_finish`].
#[allow(clippy::too_many_arguments)]
pub fn wa_grad_finish_reference(
    coords: &[f64],
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    wa_max: f64,
    wa_min: f64,
    s1: f64,
    s2: f64,
    grads: &mut [f64],
) {
    for i in 0..coords.len() {
        let x = coords[i];
        let dmax = ep[i] / s1 * (1.0 + (x - wa_max) / gamma);
        let dmin = em[i] / s2 * (1.0 - (x - wa_min) / gamma);
        grads[i] = dmax - dmin;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn wa_grad_finish_avx2(
    coords: &[f64],
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    wa_max: f64,
    wa_min: f64,
    s1: f64,
    s2: f64,
    grads: &mut [f64],
) {
    let n = coords.len();
    let vg = _mm256_set1_pd(gamma);
    let vwmax = _mm256_set1_pd(wa_max);
    let vwmin = _mm256_set1_pd(wa_min);
    let vs1 = _mm256_set1_pd(s1);
    let vs2 = _mm256_set1_pd(s2);
    let one = _mm256_set1_pd(1.0);
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm256_loadu_pd(coords.as_ptr().add(i));
        let e_p = _mm256_loadu_pd(ep.as_ptr().add(i));
        let e_m = _mm256_loadu_pd(em.as_ptr().add(i));
        // Same op order as the reference — mul/div/add only, no FMA.
        let tmax = _mm256_add_pd(one, _mm256_div_pd(_mm256_sub_pd(x, vwmax), vg));
        let tmin = _mm256_sub_pd(one, _mm256_div_pd(_mm256_sub_pd(x, vwmin), vg));
        let dmax = _mm256_mul_pd(_mm256_div_pd(e_p, vs1), tmax);
        let dmin = _mm256_mul_pd(_mm256_div_pd(e_m, vs2), tmin);
        _mm256_storeu_pd(grads.as_mut_ptr().add(i), _mm256_sub_pd(dmax, dmin));
        i += 4;
    }
    while i < n {
        let x = coords[i];
        let dmax = ep[i] / s1 * (1.0 + (x - wa_max) / gamma);
        let dmin = em[i] / s2 * (1.0 - (x - wa_min) / gamma);
        grads[i] = dmax - dmin;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn wa_grad_finish_avx512(
    coords: &[f64],
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    wa_max: f64,
    wa_min: f64,
    s1: f64,
    s2: f64,
    grads: &mut [f64],
) {
    let n = coords.len();
    let vg = _mm512_set1_pd(gamma);
    let vwmax = _mm512_set1_pd(wa_max);
    let vwmin = _mm512_set1_pd(wa_min);
    let vs1 = _mm512_set1_pd(s1);
    let vs2 = _mm512_set1_pd(s2);
    let one = _mm512_set1_pd(1.0);
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm512_loadu_pd(coords.as_ptr().add(i));
        let e_p = _mm512_loadu_pd(ep.as_ptr().add(i));
        let e_m = _mm512_loadu_pd(em.as_ptr().add(i));
        let tmax = _mm512_add_pd(one, _mm512_div_pd(_mm512_sub_pd(x, vwmax), vg));
        let tmin = _mm512_sub_pd(one, _mm512_div_pd(_mm512_sub_pd(x, vwmin), vg));
        let dmax = _mm512_mul_pd(_mm512_div_pd(e_p, vs1), tmax);
        let dmin = _mm512_mul_pd(_mm512_div_pd(e_m, vs2), tmin);
        _mm512_storeu_pd(grads.as_mut_ptr().add(i), _mm512_sub_pd(dmax, dmin));
        i += 8;
    }
    while i < n {
        let x = coords[i];
        let dmax = ep[i] / s1 * (1.0 + (x - wa_max) / gamma);
        let dmin = em[i] / s2 * (1.0 - (x - wa_min) / gamma);
        grads[i] = dmax - dmin;
        i += 1;
    }
}

/// In-place elementwise exponential over a flat argument array:
/// `xs[i] ← e^{xs[i]}`.
///
/// This is the batch form of the smoothing exponentials: the WA/LSE
/// gradient gathers every net's stabilized arguments for a whole net block
/// into one flat array and exponentiates them in a single sweep, so the
/// vector lanes stay full even though analog nets average only a handful
/// of pins each. **Bounded-ULP** under SIMD backends (the ≤ 2-ULP vector
/// polynomial in [`crate::exp`], scalar `f64::exp` on the tail); the
/// scalar backend applies `f64::exp` per element in index order, which is
/// bit-identical to the seed's per-coordinate exponentials.
pub fn exp_slice(xs: &mut [f64]) {
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { exp_slice_avx512(xs) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { exp_slice_avx2(xs) },
        _ => exp_slice_reference(xs),
    }
}

/// Scalar twin of [`exp_slice`]: `f64::exp` per element in index order.
pub fn exp_slice_reference(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = x.exp();
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn exp_slice_avx2(xs: &mut [f64]) {
    let n = xs.len();
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_pd(xs.as_ptr().add(i));
        _mm256_storeu_pd(xs.as_mut_ptr().add(i), crate::exp::exp_pd_avx2(v));
        i += 4;
    }
    while i < n {
        xs[i] = xs[i].exp();
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn exp_slice_avx512(xs: &mut [f64]) {
    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm512_loadu_pd(xs.as_ptr().add(i));
        _mm512_storeu_pd(xs.as_mut_ptr().add(i), crate::exp::exp_pd_avx512(v));
        i += 8;
    }
    while i < n {
        xs[i] = xs[i].exp();
        i += 1;
    }
}

/// LSE gradient finish: `grads[i] = ep[i]/s_max − em[i]/s_min` — the
/// seed's LSE gradient pass given stored weights. Elementwise, so
/// **bit-exact** under every backend.
///
/// # Panics
///
/// Panics on slice length mismatches.
pub fn lse_grad_finish(ep: &[f64], em: &[f64], s_max: f64, s_min: f64, grads: &mut [f64]) {
    let n = ep.len();
    assert!(
        em.len() == n && grads.len() == n,
        "lse_grad_finish slice length mismatch"
    );
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { lse_grad_finish_avx512(ep, em, s_max, s_min, grads) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { lse_grad_finish_avx2(ep, em, s_max, s_min, grads) },
        _ => lse_grad_finish_reference(ep, em, s_max, s_min, grads),
    }
}

/// Scalar twin of [`lse_grad_finish`].
pub fn lse_grad_finish_reference(
    ep: &[f64],
    em: &[f64],
    s_max: f64,
    s_min: f64,
    grads: &mut [f64],
) {
    for i in 0..ep.len() {
        let p_max = ep[i] / s_max;
        let p_min = em[i] / s_min;
        grads[i] = p_max - p_min;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn lse_grad_finish_avx2(
    ep: &[f64],
    em: &[f64],
    s_max: f64,
    s_min: f64,
    grads: &mut [f64],
) {
    let n = ep.len();
    let vsmax = _mm256_set1_pd(s_max);
    let vsmin = _mm256_set1_pd(s_min);
    let mut i = 0;
    while i + 4 <= n {
        let p_max = _mm256_div_pd(_mm256_loadu_pd(ep.as_ptr().add(i)), vsmax);
        let p_min = _mm256_div_pd(_mm256_loadu_pd(em.as_ptr().add(i)), vsmin);
        _mm256_storeu_pd(grads.as_mut_ptr().add(i), _mm256_sub_pd(p_max, p_min));
        i += 4;
    }
    while i < n {
        grads[i] = ep[i] / s_max - em[i] / s_min;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn lse_grad_finish_avx512(
    ep: &[f64],
    em: &[f64],
    s_max: f64,
    s_min: f64,
    grads: &mut [f64],
) {
    let n = ep.len();
    let vsmax = _mm512_set1_pd(s_max);
    let vsmin = _mm512_set1_pd(s_min);
    let mut i = 0;
    while i + 8 <= n {
        let p_max = _mm512_div_pd(_mm512_loadu_pd(ep.as_ptr().add(i)), vsmax);
        let p_min = _mm512_div_pd(_mm512_loadu_pd(em.as_ptr().add(i)), vsmin);
        _mm512_storeu_pd(grads.as_mut_ptr().add(i), _mm512_sub_pd(p_max, p_min));
        i += 8;
    }
    while i < n {
        grads[i] = ep[i] / s_max - em[i] / s_min;
        i += 1;
    }
}
