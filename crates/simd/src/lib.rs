//! Runtime-dispatched SIMD kernels for the placement hot paths.
//!
//! `BENCH_hotpaths.json` showed the flat hot paths — the WA/LSE wirelength
//! gradient, the density scatter/gather, CSR SpMM row accumulation, and the
//! SA cost sweep — stuck near 1.0×: thread-level parallelism stopped paying
//! there, so the remaining headroom is data-level. This crate provides a
//! small set of explicit-width f64 kernels behind **one-time runtime CPU
//! dispatch**:
//!
//! - **AVX-512F** (8 lanes) when the host supports it,
//! - **AVX2 + FMA** (4 lanes) otherwise,
//! - **scalar** as the universal fallback *and* the bit-exactness
//!   reference.
//!
//! The backend is picked once per process (first kernel call) from
//! [`std::arch::is_x86_feature_detected!`] and can be overridden with the
//! `PLACER_SIMD=scalar|avx2|avx512` environment variable (clamped to what
//! the host actually supports) or programmatically with [`force`] for
//! benchmarks and tests.
//!
//! # Determinism contract, per kernel
//!
//! Every kernel documents one of two numeric contracts against its scalar
//! reference (`*_reference` twins, which replicate the seed arithmetic of
//! the call sites operation for operation):
//!
//! - **bit-exact**: the SIMD variant performs the same floating-point
//!   operations per element in an order whose result provably cannot
//!   differ — purely elementwise maps ([`axpy`], [`wa_grad_finish`],
//!   [`lse_grad_finish`], [`scatter_row`], [`pin_coords`]) and min/max
//!   reductions ([`min_max`], [`bbox`]), which are associative and
//!   commutative for non-NaN inputs, so any lane decomposition folds to
//!   the identical value.
//! - **bounded-ULP**: the SIMD variant re-associates a floating-point
//!   *sum* across lanes ([`wa_exp_sums`], [`gather_row`]) and/or evaluates
//!   `exp` with the vector polynomial in [`exp`] (≤ 2 ULP of
//!   `f64::exp`; [`exp_slice`] is its batch form over a flat argument
//!   array). Results differ from scalar in the last bits; the property
//!   tests in this crate document and pin the tolerance.
//!
//! Within one process the selected backend never changes, so every kernel
//! is deterministic: bit-identity contracts that quantify over *runs*
//! (checkpoint/resume identity, `anneal ≡ anneal_reference`, traced ≡
//! untraced) hold under every backend. Contracts that quantify over
//! *machines* are pinned against the forced-scalar backend, which is
//! bit-identical to the pre-SIMD seed paths.
//!
//! Inputs must be NaN-free: IEEE min/max lose associativity on NaN (and
//! differ between `f64::min` and `vminpd` there), so the bit-exact
//! guarantee of the reductions excludes NaN. Placement coordinates,
//! densities and weights are finite by construction in every caller.
//!
//! # Adding a kernel
//!
//! 1. Write the scalar reference replicating the call site's exact
//!    arithmetic (op order included) and name it `*_reference`.
//! 2. Write `unsafe fn *_avx2` / `*_avx512` under
//!    `#[target_feature(enable = …)]`, choosing lane decompositions that
//!    keep the contract you can afford (elementwise / min-max → bit-exact;
//!    re-associated sums → bounded-ULP, documented).
//! 3. Dispatch in the public wrapper via [`selected`], falling through to
//!    the reference.
//! 4. Add a proptest pinning SIMD against the reference at the documented
//!    tolerance, and extend `tests/zero_alloc.rs` — kernels never allocate.

#![warn(missing_docs)]

mod exp;
mod grid;
mod sweep;
mod wa;

pub use grid::{gather_row, gather_row_reference, scatter_row, scatter_row_reference};
pub use sweep::{
    axpy, axpy_reference, bbox, bbox_reference, min_max, min_max_reference, pin_coords,
    pin_coords_reference, DeviceArrays, PinArrays,
};
pub use wa::{
    exp_slice, exp_slice_reference, lse_grad_finish, lse_grad_finish_reference, wa_exp_sums,
    wa_exp_sums_reference, wa_grad_finish, wa_grad_finish_reference,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set backend a kernel call runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Portable scalar Rust — the bit-exactness reference.
    Scalar,
    /// 4-lane f64 via AVX2 + FMA.
    Avx2,
    /// 8-lane f64 via AVX-512F.
    Avx512,
}

impl Backend {
    /// Stable lowercase name (`scalar` / `avx2` / `avx512`), as accepted by
    /// the `PLACER_SIMD` environment variable and recorded in run
    /// manifests and bench fingerprints.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Parses a `PLACER_SIMD` value. Unknown strings are `None`.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "avx512" => Some(Backend::Avx512),
            _ => None,
        }
    }
}

/// The best backend this host supports, ignoring every override.
pub fn detected() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // Avx512 implies the Avx2 kernels stay usable (gather-heavy
            // kernels run 4-wide under either backend).
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Backend::Avx512;
            }
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// Atomic encoding of the selected backend: 0 = not yet resolved,
/// otherwise `Backend as u8 + 1`.
static SELECTED: AtomicU8 = AtomicU8::new(0);

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2),
        3 => Some(Backend::Avx512),
        _ => None,
    }
}

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Avx512 => 3,
    }
}

/// The backend every kernel in this crate dispatches to.
///
/// Resolved once per process: the `PLACER_SIMD` environment variable if
/// set (clamped to [`detected`] with a one-time stderr warning when the
/// host cannot honor the request), otherwise [`detected`]. [`force`]
/// overrides both until cleared.
pub fn selected() -> Backend {
    if let Some(b) = decode(SELECTED.load(Ordering::Relaxed)) {
        return b;
    }
    let b = resolve();
    // Racing first calls resolve identically (env + cpuid are stable), so
    // a plain store is fine.
    SELECTED.store(encode(b), Ordering::Relaxed);
    b
}

fn resolve() -> Backend {
    let best = detected();
    match std::env::var("PLACER_SIMD") {
        Ok(v) => match Backend::parse(&v) {
            Some(req) if req <= best => req,
            Some(req) => {
                eprintln!(
                    "placer-simd: PLACER_SIMD={} not supported on this host, using {}",
                    req.name(),
                    best.name()
                );
                best
            }
            None => {
                eprintln!(
                    "placer-simd: unknown PLACER_SIMD value {v:?} (want scalar|avx2|avx512), \
                     using {}",
                    best.name()
                );
                best
            }
        },
        Err(_) => best,
    }
}

/// Forces the backend for this process (benchmarks measuring per-ISA
/// lanes, tests pinning SIMD against scalar). `None` re-resolves from the
/// environment on the next [`selected`] call. Requests above [`detected`]
/// are clamped. Returns the backend now in effect (or `None` when
/// cleared).
pub fn force(backend: Option<Backend>) -> Option<Backend> {
    match backend {
        Some(b) => {
            let eff = b.min(detected());
            SELECTED.store(encode(eff), Ordering::Relaxed);
            Some(eff)
        }
        None => {
            SELECTED.store(0, Ordering::Relaxed);
            None
        }
    }
}

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("AVX2"), Some(Backend::Avx2));
        assert_eq!(Backend::parse("neon"), None);
    }

    #[test]
    fn force_clamps_to_detected_and_clears() {
        let prev = selected();
        let eff = force(Some(Backend::Avx512)).expect("forced");
        assert!(eff <= detected());
        assert_eq!(selected(), eff);
        assert_eq!(force(Some(Backend::Scalar)), Some(Backend::Scalar));
        assert_eq!(selected(), Backend::Scalar);
        force(None);
        assert_eq!(selected(), prev.max(selected().min(detected())));
        // After clearing, selection falls back to env/detection.
        assert!(selected() <= detected());
    }
}
