//! Density-grid row kernels: area-proportional scatter and field gather.
//!
//! The density engine rasterizes each device rectangle one grid row at a
//! time (rows are contiguous in the row-major grid). [`scatter_row`] adds
//! the per-cell overlap charge into a row slice — purely elementwise, so
//! **bit-exact** under every backend. [`gather_row`] folds the
//! charge-weighted field along a row into running force accumulators —
//! the SIMD variants re-associate the sum across lanes, so the kernel is
//! **bounded-ULP**; the scalar backend keeps the seed's sequential
//! accumulation chain (the accumulators thread *across* rows, which is
//! why they are `&mut` parameters rather than a return value).

use crate::Backend;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Adds one device's overlap charge to a grid row:
/// `row[j] += ox·oy/bin_area` with
/// `ox = (x1.min(cell + bin_w) − x0.max(cell)).max(0)` and
/// `cell = (first_bx + j)·bin_w` — the seed `scatter_one` inner loop, op
/// for op. Elementwise, so **bit-exact** under every backend.
#[allow(clippy::too_many_arguments)]
pub fn scatter_row(
    row: &mut [f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
) {
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe {
            scatter_row_avx512(row, first_bx, bin_w, x0, x1, oy, bin_area)
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { scatter_row_avx2(row, first_bx, bin_w, x0, x1, oy, bin_area) },
        _ => scatter_row_reference(row, first_bx, bin_w, x0, x1, oy, bin_area),
    }
}

/// Scalar twin of [`scatter_row`].
#[allow(clippy::too_many_arguments)]
pub fn scatter_row_reference(
    row: &mut [f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
) {
    for (j, cell) in row.iter_mut().enumerate() {
        let cell_x0 = (first_bx + j) as f64 * bin_w;
        let ox = (x1.min(cell_x0 + bin_w) - x0.max(cell_x0)).max(0.0);
        *cell += ox * oy / bin_area;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn scatter_row_avx2(
    row: &mut [f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
) {
    let n = row.len();
    let vw = _mm256_set1_pd(bin_w);
    let vx0 = _mm256_set1_pd(x0);
    let vx1 = _mm256_set1_pd(x1);
    let voy = _mm256_set1_pd(oy);
    let vba = _mm256_set1_pd(bin_area);
    let vzero = _mm256_setzero_pd();
    let lane = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        // (first_bx + i + lane) is an exact integer in f64 (bin counts are
        // far below 2^52), so this matches the scalar `as f64` conversion.
        let j = _mm256_add_pd(_mm256_set1_pd((first_bx + i) as f64), lane);
        let cell = _mm256_mul_pd(j, vw);
        let hi = _mm256_min_pd(vx1, _mm256_add_pd(cell, vw));
        let lo = _mm256_max_pd(vx0, cell);
        let ox = _mm256_max_pd(_mm256_sub_pd(hi, lo), vzero);
        let q = _mm256_div_pd(_mm256_mul_pd(ox, voy), vba);
        let r = _mm256_loadu_pd(row.as_ptr().add(i));
        _mm256_storeu_pd(row.as_mut_ptr().add(i), _mm256_add_pd(r, q));
        i += 4;
    }
    scatter_row_reference(&mut row[i..], first_bx + i, bin_w, x0, x1, oy, bin_area);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn scatter_row_avx512(
    row: &mut [f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
) {
    let n = row.len();
    let vw = _mm512_set1_pd(bin_w);
    let vx0 = _mm512_set1_pd(x0);
    let vx1 = _mm512_set1_pd(x1);
    let voy = _mm512_set1_pd(oy);
    let vba = _mm512_set1_pd(bin_area);
    let vzero = _mm512_setzero_pd();
    let lane = _mm512_set_pd(7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0);
    let mut i = 0;
    while i + 8 <= n {
        let j = _mm512_add_pd(_mm512_set1_pd((first_bx + i) as f64), lane);
        let cell = _mm512_mul_pd(j, vw);
        let hi = _mm512_min_pd(vx1, _mm512_add_pd(cell, vw));
        let lo = _mm512_max_pd(vx0, cell);
        let ox = _mm512_max_pd(_mm512_sub_pd(hi, lo), vzero);
        let q = _mm512_div_pd(_mm512_mul_pd(ox, voy), vba);
        let r = _mm512_loadu_pd(row.as_ptr().add(i));
        _mm512_storeu_pd(row.as_mut_ptr().add(i), _mm512_add_pd(r, q));
        i += 8;
    }
    scatter_row_reference(&mut row[i..], first_bx + i, bin_w, x0, x1, oy, bin_area);
}

/// Accumulates one device's charge-weighted field force along a grid row:
/// `fx += q·ex[j]`, `fy += q·ey[j]` with the same overlap charge `q` as
/// [`scatter_row`]. **Bounded-ULP** under SIMD backends (lane sums
/// re-associate); the scalar backend keeps the seed `gather_one` chain op
/// for op.
///
/// # Panics
///
/// Panics if the field rows differ in length.
#[allow(clippy::too_many_arguments)]
pub fn gather_row(
    ex_row: &[f64],
    ey_row: &[f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
    fx: &mut f64,
    fy: &mut f64,
) {
    assert_eq!(
        ex_row.len(),
        ey_row.len(),
        "gather_row field-row length mismatch"
    );
    match crate::selected() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe {
            gather_row_avx512(
                ex_row, ey_row, first_bx, bin_w, x0, x1, oy, bin_area, fx, fy,
            )
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            gather_row_avx2(
                ex_row, ey_row, first_bx, bin_w, x0, x1, oy, bin_area, fx, fy,
            )
        },
        _ => gather_row_reference(
            ex_row, ey_row, first_bx, bin_w, x0, x1, oy, bin_area, fx, fy,
        ),
    }
}

/// Scalar twin of [`gather_row`].
#[allow(clippy::too_many_arguments)]
pub fn gather_row_reference(
    ex_row: &[f64],
    ey_row: &[f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
    fx: &mut f64,
    fy: &mut f64,
) {
    for j in 0..ex_row.len() {
        let cell_x0 = (first_bx + j) as f64 * bin_w;
        let ox = (x1.min(cell_x0 + bin_w) - x0.max(cell_x0)).max(0.0);
        let q = ox * oy / bin_area;
        *fx += q * ex_row[j];
        *fy += q * ey_row[j];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gather_row_avx2(
    ex_row: &[f64],
    ey_row: &[f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
    fx: &mut f64,
    fy: &mut f64,
) {
    let n = ex_row.len();
    let vw = _mm256_set1_pd(bin_w);
    let vx0 = _mm256_set1_pd(x0);
    let vx1 = _mm256_set1_pd(x1);
    let voy = _mm256_set1_pd(oy);
    let vba = _mm256_set1_pd(bin_area);
    let vzero = _mm256_setzero_pd();
    let lane = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    let mut vfx = _mm256_setzero_pd();
    let mut vfy = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let j = _mm256_add_pd(_mm256_set1_pd((first_bx + i) as f64), lane);
        let cell = _mm256_mul_pd(j, vw);
        let hi = _mm256_min_pd(vx1, _mm256_add_pd(cell, vw));
        let lo = _mm256_max_pd(vx0, cell);
        let ox = _mm256_max_pd(_mm256_sub_pd(hi, lo), vzero);
        let q = _mm256_div_pd(_mm256_mul_pd(ox, voy), vba);
        vfx = _mm256_fmadd_pd(q, _mm256_loadu_pd(ex_row.as_ptr().add(i)), vfx);
        vfy = _mm256_fmadd_pd(q, _mm256_loadu_pd(ey_row.as_ptr().add(i)), vfy);
        i += 4;
    }
    let mut l = [0.0f64; 4];
    _mm256_storeu_pd(l.as_mut_ptr(), vfx);
    *fx += ((l[0] + l[1]) + l[2]) + l[3];
    _mm256_storeu_pd(l.as_mut_ptr(), vfy);
    *fy += ((l[0] + l[1]) + l[2]) + l[3];
    gather_row_reference(
        &ex_row[i..],
        &ey_row[i..],
        first_bx + i,
        bin_w,
        x0,
        x1,
        oy,
        bin_area,
        fx,
        fy,
    );
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gather_row_avx512(
    ex_row: &[f64],
    ey_row: &[f64],
    first_bx: usize,
    bin_w: f64,
    x0: f64,
    x1: f64,
    oy: f64,
    bin_area: f64,
    fx: &mut f64,
    fy: &mut f64,
) {
    let n = ex_row.len();
    let vw = _mm512_set1_pd(bin_w);
    let vx0 = _mm512_set1_pd(x0);
    let vx1 = _mm512_set1_pd(x1);
    let voy = _mm512_set1_pd(oy);
    let vba = _mm512_set1_pd(bin_area);
    let vzero = _mm512_setzero_pd();
    let lane = _mm512_set_pd(7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0);
    let mut vfx = _mm512_setzero_pd();
    let mut vfy = _mm512_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let j = _mm512_add_pd(_mm512_set1_pd((first_bx + i) as f64), lane);
        let cell = _mm512_mul_pd(j, vw);
        let hi = _mm512_min_pd(vx1, _mm512_add_pd(cell, vw));
        let lo = _mm512_max_pd(vx0, cell);
        let ox = _mm512_max_pd(_mm512_sub_pd(hi, lo), vzero);
        let q = _mm512_div_pd(_mm512_mul_pd(ox, voy), vba);
        vfx = _mm512_fmadd_pd(q, _mm512_loadu_pd(ex_row.as_ptr().add(i)), vfx);
        vfy = _mm512_fmadd_pd(q, _mm512_loadu_pd(ey_row.as_ptr().add(i)), vfy);
        i += 8;
    }
    let mut l = [0.0f64; 8];
    _mm512_storeu_pd(l.as_mut_ptr(), vfx);
    *fx += l.iter().skip(1).fold(l[0], |a, &b| a + b);
    _mm512_storeu_pd(l.as_mut_ptr(), vfy);
    *fy += l.iter().skip(1).fold(l[0], |a, &b| a + b);
    gather_row_reference(
        &ex_row[i..],
        &ey_row[i..],
        first_bx + i,
        bin_w,
        x0,
        x1,
        oy,
        bin_area,
        fx,
        fy,
    );
}
