//! Verifies the ePlace-AP performance-gradient hook's zero-allocation
//! contract with a counting global allocator: after [`PerfGradHook`]
//! construction, every Nesterov-iteration callback — feature refresh, CSR
//! forward, input-gradient backward, α-scaled accumulation — never
//! touches the heap.
//!
//! This file must hold exactly one test: other tests running concurrently
//! in the same binary would bump the counters and produce false failures.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use analog_netlist::testcases;
use eplace::PerfGradHook;
use placer_gnn::Network;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a side
// effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn perf_grad_hook_allocates_nothing_per_eval() {
    placer_parallel::set_max_threads(1);

    let circuit = testcases::vco1();
    let n = circuit.num_devices();
    let network = Network::default_config(3);
    let mut hook = PerfGradHook::new(&circuit, &network, 0.5, 20.0);

    let mut pts: Vec<(f64, f64)> = (0..n)
        .map(|i| (4.0 + 1.3 * i as f64, 3.0 + 0.7 * (i % 4) as f64))
        .collect();
    let mut grad = vec![0.0f64; 2 * n];

    // Warm-up: first call runs the one-time α normalisation.
    let mut sink = hook.eval(&pts, &mut grad);

    // The libtest harness's main thread occasionally allocates while this
    // test thread runs, so measure several windows and require one to be
    // perfectly clean: a real per-call allocation would taint every window
    // with ≥200 counts, while harness noise is transient.
    let mut cleanest = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..200 {
            for p in pts.iter_mut() {
                p.0 += 0.05;
                p.1 -= 0.025;
            }
            grad.iter_mut().for_each(|g| *g = 0.0);
            sink += hook.eval(&pts, &mut grad);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }

    placer_parallel::set_max_threads(0);
    assert_eq!(
        cleanest, 0,
        "PerfGradHook::eval allocated {cleanest} times in its cleanest 200-call window"
    );
    // Sanity: the hook produced a real Φ term and a nonzero gradient.
    assert!(sink.is_finite() && sink > 0.0);
    assert!(grad.iter().any(|&g| g != 0.0));
}
