//! Property tests for the incremental ECO artifact patch:
//! [`CircuitArtifacts::patched`] must be indistinguishable from a cold
//! [`CircuitArtifacts::build`] of the edited circuit — bit-for-bit, for
//! arbitrary sequences of delta operations chained patch-on-patch.

use analog_netlist::{testcases, Circuit, NetlistDelta};
use eplace::{circuit_content_hash, eco, CircuitArtifacts};
use proptest::prelude::*;

/// One randomly-parameterized deck line against the current circuit.
///
/// `op` selects the directive, `a`/`b` pick devices/nets by index and `v`
/// scales values — all taken modulo the live circuit so every generated
/// deck applies cleanly. `added` tracks delta-created caps so `remove`
/// only ever targets one of them (removing original devices can strand a
/// symmetry partner, which is a constraint-validity question, not an
/// artifact-patching one).
fn deck_line(
    circuit: &Circuit,
    added: &mut Vec<String>,
    op: usize,
    a: usize,
    b: usize,
    v: usize,
) -> String {
    let devices = circuit.devices();
    let nets = circuit.nets();
    let dev = |i: usize| devices[i % devices.len()].name.clone();
    let routable: Vec<&str> = nets
        .iter()
        .filter(|n| n.is_routable())
        .map(|n| n.name.as_str())
        .collect();
    let net = |i: usize| routable[i % routable.len()].to_string();
    match op {
        // Resize exercises the feature-patch path (topology rows).
        0 => format!("resize {} {}\n", dev(a), 1.0 + (v % 7) as f64 * 0.5),
        // Add exercises membership splicing without id shifts.
        1 => {
            let name = format!("CK{}", added.len());
            let line = format!("add {name} cap 10f {} {}\n", net(a), net(b));
            added.push(name);
            line
        }
        // Remove (of a delta-added device) exercises the full-rebuild path.
        2 => match added.pop() {
            Some(name) => format!("remove {name}\n"),
            None => format!("weight {} 2.5\n", net(a)),
        },
        3 => format!("weight {} {}\n", net(a), 0.5 + (v % 5) as f64),
        // Criticality flips dirty the static feature columns.
        4 => format!(
            "critical {} {}\n",
            net(a),
            if v.is_multiple_of(2) { "on" } else { "off" }
        ),
        _ => format!("unconstrain {}\n", dev(a)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The patch contract: after every step of a random delta sequence —
    /// applied patch-on-patch, never from scratch — the patched bundle's
    /// content hash, device→net CSR index and GNN topology (adjacency,
    /// CSR plan, static features) are bit-identical to a cold build of
    /// the same edited circuit.
    #[test]
    fn patched_artifacts_match_cold_builds_over_delta_sequences(
        ops in proptest::collection::vec((0usize..6, 0usize..64, 0usize..64, 0usize..16), 1..6),
    ) {
        let mut artifacts = CircuitArtifacts::build(testcases::cc_ota());
        let mut added = Vec::new();
        for (op, a, b, v) in ops {
            let deck = deck_line(artifacts.circuit(), &mut added, op, a, b, v);
            let delta = NetlistDelta::parse(&deck).expect("generated decks parse");
            let (patched, _applied) = eco::prepare(&artifacts, &delta).expect("generated decks apply");
            let cold = CircuitArtifacts::build(patched.circuit().clone());

            prop_assert_eq!(
                patched.content_hash(),
                cold.content_hash(),
                "content hash diverged after `{}`", deck.trim()
            );
            prop_assert_eq!(
                patched.content_hash(),
                circuit_content_hash(patched.circuit()),
                "patched hash must be the edited circuit's hash"
            );
            prop_assert_eq!(
                &*patched.device_nets(),
                &*cold.device_nets(),
                "device->net index diverged after `{}`", deck.trim()
            );
            prop_assert_eq!(
                &*patched.topology(),
                &*cold.topology(),
                "GNN topology diverged after `{}`", deck.trim()
            );
            // Chain: the next edit patches the already-patched bundle.
            artifacts = patched;
        }
    }
}
