//! Integrated legalization + detailed placement via ILP (Eq. 4a–4j).
//!
//! The paper's formulation minimizes HPWL plus a μ-weighted area surrogate
//! subject to net bounding boxes (4b), chip bounds (4c), pin positions with
//! binary device flipping (4d), pairwise separations for GP-overlapping
//! pairs (4e), hard symmetry (4f), alignment (4g/4h), ordering (4i), and
//! integrality on a placement grid (4j).
//!
//! Implementation notes (documented in DESIGN.md):
//!
//! - The model is **axis-separable**: the objective 4a splits into
//!   `Σ(x̄−x̲) + (μH̃/2)·W` plus the y mirror, and every constraint touches
//!   one axis only. We therefore solve two independent ILPs, which keeps
//!   branch-and-bound sizes small (the paper's tractability argument).
//! - Coordinates are integers on a configurable grid; device half-extents
//!   are rounded **up** to grid units so integral solutions are always
//!   physically legal.
//! - Separation directions are derived by [`SeparationPlanner`], which keeps
//!   them consistent with the symmetry/alignment equalities and ordering
//!   chains (a raw GP-inherited direction can contradict them transitively).
//! - Because only GP-overlapping pairs are separated, the ILP can introduce
//!   *new* overlaps; a cutting-plane loop re-solves with separations for any
//!   residual overlap until the layout is overlap-free.

use analog_netlist::{AlignKind, Axis, Circuit, Placement};
use placer_mathopt::{ConstraintOp, Model, SolveError, VarId};

use crate::sepplan::{SepEdge, SeparationPlanner};
use crate::{DetailedConfig, PlaceError};

/// Statistics of a detailed placement run.
#[derive(Debug, Clone)]
pub struct DetailedStats {
    /// Cutting-plane rounds used (1 = no residual overlap after first solve).
    pub rounds: usize,
    /// Exact HPWL of the result (µm).
    pub hpwl: f64,
    /// Bounding-box area of the result (µm²).
    pub area: f64,
}

/// Which axis an axis-ILP solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SolveAxis {
    X,
    Y,
}

/// The ePlace-A detailed placer.
#[derive(Debug, Clone)]
pub struct DetailedPlacer {
    config: DetailedConfig,
}

impl DetailedPlacer {
    /// Creates a detailed placer.
    pub fn new(config: DetailedConfig) -> Self {
        Self { config }
    }

    /// Legalizes and refines a global placement.
    ///
    /// After the first legal solution, the separation plan is re-derived
    /// from that (compact) geometry and the ILP re-solved — GP-inherited
    /// axis assignments are often improvable once a legal packing exists.
    /// The better of the two results (by area·HPWL) is returned.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] if the ILP is infeasible/stalls, or
    /// overlaps survive refinement.
    pub fn run(
        &self,
        circuit: &Circuit,
        global: &Placement,
    ) -> Result<(Placement, DetailedStats), PlaceError> {
        let mut best = self.run_once(circuit, global)?;
        // Reassignment passes: shrink the best legal result halfway toward
        // its centroid (reintroducing overlaps while keeping the compact
        // relative geometry), re-derive the separation plan from that, and
        // re-solve. Iterate while it keeps paying off.
        for _ in 0..3 {
            let mut shrunk = best.0.clone();
            if let Some((x0, y0, x1, y1)) = shrunk.bounding_box(circuit) {
                let (cx, cy) = ((x0 + x1) / 2.0, (y0 + y1) / 2.0);
                for p in &mut shrunk.positions {
                    p.0 = cx + 0.5 * (p.0 - cx);
                    p.1 = cy + 0.5 * (p.1 - cy);
                }
            }
            match self.run_once(circuit, &shrunk) {
                Ok(next) if next.1.area * next.1.hpwl < best.1.area * best.1.hpwl * 0.999 => {
                    best = next;
                }
                _ => break,
            }
        }
        Ok(best)
    }

    /// Legalizes without the reassignment passes, preserving the global
    /// placement's relative structure (used by ePlace-AP, where that
    /// structure carries the performance guidance).
    pub fn run_preserving(
        &self,
        circuit: &Circuit,
        global: &Placement,
    ) -> Result<(Placement, DetailedStats), PlaceError> {
        self.run_once(circuit, global)
    }

    fn run_once(
        &self,
        circuit: &Circuit,
        global: &Placement,
    ) -> Result<(Placement, DetailedStats), PlaceError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("dp_run");
        let _span = SPAN.enter();
        let n = circuit.num_devices();
        assert_eq!(global.len(), n, "global placement size mismatch");

        // Separation planning: constraint-consistent directions derived from
        // GP overlaps (Fig. 4a rule, made sound by the planner's DAG).
        let mut planner = SeparationPlanner::new(circuit);
        planner.extend_from(circuit, global);

        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > self.config.max_refinement_rounds {
                return Err(PlaceError::RefinementExhausted);
            }
            placer_telemetry::vlog!(2, "dp round {rounds}:");
            if placer_telemetry::verbose(2) {
                for &(a, b) in planner.x_edges() {
                    placer_telemetry::vlog!(
                        2,
                        "  x {} -> {}",
                        circuit.device(a).name,
                        circuit.device(b).name
                    );
                }
                for &(a, b) in planner.y_edges() {
                    placer_telemetry::vlog!(
                        2,
                        "  y {} -> {}",
                        circuit.device(a).name,
                        circuit.device(b).name
                    );
                }
            }
            let solution = self.solve_both_axes(circuit, planner.x_edges(), planner.y_edges())?;
            let overlaps = solution.overlapping_pairs(circuit, 1e-6);
            placer_telemetry::record(
                "dp_round",
                &[
                    ("round", rounds as f64),
                    ("sep_edges_x", planner.x_edges().len() as f64),
                    ("sep_edges_y", planner.y_edges().len() as f64),
                    ("residual_overlaps", overlaps.len() as f64),
                ],
            );
            if overlaps.is_empty() {
                let hpwl = solution.hpwl(circuit);
                let area = solution.area(circuit);
                return Ok((solution, DetailedStats { rounds, hpwl, area }));
            }
            // Plan separations for residual overlaps and re-solve.
            if !planner.extend_from(circuit, &solution) {
                return Err(PlaceError::RefinementExhausted);
            }
        }
    }

    fn solve_both_axes(
        &self,
        circuit: &Circuit,
        seps_x: &[SepEdge],
        seps_y: &[SepEdge],
    ) -> Result<Placement, PlaceError> {
        // Try a tight chip bound first (fast LPs); relax on infeasibility.
        let solve = |axis: SolveAxis, seps: &[SepEdge]| -> Result<AxisSolution, PlaceError> {
            match self.solve_axis(circuit, axis, seps, false) {
                Err(PlaceError::Solve(SolveError::Infeasible)) => {
                    self.solve_axis(circuit, axis, seps, true)
                }
                other => other,
            }
        };
        let sx = solve(SolveAxis::X, seps_x).map_err(|e| {
            placer_telemetry::vlog!(1, "dp x axis failed: {e}");
            e
        })?;
        let sy = solve(SolveAxis::Y, seps_y).map_err(|e| {
            placer_telemetry::vlog!(1, "dp y axis failed: {e}");
            e
        })?;
        let mut placement = Placement::new(circuit.num_devices());
        for i in 0..circuit.num_devices() {
            placement.positions[i] = (sx.coords[i], sy.coords[i]);
            placement.flips[i] = (sx.flips[i], sy.flips[i]);
        }
        Ok(placement)
    }

    /// Builds and solves the ILP for one axis.
    fn solve_axis(
        &self,
        circuit: &Circuit,
        axis: SolveAxis,
        seps: &[SepEdge],
        relaxed_ub: bool,
    ) -> Result<AxisSolution, PlaceError> {
        let cfg = &self.config;
        let n = circuit.num_devices();
        let step = cfg.grid_step;
        // Half-extent in grid units, rounded up (legality-preserving).
        let half: Vec<f64> = circuit
            .devices()
            .iter()
            .map(|d| {
                let extent = match axis {
                    SolveAxis::X => d.width,
                    SolveAxis::Y => d.height,
                };
                (extent / 2.0 / step).ceil()
            })
            .collect();
        let total_area: f64 = circuit.total_device_area();
        let w_tilde = (total_area / cfg.zeta).sqrt() / step; // W̃ = H̃ in grid units
                                                             // Symmetric-pair midpoint constraints can force spreads up to twice
                                                             // the plain width sum (a chain into the midpoint doubles when
                                                             // reflected to the far partner); the relaxed retry leaves that full
                                                             // headroom, the first attempt uses a tight bound for fast LPs.
        let ub_loose = (2.5 * w_tilde)
            .ceil()
            .max(half.iter().sum::<f64>() * 4.0 + 8.0);

        // Presolve: longest-path bounds over the separation DAG. For edge
        // a→b with gap g, x_b ≥ x_a + g, so a topological-style fixpoint
        // yields per-device head room (tight lower bounds) and tail room
        // (distance to the chip edge). This shrinks the integer domains by
        // an order of magnitude and is what keeps branch-and-bound fast.
        let gap = |a: analog_netlist::DeviceId, b: analog_netlist::DeviceId| {
            half[a.index()] + half[b.index()]
        };
        let mut head: Vec<f64> = half.clone();
        let mut tail: Vec<f64> = half.clone();
        for _ in 0..n {
            let mut changed = false;
            for &(a, b) in seps {
                let hb = head[a.index()] + gap(a, b);
                if hb > head[b.index()] {
                    head[b.index()] = hb;
                    changed = true;
                }
                let ta = tail[b.index()] + gap(a, b);
                if ta > tail[a.index()] {
                    tail[a.index()] = ta;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let chip_lb = (0..n)
            .map(|i| head[i] + tail[i])
            .fold(half.iter().cloned().fold(0.0, f64::max) * 2.0, f64::max);
        let ub = if relaxed_ub {
            ub_loose
        } else {
            (2.0 * chip_lb + 16.0).min(ub_loose)
        };

        let mut model = Model::new();
        // Device coordinates (integer grid), domains tightened by presolve.
        // Upper bounds are left open: the chip row `x + tail ≤ chip ≤ ub`
        // already implies them, and explicit bounds would become extra
        // simplex rows.
        let xs: Vec<VarId> = (0..n)
            .map(|i| model.add_int_var(format!("p{i}"), head[i], f64::INFINITY, 0.0))
            .collect();
        // Chip extent variable with the μ-weighted area surrogate cost
        // (μ·H̃/2 per unit of W, Eq. 4a split per axis).
        let chip = model.add_int_var("chip", chip_lb, ub, cfg.mu * w_tilde / 2.0);
        for (i, &x) in xs.iter().enumerate() {
            // x_i + tail_i ≤ chip (4c upper side, strengthened by presolve).
            model.add_constraint(vec![(x, 1.0), (chip, -1.0)], ConstraintOp::Le, -tail[i]);
        }

        // Flip binaries where useful (4d).
        let mut flips: Vec<Option<VarId>> = vec![None; n];
        if cfg.flipping {
            for (i, d) in circuit.devices().iter().enumerate() {
                let has_offset_pin = d.pins.iter().any(|p| {
                    let c = match axis {
                        SolveAxis::X => p.offset.0 - d.width / 2.0,
                        SolveAxis::Y => p.offset.1 - d.height / 2.0,
                    };
                    c.abs() > 1e-9 && circuit.net(p.net).pins.len() >= 2
                });
                if has_offset_pin {
                    flips[i] = Some(model.add_bin_var(format!("f{i}"), 0.0));
                }
            }
        }

        // Net bounds (4b) and objective Σ(hi − lo). Very-high-degree nets
        // (> 16 pins, i.e. supply rails on the largest circuits) are
        // excluded: their bounding boxes span the layout regardless of the
        // solution, so their rows only bloat the LP (reported HPWL still
        // counts them).
        for net in circuit.nets() {
            if net.pins.len() < 2 || net.pins.len() > 24 {
                continue;
            }
            // Objective contribution weight·(hi − lo): cost −w on lo, +w on hi.
            // lo is pushed up by its cost but capped by the pin rows; hi is
            // pushed down by its cost. Open upper bounds avoid bound rows.
            let lo = model.add_var(format!("lo_{}", net.name), 0.0, f64::INFINITY, -net.weight);
            let hi = model.add_var(format!("hi_{}", net.name), 0.0, f64::INFINITY, net.weight);
            for pin in &net.pins {
                let d = circuit.device(pin.device);
                let p = &d.pins[pin.pin.index()];
                let c = match axis {
                    SolveAxis::X => (p.offset.0 - d.width / 2.0) / step,
                    SolveAxis::Y => (p.offset.1 - d.height / 2.0) / step,
                };
                let x = xs[pin.device.index()];
                // pinpos = x + c − 2c·f.
                let mut terms_lo = vec![(lo, 1.0), (x, -1.0)];
                let mut terms_hi = vec![(x, 1.0), (hi, -1.0)];
                if let Some(f) = flips[pin.device.index()] {
                    terms_lo.push((f, 2.0 * c));
                    terms_hi.push((f, -2.0 * c));
                }
                // lo ≤ x + c − 2cf  →  lo − x + 2cf ≤ c.
                model.add_constraint(terms_lo, ConstraintOp::Le, c);
                // x + c − 2cf ≤ hi  →  x − hi − 2cf ≤ −c.
                model.add_constraint(terms_hi, ConstraintOp::Le, -c);
            }
        }

        // Separations (4e), directions fixed by the planner (which also
        // carries the ordering-chain edges of 4i).
        for &(a, b) in seps {
            let (i, j) = (a.index(), b.index());
            let gap = half[i] + half[j];
            model.add_constraint(vec![(xs[i], 1.0), (xs[j], -1.0)], ConstraintOp::Le, -gap);
        }

        // Symmetry (4f). Vertical-axis groups act on x; horizontal on y.
        for g in &circuit.constraints().symmetry_groups {
            let acts_on_this_axis = matches!(
                (g.axis, axis),
                (Axis::Vertical, SolveAxis::X) | (Axis::Horizontal, SolveAxis::Y)
            );
            if acts_on_this_axis {
                let m = model.add_var(format!("axis_{}", g.name), 0.0, f64::INFINITY, 0.0);
                for &(a, b) in &g.pairs {
                    model.add_constraint(
                        vec![(xs[a.index()], 1.0), (xs[b.index()], 1.0), (m, -2.0)],
                        ConstraintOp::Eq,
                        0.0,
                    );
                }
                for &s in &g.self_symmetric {
                    model.add_constraint(
                        vec![(xs[s.index()], 1.0), (m, -1.0)],
                        ConstraintOp::Eq,
                        0.0,
                    );
                }
            } else {
                // Off-axis: mirrored pairs share the other coordinate.
                for &(a, b) in &g.pairs {
                    model.add_constraint(
                        vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
                        ConstraintOp::Eq,
                        0.0,
                    );
                }
            }
        }

        // Alignment (4g bottom in y, 4h vertical-center in x).
        for al in &circuit.constraints().alignments {
            match (al.kind, axis) {
                (AlignKind::Bottom, SolveAxis::Y) => {
                    let (i, j) = (al.a.index(), al.b.index());
                    model.add_constraint(
                        vec![(xs[i], 1.0), (xs[j], -1.0)],
                        ConstraintOp::Eq,
                        half[i] - half[j],
                    );
                }
                (AlignKind::VerticalCenter, SolveAxis::X) => {
                    model.add_constraint(
                        vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                        ConstraintOp::Eq,
                        0.0,
                    );
                }
                _ => {}
            }
        }

        let solution = match model.solve_milp(&cfg.milp) {
            Ok(s) => s,
            Err(e) => {
                if placer_telemetry::verbose(1) {
                    if let Ok((total, rows)) = model.diagnose_infeasibility() {
                        placer_telemetry::vlog!(
                            1,
                            "dp axis infeasibility {total:.4}; violated rows: {rows:?}"
                        );
                    }
                }
                // DP_DUMP names a file to receive the model for offline
                // inspection; it is a dump facility, not a print gate.
                if let Some(path) = std::env::var_os("DP_DUMP") {
                    let _ = std::fs::write(path, model.dump());
                }
                return Err(e.into());
            }
        };
        let coords: Vec<f64> = xs.iter().map(|&x| solution.value(x) * step).collect();
        let flip_vals: Vec<bool> = flips
            .iter()
            .map(|f| f.map(|v| solution.value(v) > 0.5).unwrap_or(false))
            .collect();
        Ok(AxisSolution {
            coords,
            flips: flip_vals,
        })
    }
}

/// One axis' solved coordinates (µm) and flips.
#[derive(Debug, Clone)]
struct AxisSolution {
    coords: Vec<f64>,
    flips: Vec<bool>,
}

/// Convenience wrapper tying GP output to DP input (used by the pipeline
/// and by Table IV's shared-GP comparison).
pub fn legalize(
    circuit: &Circuit,
    global: &Placement,
    config: &DetailedConfig,
) -> Result<(Placement, DetailedStats), PlaceError> {
    DetailedPlacer::new(config.clone()).run(circuit, global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GlobalConfig, GlobalPlacer};
    use analog_netlist::testcases;

    fn gp(circuit: &Circuit) -> Placement {
        GlobalPlacer::new(GlobalConfig::default()).run(circuit).0
    }

    #[test]
    fn detailed_placement_is_legal_on_cc_ota() {
        let c = testcases::cc_ota();
        let g = gp(&c);
        let (p, stats) = legalize(&c, &g, &DetailedConfig::default()).unwrap();
        assert!(p.overlapping_pairs(&c, 1e-6).is_empty(), "overlaps remain");
        assert!(p.symmetry_violation(&c) < 1e-6);
        assert!(p.alignment_violation(&c) < 1e-6);
        assert!(p.ordering_violation(&c) < 1e-6);
        assert!(stats.hpwl > 0.0);
        assert!(stats.area > c.total_device_area() * 0.9);
    }

    #[test]
    fn detailed_placement_is_legal_on_adder() {
        let c = testcases::adder();
        let g = gp(&c);
        let (p, _) = legalize(&c, &g, &DetailedConfig::default()).unwrap();
        assert!(p.is_legal(&c, 1e-6));
    }

    #[test]
    fn coordinates_are_on_grid() {
        let c = testcases::adder();
        let g = gp(&c);
        let cfg = DetailedConfig::default();
        let (p, _) = legalize(&c, &g, &cfg).unwrap();
        for &(x, y) in &p.positions {
            let fx = (x / cfg.grid_step).round() * cfg.grid_step;
            let fy = (y / cfg.grid_step).round() * cfg.grid_step;
            assert!((x - fx).abs() < 1e-6, "x {x} off grid");
            assert!((y - fy).abs() < 1e-6, "y {y} off grid");
        }
    }

    #[test]
    fn flipping_recovers_wirelength_on_a_constructed_case() {
        // Two devices side by side whose connected pins face away from each
        // other: flipping one must strictly shorten the net (Fig. 3).
        use analog_netlist::{CircuitBuilder, CircuitClass, Device, DeviceKind, Pin};
        let mut b = CircuitBuilder::new("fliptest", CircuitClass::Adder);
        let n1 = b.net("n1");
        let da =
            Device::new("A", DeviceKind::Nmos, 4.0, 2.0).with_pin(Pin::new("p", n1, (0.5, 1.0))); // pin near LEFT edge
        let db =
            Device::new("B", DeviceKind::Nmos, 4.0, 2.0).with_pin(Pin::new("p", n1, (0.5, 1.0))); // also near left edge
        let ida = b.device(da);
        let idb = b.device(db);
        // Force a horizontal arrangement so the pin orientation matters.
        b.order(analog_netlist::OrderDirection::Horizontal, vec![ida, idb]);
        let c = b.build().unwrap();
        let mut g = Placement::new(2);
        g.positions[0] = (2.0, 1.0);
        g.positions[1] = (6.5, 1.0);
        let with_flip = legalize(&c, &g, &DetailedConfig::default()).unwrap();
        let without_flip = legalize(
            &c,
            &g,
            &DetailedConfig {
                flipping: false,
                ..DetailedConfig::default()
            },
        )
        .unwrap();
        assert!(
            with_flip.1.hpwl < without_flip.1.hpwl - 1.0,
            "flipping should shorten the net: {} vs {}",
            with_flip.1.hpwl,
            without_flip.1.hpwl
        );
        // A flips its pin to the right edge (or B to the left): some flip is set.
        assert!(
            with_flip.0.flips.iter().any(|&(fx, _)| fx),
            "no flip was used"
        );
    }

    #[test]
    fn larger_mu_trades_wirelength_for_area() {
        let c = testcases::comp1();
        let g = gp(&c);
        let tight = legalize(
            &c,
            &g,
            &DetailedConfig {
                mu: 4.0,
                ..DetailedConfig::default()
            },
        )
        .unwrap();
        let loose = legalize(
            &c,
            &g,
            &DetailedConfig {
                mu: 0.05,
                ..DetailedConfig::default()
            },
        )
        .unwrap();
        assert!(tight.1.area <= loose.1.area * 1.4 + 1.0);
    }
}
