//! The symmetry penalty `Sym(v)` and the hard-symmetry projection.
//!
//! For a vertical-axis group with axis position `x̂` (a free variable the
//! penalty eliminates analytically at its optimum), each pair contributes
//! `(y_i − y_j)² + (x_i + x_j − 2x̂)²` and each self-symmetric device
//! `(x_r − x̂)²` — exactly the form in §IV-A of the paper.

use analog_netlist::{Axis, Circuit, SymmetryGroup};

fn group_axis_optimum(g: &SymmetryGroup, positions: &[(f64, f64)]) -> f64 {
    // Minimizing Σ(mᵢ − x̂)² over pair midpoints and self centers gives the
    // weighted mean; pairs carry weight 4 on (x̂ − midpoint)² after expanding
    // (x_a + x_b − 2x̂)² = 4(mid − x̂)².
    let coord = |d: analog_netlist::DeviceId| match g.axis {
        Axis::Vertical => positions[d.index()].0,
        Axis::Horizontal => positions[d.index()].1,
    };
    let mut num = 0.0;
    let mut den = 0.0;
    for &(a, b) in &g.pairs {
        num += 4.0 * (coord(a) + coord(b)) / 2.0;
        den += 4.0;
    }
    for &s in &g.self_symmetric {
        num += coord(s);
        den += 1.0;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Evaluates `Sym(v)` and accumulates its gradient (scaled by `weight`)
/// into `grad` (layout `[dx…, dy…]`). Returns the penalty value.
///
/// The axis position of each group is set to its closed-form optimum; by the
/// envelope theorem the gradient w.r.t. device coordinates can then treat it
/// as constant.
///
/// # Panics
///
/// Panics on size mismatches.
pub fn symmetry_penalty(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    weight: f64,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    assert_eq!(positions.len(), n, "positions length mismatch");
    assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
    let mut value = 0.0;
    for g in &circuit.constraints().symmetry_groups {
        if g.is_empty() {
            continue;
        }
        let axis = group_axis_optimum(g, positions);
        // Index helpers: `a` = axis-aligned coordinate (x for vertical),
        // `o` = the other one.
        let (a_off, o_off) = match g.axis {
            Axis::Vertical => (0usize, n),
            Axis::Horizontal => (n, 0usize),
        };
        let ac = |i: usize| match g.axis {
            Axis::Vertical => positions[i].0,
            Axis::Horizontal => positions[i].1,
        };
        let oc = |i: usize| match g.axis {
            Axis::Vertical => positions[i].1,
            Axis::Horizontal => positions[i].0,
        };
        for &(p, q) in &g.pairs {
            let (i, j) = (p.index(), q.index());
            let dy = oc(i) - oc(j);
            let dx = ac(i) + ac(j) - 2.0 * axis;
            value += dy * dy + dx * dx;
            grad[o_off + i] += weight * 2.0 * dy;
            grad[o_off + j] -= weight * 2.0 * dy;
            grad[a_off + i] += weight * 2.0 * dx;
            grad[a_off + j] += weight * 2.0 * dx;
        }
        for &s in &g.self_symmetric {
            let i = s.index();
            let d = ac(i) - axis;
            value += d * d;
            grad[a_off + i] += weight * 2.0 * d;
        }
    }
    value
}

/// Projects positions onto the symmetry-feasible set (hard constraints,
/// Table I): pairs are mirrored about the group's optimal axis with equal
/// off-axis coordinates; self-symmetric devices are centered on the axis.
pub fn project_symmetry(circuit: &Circuit, positions: &mut [(f64, f64)]) {
    for g in &circuit.constraints().symmetry_groups {
        if g.is_empty() {
            continue;
        }
        let axis = group_axis_optimum(g, positions);
        match g.axis {
            Axis::Vertical => {
                for &(p, q) in &g.pairs {
                    let (i, j) = (p.index(), q.index());
                    let y = (positions[i].1 + positions[j].1) / 2.0;
                    let half = (positions[j].0 - positions[i].0).abs() / 2.0;
                    positions[i] = (axis - half, y);
                    positions[j] = (axis + half, y);
                }
                for &s in &g.self_symmetric {
                    positions[s.index()].0 = axis;
                }
            }
            Axis::Horizontal => {
                for &(p, q) in &g.pairs {
                    let (i, j) = (p.index(), q.index());
                    let x = (positions[i].0 + positions[j].0) / 2.0;
                    let half = (positions[j].1 - positions[i].1).abs() / 2.0;
                    positions[i] = (x, axis - half);
                    positions[j] = (x, axis + half);
                }
                for &s in &g.self_symmetric {
                    positions[s.index()].1 = axis;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::{testcases, Placement};

    #[test]
    fn penalty_zero_for_perfectly_symmetric_pairs() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let mut positions = vec![(0.0, 0.0); n];
        // Mirror every pair about x = 5.
        for g in &c.constraints().symmetry_groups {
            for (k, &(a, b)) in g.pairs.iter().enumerate() {
                positions[a.index()] = (3.0, k as f64);
                positions[b.index()] = (7.0, k as f64);
            }
            for &s in &g.self_symmetric {
                positions[s.index()] = (5.0, 9.0);
            }
        }
        let mut grad = vec![0.0; 2 * n];
        let v = symmetry_penalty(&c, &positions, 1.0, &mut grad);
        assert!(v < 1e-18, "penalty {v}");
        assert!(grad.iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn penalty_gradient_matches_finite_differences() {
        let c = testcases::comp1();
        let n = c.num_devices();
        let mut positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64 * 1.3) % 7.0, (i as f64 * 2.1) % 5.0))
            .collect();
        let mut grad = vec![0.0; 2 * n];
        symmetry_penalty(&c, &positions, 1.0, &mut grad);
        let eps = 1e-6;
        let mut scratch = vec![0.0; 2 * n];
        for dev in 0..n.min(6) {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            scratch.iter_mut().for_each(|g| *g = 0.0);
            let fp = symmetry_penalty(&c, &positions, 1.0, &mut scratch);
            positions[dev] = (orig.0 - eps, orig.1);
            scratch.iter_mut().for_each(|g| *g = 0.0);
            let fm = symmetry_penalty(&c, &positions, 1.0, &mut scratch);
            positions[dev] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[dev]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "dev {dev}: numeric {numeric} vs analytic {}",
                grad[dev]
            );
        }
    }

    #[test]
    fn projection_zeroes_the_violation() {
        let c = testcases::comp2();
        let n = c.num_devices();
        let mut positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64 * 1.7) % 9.0, (i as f64 * 0.9) % 6.0))
            .collect();
        project_symmetry(&c, &mut positions);
        let p = Placement::from_positions(positions);
        assert!(p.symmetry_violation(&c) < 1e-9);
    }

    #[test]
    fn projection_is_idempotent() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let mut positions: Vec<(f64, f64)> =
            (0..n).map(|i| (i as f64, (i * i % 5) as f64)).collect();
        project_symmetry(&c, &mut positions);
        let once = positions.clone();
        project_symmetry(&c, &mut positions);
        for (a, b) in once.iter().zip(&positions) {
            assert!((a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_scales_gradient_linearly() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64).sin() * 3.0, (i as f64).cos() * 2.0))
            .collect();
        let mut g1 = vec![0.0; 2 * n];
        let mut g2 = vec![0.0; 2 * n];
        symmetry_penalty(&c, &positions, 1.0, &mut g1);
        symmetry_penalty(&c, &positions, 2.5, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.5 * a - b).abs() < 1e-9);
        }
    }
}
