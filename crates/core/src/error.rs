//! The unified placement error type.
//!
//! Historically each pipeline surfaced its own failure enum
//! (`DetailedError` in this crate, `LegalizeError` in `placer-xu19`, raw
//! `SolveError` from `placer-mathopt` in the SA pipeline). They all
//! described the same two failures — the MILP/LP backend gave up, or
//! refinement ran out of rounds — so the job engine would have needed a
//! third wrapper enum just to aggregate them. Instead every placer now
//! returns [`PlaceError`]. (The deprecated per-pipeline aliases that
//! bridged the migration were removed once every in-tree caller had
//! switched; see CHANGELOG.md.)

use crate::checkpoint::CheckpointError;
use placer_mathopt::SolveError;
use std::fmt;

/// Any failure a placement pipeline can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The underlying MILP/LP solve failed (infeasible, node limit, ...).
    Solve(SolveError),
    /// Legalization/refinement exhausted its round budget without reaching
    /// a legal placement.
    RefinementExhausted,
    /// A resume was attempted from a checkpoint this placer cannot use
    /// (wrong placer, missing fields, circuit size mismatch, corrupt text).
    BadCheckpoint(CheckpointError),
    /// An ECO delta failed to apply (unknown device/net, invalid edit,
    /// or the edited circuit failed validation). Carries the rendered
    /// [`analog_netlist::ParseError`] message.
    Delta(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Solve(e) => write!(f, "solver failure: {e}"),
            PlaceError::RefinementExhausted => {
                write!(f, "refinement rounds exhausted without a legal placement")
            }
            PlaceError::BadCheckpoint(e) => write!(f, "unusable checkpoint: {e}"),
            PlaceError::Delta(msg) => write!(f, "ECO delta failed to apply: {msg}"),
        }
    }
}

impl std::error::Error for PlaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlaceError::Solve(e) => Some(e),
            PlaceError::RefinementExhausted => None,
            PlaceError::BadCheckpoint(e) => Some(e),
            PlaceError::Delta(_) => None,
        }
    }
}

impl From<SolveError> for PlaceError {
    fn from(e: SolveError) -> Self {
        PlaceError::Solve(e)
    }
}

impl From<CheckpointError> for PlaceError {
    fn from(e: CheckpointError) -> Self {
        PlaceError::BadCheckpoint(e)
    }
}

impl From<analog_netlist::ParseError> for PlaceError {
    fn from(e: analog_netlist::ParseError) -> Self {
        PlaceError::Delta(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source_are_wired() {
        let e = PlaceError::Solve(SolveError::Infeasible);
        assert!(e.to_string().contains("solver failure"));
        assert!(e.source().is_some());
        assert!(PlaceError::RefinementExhausted.source().is_none());
        let e = PlaceError::BadCheckpoint(CheckpointError {
            line: 3,
            message: "oops".into(),
        });
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_some());
    }
}
