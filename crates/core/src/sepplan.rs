//! Constraint-aware separation planning for legalization.
//!
//! Legalizers derive pairwise separation constraints ("a left of b") from a
//! global placement's geometry. Done naively, those directions can
//! contradict the analog equality constraints:
//!
//! - a mirrored pair has equal y, so two y-separations through a third
//!   device are transitively infeasible;
//! - members of one vertical symmetry group satisfy `x_a + x_b = 2m`, so an
//!   x-separation between group members implies the **mirrored** separation
//!   between their partners;
//! - ordering chains pre-impose directions that raw geometry may violate.
//!
//! [`SeparationPlanner`] makes the derived set sound by construction:
//! devices tied by equalities are merged into per-axis clusters, separations
//! are directed edges between clusters in a DAG (edges are only added when
//! no opposite path exists), ordering chains seed the DAG, and same-group
//! edges propagate their mirror image.

use std::collections::HashMap;

use analog_netlist::{AlignKind, Axis, Circuit, DeviceId, OrderDirection, Placement};

/// A planned separation: `a` must end at or before `b` starts on the axis.
pub type SepEdge = (DeviceId, DeviceId);

#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// One axis of the planner: equality clusters plus a separation DAG.
#[derive(Debug, Clone)]
struct AxisPlan {
    clusters: UnionFind,
    /// Cluster-level adjacency: edges `u → v` meaning u's devices end
    /// before v's start. Device-level edges retained for emission.
    adj: HashMap<usize, Vec<usize>>,
    edges: Vec<SepEdge>,
}

impl AxisPlan {
    fn new(n: usize) -> Self {
        Self {
            clusters: UnionFind::new(n),
            adj: HashMap::new(),
            edges: Vec::new(),
        }
    }

    fn cluster(&mut self, d: DeviceId) -> usize {
        self.clusters.find(d.index())
    }

    fn has_path(&mut self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut visited = vec![from];
        while let Some(u) = stack.pop() {
            if let Some(nexts) = self.adj.get(&u) {
                for &v in nexts.clone().iter() {
                    if v == to {
                        return true;
                    }
                    if !visited.contains(&v) {
                        visited.push(v);
                        stack.push(v);
                    }
                }
            }
        }
        false
    }

    /// Adds a device-level edge if the cluster-level DAG allows it.
    /// Returns `true` when the edge (or an equivalent path) now exists.
    fn add_edge(&mut self, a: DeviceId, b: DeviceId) -> bool {
        let (ca, cb) = (self.cluster(a), self.cluster(b));
        if ca == cb {
            return false; // same cluster: cannot separate on this axis
        }
        if self.has_path(ca, cb) {
            // Already implied; still emit the device edge for tightness.
            if !self.edges.contains(&(a, b)) {
                self.edges.push((a, b));
            }
            return true;
        }
        if self.has_path(cb, ca) {
            return false; // opposite direction already forced
        }
        self.adj.entry(ca).or_default().push(cb);
        self.edges.push((a, b));
        true
    }

    /// Undoes the most recent successful [`add_edge`](Self::add_edge) call
    /// for exactly this device pair (used for transactional mirror adds).
    fn rollback_edge(&mut self, a: DeviceId, b: DeviceId) {
        if self.edges.last() == Some(&(a, b)) {
            self.edges.pop();
            let (ca, cb) = (self.cluster(a), self.cluster(b));
            if let Some(list) = self.adj.get_mut(&ca) {
                if let Some(pos) = list.iter().rposition(|&v| v == cb) {
                    list.remove(pos);
                }
            }
        }
    }

    /// Whether the pair is already forced apart (a path exists either way).
    /// Retained for invariants testing; production paths always materialize
    /// explicit device edges instead.
    #[cfg_attr(not(test), allow(dead_code))]
    fn separated(&mut self, a: DeviceId, b: DeviceId) -> bool {
        let (ca, cb) = (self.cluster(a), self.cluster(b));
        ca != cb && (self.has_path(ca, cb) || self.has_path(cb, ca))
    }
}

/// Plans separation constraints that are consistent with a circuit's
/// symmetry, alignment and ordering constraints.
///
/// # Examples
///
/// ```
/// use analog_netlist::{testcases, Placement};
/// use eplace::SeparationPlanner;
///
/// let circuit = testcases::cc_ota();
/// let mut planner = SeparationPlanner::new(&circuit);
/// let stacked = Placement::new(circuit.num_devices());
/// let added = planner.extend_from(&circuit, &stacked);
/// assert!(added);
/// // Every planned edge respects the symmetry/ordering structure.
/// let (x_edges, y_edges) = (planner.x_edges(), planner.y_edges());
/// assert!(!x_edges.is_empty() || !y_edges.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SeparationPlanner {
    x: AxisPlan,
    y: AxisPlan,
    /// Mirror partner within a vertical symmetry group (selfs map to
    /// themselves), used for x-edge propagation.
    v_mirror: Vec<Option<DeviceId>>,
    /// Group id of each device in a vertical group.
    v_group: Vec<Option<usize>>,
    /// Same for horizontal groups (y-edge propagation).
    h_mirror: Vec<Option<DeviceId>>,
    h_group: Vec<Option<usize>>,
}

impl SeparationPlanner {
    /// Builds the planner: equality clusters from the constraint set plus
    /// ordering-chain seed edges.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_devices();
        let mut x = AxisPlan::new(n);
        let mut y = AxisPlan::new(n);
        let mut v_mirror = vec![None; n];
        let mut v_group = vec![None; n];
        let mut h_mirror = vec![None; n];
        let mut h_group = vec![None; n];

        for (gi, g) in circuit.constraints().symmetry_groups.iter().enumerate() {
            match g.axis {
                Axis::Vertical => {
                    for &(a, b) in &g.pairs {
                        y.clusters.union(a.index(), b.index());
                        v_mirror[a.index()] = Some(b);
                        v_mirror[b.index()] = Some(a);
                        v_group[a.index()] = Some(gi);
                        v_group[b.index()] = Some(gi);
                    }
                    let mut prev: Option<DeviceId> = None;
                    for &s in &g.self_symmetric {
                        v_mirror[s.index()] = Some(s);
                        v_group[s.index()] = Some(gi);
                        // Self-symmetric devices share x (= the axis).
                        if let Some(p) = prev {
                            x.clusters.union(p.index(), s.index());
                        }
                        prev = Some(s);
                    }
                }
                Axis::Horizontal => {
                    for &(a, b) in &g.pairs {
                        x.clusters.union(a.index(), b.index());
                        h_mirror[a.index()] = Some(b);
                        h_mirror[b.index()] = Some(a);
                        h_group[a.index()] = Some(gi);
                        h_group[b.index()] = Some(gi);
                    }
                    let mut prev: Option<DeviceId> = None;
                    for &s in &g.self_symmetric {
                        h_mirror[s.index()] = Some(s);
                        h_group[s.index()] = Some(gi);
                        if let Some(p) = prev {
                            y.clusters.union(p.index(), s.index());
                        }
                        prev = Some(s);
                    }
                }
            }
        }
        for al in &circuit.constraints().alignments {
            match al.kind {
                AlignKind::Bottom => y.clusters.union(al.a.index(), al.b.index()),
                AlignKind::VerticalCenter => x.clusters.union(al.a.index(), al.b.index()),
            }
        }
        let mut planner = Self {
            x,
            y,
            v_mirror,
            v_group,
            h_mirror,
            h_group,
        };
        for o in &circuit.constraints().orderings {
            for w in o.devices.windows(2) {
                match o.direction {
                    OrderDirection::Horizontal => {
                        planner.add_x_edge(w[0], w[1]);
                    }
                    OrderDirection::Vertical => {
                        planner.add_y_edge(w[0], w[1]);
                    }
                }
            }
        }
        planner
    }

    /// Adds an x-edge with mirror propagation. Returns success.
    fn add_x_edge(&mut self, a: DeviceId, b: DeviceId) -> bool {
        // Mirror image first (checking feasibility of the combined add).
        let mirrored = match (self.v_group[a.index()], self.v_group[b.index()]) {
            (Some(ga), Some(gb)) if ga == gb => {
                let (ma, mb) = (
                    self.v_mirror[a.index()].unwrap_or(a),
                    self.v_mirror[b.index()].unwrap_or(b),
                );
                if (mb, ma) != (a, b) && (mb != a || ma != b) {
                    Some((mb, ma))
                } else {
                    None
                }
            }
            _ => None,
        };
        if !self.x.add_edge(a, b) {
            return false;
        }
        if let Some((ma, mb)) = mirrored {
            // The sum constraint x_a + x_a' = 2m makes the mirror edge a
            // logical consequence; if it cannot be added, the primary edge
            // must not stand either (transactional).
            if !self.x.add_edge(ma, mb) {
                self.x.rollback_edge(a, b);
                return false;
            }
        }
        true
    }

    /// Adds a y-edge with mirror propagation (horizontal groups).
    fn add_y_edge(&mut self, a: DeviceId, b: DeviceId) -> bool {
        let mirrored = match (self.h_group[a.index()], self.h_group[b.index()]) {
            (Some(ga), Some(gb)) if ga == gb => {
                let (ma, mb) = (
                    self.h_mirror[a.index()].unwrap_or(a),
                    self.h_mirror[b.index()].unwrap_or(b),
                );
                if (mb, ma) != (a, b) && (mb != a || ma != b) {
                    Some((mb, ma))
                } else {
                    None
                }
            }
            _ => None,
        };
        if !self.y.add_edge(a, b) {
            return false;
        }
        if let Some((ma, mb)) = mirrored {
            if !self.y.add_edge(ma, mb) {
                self.y.rollback_edge(a, b);
                return false;
            }
        }
        true
    }

    /// Derives separations for every overlapping pair of `placement`.
    /// Returns whether any new device-level edge was recorded.
    ///
    /// Pairs are never skipped because a cluster-level path already exists:
    /// such a path guarantees separation for *some* member pair but not
    /// necessarily for this one (extents differ within a cluster), so the
    /// explicit device edge — with this pair's own gap — is recorded too.
    pub fn extend_from(&mut self, circuit: &Circuit, placement: &Placement) -> bool {
        let before = self.x.edges.len() + self.y.edges.len();
        for (a, b) in placement.overlapping_pairs(circuit, 1e-9) {
            let (xa, ya) = placement.positions[a.index()];
            let (xb, yb) = placement.positions[b.index()];
            let da = circuit.device(a);
            let db = circuit.device(b);
            let dx = (da.width + db.width) / 2.0 - (xa - xb).abs();
            let dy = (da.height + db.height) / 2.0 - (ya - yb).abs();
            let same_y_cluster = {
                let (ca, cb) = (self.y.cluster(a), self.y.cluster(b));
                ca == cb
            };
            let same_x_cluster = {
                let (ca, cb) = (self.x.cluster(a), self.x.cluster(b));
                ca == cb
            };
            let prefer_x = if same_y_cluster {
                true
            } else if same_x_cluster {
                false
            } else {
                dx < dy
            };
            if prefer_x {
                let (l, r) = if xa <= xb { (a, b) } else { (b, a) };
                let _ = self.add_x_edge(l, r) || self.add_x_edge(r, l) || {
                    let (l, r) = if ya <= yb { (a, b) } else { (b, a) };
                    self.add_y_edge(l, r) || self.add_y_edge(r, l)
                };
            } else {
                let (l, r) = if ya <= yb { (a, b) } else { (b, a) };
                let _ = self.add_y_edge(l, r) || self.add_y_edge(r, l) || {
                    let (l, r) = if xa <= xb { (a, b) } else { (b, a) };
                    self.add_x_edge(l, r) || self.add_x_edge(r, l)
                };
            }
        }
        self.x.edges.len() + self.y.edges.len() > before
    }

    /// Derives a **complete** relative-order constraint set: one edge for
    /// every device pair, using each pair's current geometric relation
    /// (the axis where they are most separated). This reproduces the
    /// ISPD'19 baseline's constraint-graph construction, which fixes the
    /// relative order of *all* pairs from global placement — more
    /// conservative than separating only overlapping pairs, and one of the
    /// reasons that method trails ePlace-A in solution quality.
    pub fn extend_all_pairs(&mut self, circuit: &Circuit, placement: &Placement) {
        let n = circuit.num_devices();
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (DeviceId::new(i), DeviceId::new(j));
                let (xa, ya) = placement.positions[i];
                let (xb, yb) = placement.positions[j];
                let da = circuit.device(a);
                let db = circuit.device(b);
                // Signed overlaps: negative = already separated.
                let dx = (da.width + db.width) / 2.0 - (xa - xb).abs();
                let dy = (da.height + db.height) / 2.0 - (ya - yb).abs();
                let same_y = self.y.cluster(a) == self.y.cluster(b);
                let same_x = self.x.cluster(a) == self.x.cluster(b);
                let prefer_x = if same_y {
                    true
                } else if same_x {
                    false
                } else {
                    dx < dy
                };
                if prefer_x {
                    let (l, r) = if xa <= xb { (a, b) } else { (b, a) };
                    let _ = self.add_x_edge(l, r) || self.add_x_edge(r, l) || {
                        let (l, r) = if ya <= yb { (a, b) } else { (b, a) };
                        self.add_y_edge(l, r) || self.add_y_edge(r, l)
                    };
                } else {
                    let (l, r) = if ya <= yb { (a, b) } else { (b, a) };
                    let _ = self.add_y_edge(l, r) || self.add_y_edge(r, l) || {
                        let (l, r) = if xa <= xb { (a, b) } else { (b, a) };
                        self.add_x_edge(l, r) || self.add_x_edge(r, l)
                    };
                }
            }
        }
    }

    /// The planned x separations (`a` left of `b`).
    pub fn x_edges(&self) -> &[SepEdge] {
        &self.x.edges
    }

    /// The planned y separations (`a` below `b`).
    pub fn y_edges(&self) -> &[SepEdge] {
        &self.y.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn planner_never_y_separates_mirrored_pairs() {
        let c = testcases::cc_ota();
        let mut planner = SeparationPlanner::new(&c);
        let stacked = Placement::new(c.num_devices());
        planner.extend_from(&c, &stacked);
        for g in &c.constraints().symmetry_groups {
            for &(a, b) in &g.pairs {
                for &(u, v) in planner.y_edges() {
                    assert!(
                        !((u == a && v == b) || (u == b && v == a)),
                        "mirrored pair {}-{} got a y separation",
                        c.device(a).name,
                        c.device(b).name
                    );
                }
            }
        }
    }

    #[test]
    fn ordering_edges_are_seeded_and_respected() {
        let c = testcases::cm_ota1();
        let mut planner = SeparationPlanner::new(&c);
        // Ordering chain p1o, p1d, p2d, p2o must appear as x edges.
        let order = &c.constraints().orderings[0];
        for w in order.devices.windows(2) {
            assert!(
                planner.x_edges().contains(&(w[0], w[1])),
                "ordering edge missing"
            );
        }
        // No placement can make the planner contradict the chain.
        let stacked = Placement::new(c.num_devices());
        planner.extend_from(&c, &stacked);
        for w in order.devices.windows(2) {
            assert!(!planner.x_edges().contains(&(w[1], w[0])));
        }
    }

    #[test]
    fn x_edges_between_group_members_propagate_mirrors() {
        let c = testcases::cc_ota();
        let mut planner = SeparationPlanner::new(&c);
        // Find two pairs of the "core" group.
        let g = &c.constraints().symmetry_groups[0];
        let (a1, b1) = g.pairs[0];
        let (a2, b2) = g.pairs[1];
        let mut p = Placement::new(c.num_devices());
        // Overlap a1 with a2 horizontally offset so an x-sep is chosen.
        p.positions[a1.index()] = (0.0, 0.0);
        p.positions[a2.index()] = (0.4, 0.0);
        // Move everything else far away.
        for i in 0..c.num_devices() {
            let id = analog_netlist::DeviceId::new(i);
            if id != a1 && id != a2 {
                p.positions[i] = (100.0 + 10.0 * i as f64, 100.0);
            }
        }
        planner.extend_from(&c, &p);
        let has = |edges: &[SepEdge], e: SepEdge| edges.contains(&e);
        if has(planner.x_edges(), (a1, a2)) {
            assert!(
                has(planner.x_edges(), (b2, b1)),
                "mirror edge b2->b1 missing"
            );
        }
    }

    #[test]
    fn repeated_extension_reaches_fixpoint() {
        let c = testcases::comp2();
        let mut planner = SeparationPlanner::new(&c);
        let stacked = Placement::new(c.num_devices());
        let mut rounds = 0;
        while planner.extend_from(&c, &stacked) {
            rounds += 1;
            assert!(rounds < 20, "planner did not reach a fixpoint");
        }
        // After the fixpoint every overlapping pair is separated or tied in
        // both axes (which would be a modelling error in the testcase).
        let mut p2 = planner.clone();
        for (a, b) in stacked.overlapping_pairs(&c, 1e-9) {
            assert!(
                p2.x.separated(a, b) || p2.y.separated(a, b),
                "{} / {} unseparated",
                c.device(a).name,
                c.device(b).name
            );
        }
    }
}
