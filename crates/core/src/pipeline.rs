//! End-to-end placement pipelines: ePlace-A and ePlace-AP.
//!
//! Both pipelines expose two fronts:
//!
//! - the legacy inherent `place(&circuit)`, which runs to completion and
//!   is kept bit-identical to its pre-budget behavior, and
//! - the [`Placer`] trait (`place(&circuit, &RunBudget)` /
//!   `resume(&circuit, &Checkpoint, &RunBudget)`), which adds deadlines,
//!   cooperative cancellation and exact resume on top of the same engine.
//!
//! Both fronts share one engine per pipeline, so the unlimited-budget
//! trait path and the legacy path execute the same instructions.

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use placer_gnn::Network;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::detailed::legalize;
use crate::global::{GlobalPlacer, GpCheckpoint, GpRun};
use crate::placer::{expect_placer, PlaceOutcome, PlaceSolution, Placer};
use crate::{PerfConfig, PerfGradHook, PlaceError, PlacerConfig, RunBudget};

/// The result of a full placement run.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The final (legal) placement.
    pub placement: Placement,
    /// Exact HPWL (µm), flips included.
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Global placement wall time (s).
    pub gp_seconds: f64,
    /// Detailed placement wall time (s).
    pub dp_seconds: f64,
    /// Global placement iterations.
    pub gp_iterations: usize,
}

impl PlacementResult {
    fn into_solution(self) -> PlaceSolution {
        PlaceSolution {
            placement: self.placement,
            hpwl: self.hpwl,
            area: self.area,
            stage1_seconds: self.gp_seconds,
            stage2_seconds: self.dp_seconds,
            iterations: self.gp_iterations,
        }
    }
}

/// Internal outcome of a budgeted pipeline engine.
enum EngineRun {
    Done(PlacementResult),
    Exhausted(PlacementResult),
    Cancelled(Checkpoint),
}

impl EngineRun {
    fn into_outcome(self) -> PlaceOutcome {
        match self {
            EngineRun::Done(r) => PlaceOutcome::Complete(r.into_solution()),
            EngineRun::Exhausted(r) => PlaceOutcome::Exhausted(r.into_solution()),
            EngineRun::Cancelled(ck) => PlaceOutcome::Cancelled(ck),
        }
    }
}

fn bad_checkpoint(message: String) -> PlaceError {
    PlaceError::BadCheckpoint(CheckpointError { line: 0, message })
}

fn check_n(ck: &Checkpoint, circuit: &Circuit) -> Result<usize, PlaceError> {
    let n = circuit.num_devices();
    let stored = ck.get_u64("n")? as usize;
    if stored != n {
        return Err(bad_checkpoint(format!(
            "checkpoint is for a {stored}-device circuit, got {n} devices"
        )));
    }
    Ok(n)
}

fn put_placement(ck: &mut Checkpoint, prefix: &str, p: &Placement) {
    let xs: Vec<f64> = p.positions.iter().map(|&(x, _)| x).collect();
    let ys: Vec<f64> = p.positions.iter().map(|&(_, y)| y).collect();
    let fx: Vec<bool> = p.flips.iter().map(|&(fx, _)| fx).collect();
    let fy: Vec<bool> = p.flips.iter().map(|&(_, fy)| fy).collect();
    ck.put_f64s(&format!("{prefix}x"), &xs);
    ck.put_f64s(&format!("{prefix}y"), &ys);
    ck.put_bools(&format!("{prefix}fx"), &fx);
    ck.put_bools(&format!("{prefix}fy"), &fy);
}

fn get_placement(ck: &Checkpoint, prefix: &str, n: usize) -> Result<Placement, PlaceError> {
    let xs = ck.get_f64s(&format!("{prefix}x"))?;
    let ys = ck.get_f64s(&format!("{prefix}y"))?;
    let fx = ck.get_bools(&format!("{prefix}fx"))?;
    let fy = ck.get_bools(&format!("{prefix}fy"))?;
    if xs.len() != n || ys.len() != n || fx.len() != n || fy.len() != n {
        return Err(bad_checkpoint(format!(
            "placement `{prefix}*` sized for a different circuit"
        )));
    }
    Ok(Placement {
        positions: xs.iter().zip(ys).map(|(&x, &y)| (x, y)).collect(),
        flips: fx.iter().zip(fy).map(|(&a, &b)| (a, b)).collect(),
    })
}

fn put_result(ck: &mut Checkpoint, prefix: &str, r: &PlacementResult) {
    put_placement(ck, prefix, &r.placement);
    ck.put_f64(&format!("{prefix}hpwl"), r.hpwl);
    ck.put_f64(&format!("{prefix}area"), r.area);
    ck.put_f64(&format!("{prefix}gp_seconds"), r.gp_seconds);
    ck.put_f64(&format!("{prefix}dp_seconds"), r.dp_seconds);
    ck.put_u64(&format!("{prefix}gp_iterations"), r.gp_iterations as u64);
}

fn get_result(ck: &Checkpoint, prefix: &str, n: usize) -> Result<PlacementResult, PlaceError> {
    Ok(PlacementResult {
        placement: get_placement(ck, prefix, n)?,
        hpwl: ck.get_f64(&format!("{prefix}hpwl"))?,
        area: ck.get_f64(&format!("{prefix}area"))?,
        gp_seconds: ck.get_f64(&format!("{prefix}gp_seconds"))?,
        dp_seconds: ck.get_f64(&format!("{prefix}dp_seconds"))?,
        gp_iterations: ck.get_u64(&format!("{prefix}gp_iterations"))? as usize,
    })
}

fn put_gp(ck: &mut Checkpoint, gp: &GpCheckpoint) {
    ck.put_u64("gp_iter", gp.iter as u64);
    ck.put_f64("gp_lambda", gp.lambda);
    ck.put_f64("gp_tau", gp.tau);
    ck.put_f64("gp_gamma", gp.gamma);
    ck.put_f64("gp_overflow", gp.overflow);
    let s = &gp.nesterov;
    ck.put_f64s("gp_u", &s.u);
    ck.put_f64s("gp_v", &s.v);
    ck.put_f64s("gp_v_prev", &s.v_prev);
    ck.put_f64s("gp_g_prev", &s.g_prev);
    ck.put_f64("gp_a", s.a);
    ck.put_f64("gp_initial_step", s.initial_step);
    ck.put_f64("gp_max_step", s.max_step);
    ck.put_f64("gp_shrink", s.shrink);
    ck.put_f64("gp_g_norm_prev", s.g_norm_prev);
    ck.put_u64("gp_iterations", s.iterations as u64);
    ck.put_u64("gp_safeguard_trips", s.safeguard_trips as u64);
}

fn get_gp(ck: &Checkpoint, n: usize) -> Result<GpCheckpoint, PlaceError> {
    let snapshot = placer_numeric::NesterovSnapshot {
        u: ck.get_f64s("gp_u")?.to_vec(),
        v: ck.get_f64s("gp_v")?.to_vec(),
        v_prev: ck.get_f64s("gp_v_prev")?.to_vec(),
        g_prev: ck.get_f64s("gp_g_prev")?.to_vec(),
        a: ck.get_f64("gp_a")?,
        initial_step: ck.get_f64("gp_initial_step")?,
        max_step: ck.get_f64("gp_max_step")?,
        shrink: ck.get_f64("gp_shrink")?,
        g_norm_prev: ck.get_f64("gp_g_norm_prev")?,
        iterations: ck.get_u64("gp_iterations")? as usize,
        safeguard_trips: ck.get_u64("gp_safeguard_trips")? as usize,
    };
    if snapshot.u.len() != 2 * n
        || snapshot.v.len() != 2 * n
        || snapshot.v_prev.len() != 2 * n
        || snapshot.g_prev.len() != 2 * n
    {
        return Err(bad_checkpoint(
            "optimizer vectors sized for a different circuit".to_string(),
        ));
    }
    Ok(GpCheckpoint {
        iter: ck.get_u64("gp_iter")? as usize,
        lambda: ck.get_f64("gp_lambda")?,
        tau: ck.get_f64("gp_tau")?,
        gamma: ck.get_f64("gp_gamma")?,
        overflow: ck.get_f64("gp_overflow")?,
        nesterov: snapshot,
    })
}

/// Warm trust-region refinement shared by both pipelines' `eco_refine`:
/// fabricates a [`GpCheckpoint`] whose Nesterov state sits at the warm
/// coordinates with a fresh (tight) step budget, then resumes the global
/// placer for the last [`EcoConfig::refine_iters`](crate::EcoConfig)
/// iterations of its schedule. The small `max_step` cap keeps the solver
/// from tearing up the warm layout: devices move at most a couple percent
/// of the region per iteration, and the convergence check exits as soon
/// as the (already near-legal) density overflow is under target.
fn warm_gp_refine(
    config: &PlacerConfig,
    artifacts: &crate::CircuitArtifacts,
    warm: &Placement,
    eco: &crate::EcoConfig,
    hook: Option<&mut crate::global::ExtraGradientFn<'_>>,
) -> (Placement, usize) {
    let cfg = &config.global;
    let circuit = artifacts.circuit();
    let n = circuit.num_devices();
    let side = (circuit.total_device_area() / cfg.utilization).sqrt();
    let (side_x, side_y) = (side * cfg.aspect.sqrt(), side / cfg.aspect.sqrt());
    let density = artifacts.density_grid((0.0, 0.0), (side_x, side_y), cfg.grid);
    let (bin_x, _) = density.bin_size();
    let mut u = vec![0.0; 2 * n];
    for (i, d) in circuit.devices().iter().enumerate() {
        let hw = (d.width / 2.0).min(side_x / 2.0);
        let hh = (d.height / 2.0).min(side_y / 2.0);
        u[i] = warm.positions[i].0.clamp(hw, side_x - hw);
        u[n + i] = warm.positions[i].1.clamp(hh, side_y - hh);
    }
    let start_iter = cfg.max_iters.saturating_sub(eco.refine_iters.max(1));
    let ck = GpCheckpoint {
        iter: start_iter,
        // Conservative re-seeded weights: the schedule's λ/τ normalization
        // lives in the cold path's initial-gradient ratio, which a warm
        // resume cannot reproduce; unit weights with a tight step cap keep
        // the refinement a gentle polish (region repair restores exact
        // legality afterwards regardless).
        lambda: 1.0,
        tau: 1.0,
        gamma: 0.25 * bin_x,
        overflow: 1.0,
        nesterov: placer_numeric::NesterovSnapshot {
            u: u.clone(),
            v: u.clone(),
            v_prev: vec![0.0; 2 * n],
            g_prev: vec![0.0; 2 * n],
            a: 1.0,
            initial_step: bin_x * 0.05,
            max_step: side * 0.02,
            shrink: 1.0,
            g_norm_prev: 0.0,
            iterations: 0,
            safeguard_trips: 0,
        },
    };
    let run = GlobalPlacer::new(cfg.clone()).run_budgeted_with(
        circuit,
        hook,
        None,
        Some(&ck),
        Some(artifacts),
    );
    match run {
        GpRun::Complete(mut p, stats) | GpRun::Exhausted(mut p, stats) => {
            // The GP does not model flips; keep the warm flip states so
            // pinned devices' pins stay where the previous solution put
            // them.
            p.flips = warm.flips.clone();
            (p, stats.iterations.saturating_sub(start_iter))
        }
        GpRun::Cancelled(_) => unreachable!("no budget, cannot cancel"),
    }
}

/// Best-so-far probe shared by both pipelines' checkpoints: prefer the
/// completed-attempt metrics (`best_*`), else score the in-flight Nesterov
/// iterate (`gp_u`, solver layout `[x…, y…]`) with the exact HPWL/area
/// the restart ladder itself ranks by. Pure function of the checkpoint
/// text, as the racing contract requires.
fn probe_engine_checkpoint(
    circuit: &Circuit,
    ck: &Checkpoint,
    placer: &str,
) -> Option<crate::RaceProbe> {
    if ck.placer() != placer {
        return None;
    }
    if ck.get_u64("has_best").ok()? == 1 {
        return Some(crate::RaceProbe {
            hpwl: ck.get_f64("best_hpwl").ok()?,
            area: ck.get_f64("best_area").ok()?,
        });
    }
    let n = circuit.num_devices();
    let u = ck.get_f64s("gp_u").ok()?;
    if u.len() != 2 * n {
        return None;
    }
    let pts: Vec<(f64, f64)> = (0..n).map(|i| (u[i], u[n + i])).collect();
    Some(crate::RaceProbe {
        hpwl: crate::wirelength::exact_hpwl(circuit, &pts),
        area: crate::exact_area(circuit, &pts),
    })
}

/// The ePlace-A analog placer (conventional, performance-oblivious).
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use eplace::{EPlaceA, PlacerConfig};
///
/// # fn main() -> Result<(), eplace::PlaceError> {
/// let circuit = testcases::adder();
/// let placer = EPlaceA::new(PlacerConfig::default());
/// let result = placer.place(&circuit)?;
/// assert!(result.placement.is_legal(&circuit, 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EPlaceA {
    config: PlacerConfig,
}

impl EPlaceA {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs global then detailed placement, keeping the best of
    /// `restarts` seeded attempts (by area·HPWL product).
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError`] from the legalization ILP when every
    /// restart fails; a single successful restart suffices.
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementResult, PlaceError> {
        match self.run_engine(circuit, None, None, None)? {
            EngineRun::Done(r) => Ok(r),
            _ => unreachable!("no budget: engine can only complete"),
        }
    }

    fn run_engine(
        &self,
        circuit: &Circuit,
        budget: Option<&RunBudget>,
        resume: Option<&Checkpoint>,
        artifacts: Option<&crate::CircuitArtifacts>,
    ) -> Result<EngineRun, PlaceError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("eplace_a_place");
        let _span = SPAN.enter();
        let n = circuit.num_devices();
        let mut best: Option<PlacementResult> = None;
        let mut last_err: Option<PlaceError> = None;
        let attempts = self.config.restarts.max(1);
        // Restarts vary both the seed and the GP region utilization — the
        // best region density is circuit-dependent.
        let util_ladder = [1.0, 1.0, 1.0, 1.5];
        let mut start_k = 0usize;
        let mut gp_resume: Option<GpCheckpoint> = None;
        if let Some(ck) = resume {
            expect_placer(ck, "eplace-a")?;
            check_n(ck, circuit)?;
            start_k = ck.get_u64("attempt")? as usize;
            if ck.get_u64("has_best")? == 1 {
                best = Some(get_result(ck, "best_", n)?);
            }
            gp_resume = Some(get_gp(ck, n)?);
        }
        for k in start_k..attempts {
            let mut global_cfg = self.config.global.clone();
            global_cfg.seed = self.config.global.seed + k as u64;
            global_cfg.utilization =
                (global_cfg.utilization * util_ladder[k % util_ladder.len()]).min(0.8);
            let t0 = Instant::now();
            let gp_ck = gp_resume.take();
            let run = GlobalPlacer::new(global_cfg).run_budgeted_with(
                circuit,
                None,
                budget,
                gp_ck.as_ref(),
                artifacts,
            );
            let gp_seconds = t0.elapsed().as_secs_f64();
            let (gp, stats, gp_exhausted) = match run {
                GpRun::Cancelled(gpck) => {
                    let mut out = Checkpoint::new("eplace-a");
                    out.put_u64("n", n as u64);
                    out.put_u64("attempt", k as u64);
                    match &best {
                        Some(b) => {
                            out.put_u64("has_best", 1);
                            put_result(&mut out, "best_", b);
                        }
                        None => out.put_u64("has_best", 0),
                    }
                    put_gp(&mut out, &gpck);
                    return Ok(EngineRun::Cancelled(out));
                }
                GpRun::Complete(gp, stats) => (gp, stats, false),
                GpRun::Exhausted(gp, stats) => (gp, stats, true),
            };
            if gp_exhausted {
                // Deadline hit mid-attempt. If an earlier attempt already
                // produced a legal best, return it without burning more
                // time legalizing the interrupted (inferior) state;
                // otherwise legalize the partial GP so the caller still
                // gets a legal placement.
                if let Some(b) = best {
                    return Ok(EngineRun::Exhausted(b));
                }
                let t1 = Instant::now();
                let dp_result = if self.config.preserve_gp {
                    crate::DetailedPlacer::new(self.config.detailed.clone())
                        .run_preserving(circuit, &gp)
                } else {
                    legalize(circuit, &gp, &self.config.detailed)
                };
                let (placement, dstats) = dp_result?;
                return Ok(EngineRun::Exhausted(PlacementResult {
                    placement,
                    hpwl: dstats.hpwl,
                    area: dstats.area,
                    gp_seconds,
                    dp_seconds: t1.elapsed().as_secs_f64(),
                    gp_iterations: stats.iterations,
                }));
            }
            let t1 = Instant::now();
            let dp_result = if self.config.preserve_gp {
                crate::DetailedPlacer::new(self.config.detailed.clone())
                    .run_preserving(circuit, &gp)
            } else {
                legalize(circuit, &gp, &self.config.detailed)
            };
            match dp_result {
                Ok((placement, dstats)) => {
                    let candidate = PlacementResult {
                        placement,
                        hpwl: dstats.hpwl,
                        area: dstats.area,
                        gp_seconds: best.as_ref().map_or(0.0, |b| b.gp_seconds) + gp_seconds,
                        dp_seconds: best.as_ref().map_or(0.0, |b| b.dp_seconds)
                            + t1.elapsed().as_secs_f64(),
                        gp_iterations: stats.iterations,
                    };
                    let score = |r: &PlacementResult| r.area * r.hpwl;
                    best = match best {
                        Some(prev) if score(&prev) <= score(&candidate) => Some(PlacementResult {
                            gp_seconds: candidate.gp_seconds,
                            dp_seconds: candidate.dp_seconds,
                            ..prev
                        }),
                        _ => Some(candidate),
                    };
                }
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some(result) => Ok(EngineRun::Done(result)),
            None => Err(last_err.expect("at least one attempt ran")),
        }
    }

    /// Runs only global placement (for Table IV's shared-GP comparison).
    pub fn global_only(&self, circuit: &Circuit) -> Placement {
        GlobalPlacer::new(self.config.global.clone()).run(circuit).0
    }
}

impl Placer for EPlaceA {
    fn name(&self) -> &'static str {
        "eplace-a"
    }

    fn place(&self, circuit: &Circuit, budget: &RunBudget) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(circuit, Some(budget), None, None)?
            .into_outcome())
    }

    fn resume(
        &self,
        circuit: &Circuit,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(circuit, Some(budget), Some(checkpoint), None)?
            .into_outcome())
    }

    fn place_artifacts(
        &self,
        artifacts: &crate::CircuitArtifacts,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(artifacts.circuit(), Some(budget), None, Some(artifacts))?
            .into_outcome())
    }

    fn resume_artifacts(
        &self,
        artifacts: &crate::CircuitArtifacts,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(
                artifacts.circuit(),
                Some(budget),
                Some(checkpoint),
                Some(artifacts),
            )?
            .into_outcome())
    }

    fn eco_refine(
        &self,
        artifacts: &crate::CircuitArtifacts,
        warm: &Placement,
        _dirty: &[bool],
        eco: &crate::EcoConfig,
    ) -> Result<Option<(Placement, usize)>, PlaceError> {
        Ok(Some(warm_gp_refine(
            &self.config,
            artifacts,
            warm,
            eco,
            None,
        )))
    }

    fn probe(&self, circuit: &Circuit, checkpoint: &Checkpoint) -> Option<crate::RaceProbe> {
        probe_engine_checkpoint(circuit, checkpoint, "eplace-a")
    }
}

/// The ePlace-AP performance-driven placer: ePlace-A plus the GNN term.
#[derive(Debug, Clone)]
pub struct EPlaceAP {
    config: PlacerConfig,
    perf: PerfConfig,
    network: Network,
}

impl EPlaceAP {
    /// Creates a performance-driven placer around a trained model.
    pub fn new(config: PlacerConfig, perf: PerfConfig, network: Network) -> Self {
        Self {
            config,
            perf,
            network,
        }
    }

    /// Runs performance-driven global placement then the (identical)
    /// detailed placement of ePlace-A, keeping the best of `restarts`
    /// seeded attempts. The selection score multiplies area·HPWL by the
    /// model's predicted failure probability Φ of the final placement, so
    /// the restart machinery optimizes the same blend as the objective.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError`] from the legalization ILP when every
    /// restart fails.
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementResult, PlaceError> {
        match self.run_engine(circuit, None, None, None)? {
            EngineRun::Done(r) => Ok(r),
            _ => unreachable!("no budget: engine can only complete"),
        }
    }

    fn run_engine(
        &self,
        circuit: &Circuit,
        budget: Option<&RunBudget>,
        resume: Option<&Checkpoint>,
        artifacts: Option<&crate::CircuitArtifacts>,
    ) -> Result<EngineRun, PlaceError> {
        static SPAN: placer_telemetry::SpanStat =
            placer_telemetry::SpanStat::new("eplace_ap_place");
        let _span = SPAN.enter();
        let n = circuit.num_devices();
        let mut best: Option<(f64, PlacementResult)> = None;
        let mut last_err: Option<PlaceError> = None;
        let mut total_gp = 0.0;
        let mut total_dp = 0.0;
        let attempts = self.config.restarts.max(1);
        let util_ladder = [1.0, 1.0, 1.0, 1.5];
        // Restarts also sweep the GNN weight α: how hard to lean on the
        // performance model is itself a hyperparameter worth exploring. The
        // α = 0 attempt keeps the conventional solution in the candidate
        // pool, so a poorly-calibrated model cannot make things worse than
        // plain ePlace-A under the same selection score.
        let alpha_ladder = [1.0, 0.5, 2.0, 0.0];
        // Scoring graph + inference scratch, shared across restarts (the
        // topology is fixed; only the position features change).
        let mut graph: Option<placer_gnn::CircuitGraph> = None;
        let mut scratch = placer_gnn::InferenceScratch::new(&self.network, circuit.num_devices());
        let mut start_k = 0usize;
        let mut gp_resume: Option<GpCheckpoint> = None;
        let mut alpha_resume: Option<Option<f64>> = None;
        if let Some(ck) = resume {
            expect_placer(ck, "eplace-ap")?;
            check_n(ck, circuit)?;
            start_k = ck.get_u64("attempt")? as usize;
            if ck.get_u64("has_best")? == 1 {
                best = Some((ck.get_f64("best_score")?, get_result(ck, "best_", n)?));
            }
            total_gp = ck.get_f64("total_gp")?;
            total_dp = ck.get_f64("total_dp")?;
            gp_resume = Some(get_gp(ck, n)?);
            alpha_resume = Some(ck.opt_f64("ap_alpha_abs")?);
        }
        for k in start_k..attempts {
            let mut global_cfg = self.config.global.clone();
            global_cfg.seed = self.config.global.seed + k as u64;
            global_cfg.utilization =
                (global_cfg.utilization * util_ladder[k % util_ladder.len()]).min(0.8);
            let mut perf_cfg = self.perf.clone();
            perf_cfg.alpha *= alpha_ladder[k % alpha_ladder.len()];
            let t0 = Instant::now();
            // The GNN hook state is per-attempt (α re-normalizes on the
            // attempt's first gradient call); a resumed attempt inherits
            // the interrupted attempt's normalization from the checkpoint
            // so its stream continues exactly.
            let mut hook_state = match artifacts {
                Some(a) => PerfGradHook::with_topology(
                    &a.topology(),
                    &self.network,
                    perf_cfg.alpha,
                    perf_cfg.scale,
                ),
                None => PerfGradHook::new(circuit, &self.network, perf_cfg.alpha, perf_cfg.scale),
            };
            if let Some(alpha_abs) = alpha_resume.take() {
                hook_state.set_alpha_abs(alpha_abs);
            }
            let mut hook =
                |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 { hook_state.eval(pts, grad) };
            let gp_ck = gp_resume.take();
            let run = GlobalPlacer::new(global_cfg).run_budgeted_with(
                circuit,
                Some(&mut hook),
                budget,
                gp_ck.as_ref(),
                artifacts,
            );
            total_gp += t0.elapsed().as_secs_f64();
            let (gp, stats, gp_exhausted) = match run {
                GpRun::Cancelled(gpck) => {
                    let mut out = Checkpoint::new("eplace-ap");
                    out.put_u64("n", n as u64);
                    out.put_u64("attempt", k as u64);
                    match &best {
                        Some((score, b)) => {
                            out.put_u64("has_best", 1);
                            out.put_f64("best_score", *score);
                            put_result(&mut out, "best_", b);
                        }
                        None => out.put_u64("has_best", 0),
                    }
                    out.put_f64("total_gp", total_gp);
                    out.put_f64("total_dp", total_dp);
                    if let Some(alpha_abs) = hook_state.alpha_abs() {
                        out.put_f64("ap_alpha_abs", alpha_abs);
                    }
                    put_gp(&mut out, &gpck);
                    return Ok(EngineRun::Cancelled(out));
                }
                GpRun::Complete(gp, stats) => (gp, stats, false),
                GpRun::Exhausted(gp, stats) => (gp, stats, true),
            };
            if gp_exhausted {
                if let Some((_, mut b)) = best {
                    b.gp_seconds = total_gp;
                    b.dp_seconds = total_dp;
                    return Ok(EngineRun::Exhausted(b));
                }
                let t1 = Instant::now();
                let dp = crate::DetailedPlacer::new(self.config.detailed.clone());
                let (placement, dstats) = dp.run_preserving(circuit, &gp)?;
                total_dp += t1.elapsed().as_secs_f64();
                return Ok(EngineRun::Exhausted(PlacementResult {
                    placement,
                    hpwl: dstats.hpwl,
                    area: dstats.area,
                    gp_seconds: total_gp,
                    dp_seconds: total_dp,
                    gp_iterations: stats.iterations,
                }));
            }
            let t1 = Instant::now();
            // Structure-preserving legalization: the GNN guidance lives in
            // the GP's relative ordering, which the reassignment passes of
            // the conventional flow would discard.
            let dp = crate::DetailedPlacer::new(self.config.detailed.clone());
            match dp.run_preserving(circuit, &gp) {
                Ok((placement, dstats)) => {
                    total_dp += t1.elapsed().as_secs_f64();
                    let g = match graph.as_mut() {
                        Some(g) => {
                            g.update_positions(&placement);
                            g
                        }
                        None => {
                            graph = Some(match artifacts {
                                Some(a) => placer_gnn::CircuitGraph::from_topology(
                                    &a.topology(),
                                    &placement.positions,
                                    self.perf.scale,
                                ),
                                None => placer_gnn::CircuitGraph::new(
                                    circuit,
                                    &placement,
                                    self.perf.scale,
                                ),
                            });
                            graph.as_mut().expect("just inserted")
                        }
                    };
                    let phi = self.network.predict_with(g, &mut scratch);
                    let score = dstats.area * dstats.hpwl * (0.3 + phi);
                    let candidate = PlacementResult {
                        placement,
                        hpwl: dstats.hpwl,
                        area: dstats.area,
                        gp_seconds: total_gp,
                        dp_seconds: total_dp,
                        gp_iterations: stats.iterations,
                    };
                    best = match best {
                        Some((best_score, prev)) if best_score <= score => Some((best_score, prev)),
                        _ => Some((score, candidate)),
                    };
                }
                Err(e) => {
                    total_dp += t1.elapsed().as_secs_f64();
                    last_err = Some(e);
                }
            }
        }
        match best {
            Some((_, mut result)) => {
                result.gp_seconds = total_gp;
                result.dp_seconds = total_dp;
                Ok(EngineRun::Done(result))
            }
            None => Err(last_err.expect("at least one attempt ran")),
        }
    }
}

impl Placer for EPlaceAP {
    fn name(&self) -> &'static str {
        "eplace-ap"
    }

    fn place(&self, circuit: &Circuit, budget: &RunBudget) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(circuit, Some(budget), None, None)?
            .into_outcome())
    }

    fn resume(
        &self,
        circuit: &Circuit,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(circuit, Some(budget), Some(checkpoint), None)?
            .into_outcome())
    }

    fn place_artifacts(
        &self,
        artifacts: &crate::CircuitArtifacts,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(artifacts.circuit(), Some(budget), None, Some(artifacts))?
            .into_outcome())
    }

    fn resume_artifacts(
        &self,
        artifacts: &crate::CircuitArtifacts,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        Ok(self
            .run_engine(
                artifacts.circuit(),
                Some(budget),
                Some(checkpoint),
                Some(artifacts),
            )?
            .into_outcome())
    }

    fn eco_refine(
        &self,
        artifacts: &crate::CircuitArtifacts,
        warm: &Placement,
        _dirty: &[bool],
        eco: &crate::EcoConfig,
    ) -> Result<Option<(Placement, usize)>, PlaceError> {
        // The GNN term rides along through the same hook as a cold run,
        // evaluated on the patched topology.
        let mut hook_state = PerfGradHook::with_topology(
            &artifacts.topology(),
            &self.network,
            self.perf.alpha,
            self.perf.scale,
        );
        let mut hook = |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 { hook_state.eval(pts, grad) };
        Ok(Some(warm_gp_refine(
            &self.config,
            artifacts,
            warm,
            eco,
            Some(&mut hook),
        )))
    }

    fn probe(&self, circuit: &Circuit, checkpoint: &Checkpoint) -> Option<crate::RaceProbe> {
        probe_engine_checkpoint(circuit, checkpoint, "eplace-ap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn eplace_a_produces_legal_placements() {
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let result = EPlaceA::new(PlacerConfig::default())
                .place(&circuit)
                .unwrap();
            assert!(
                result.placement.is_legal(&circuit, 1e-6),
                "{} produced illegal placement",
                circuit.name()
            );
            assert!(result.area >= circuit.total_device_area() * 0.99);
            assert!(result.hpwl > 0.0);
        }
    }

    #[test]
    fn eplace_ap_produces_legal_placements() {
        let circuit = testcases::adder();
        let network = Network::default_config(2);
        let placer = EPlaceAP::new(PlacerConfig::default(), PerfConfig::new(0.5, 20.0), network);
        let result = placer.place(&circuit).unwrap();
        assert!(result.placement.is_legal(&circuit, 1e-6));
    }

    fn small_config() -> PlacerConfig {
        PlacerConfig::builder()
            .restarts(2)
            .max_iters(80)
            .build()
            .unwrap()
    }

    #[test]
    fn trait_place_with_unlimited_budget_matches_legacy() {
        let circuit = testcases::adder();
        let placer = EPlaceA::new(small_config());
        let legacy = placer.place(&circuit).unwrap();
        let outcome = Placer::place(&placer, &circuit, &RunBudget::unlimited()).unwrap();
        let sol = outcome.solution().expect("unlimited budget completes");
        assert!(outcome.is_complete());
        assert_eq!(sol.placement, legacy.placement);
        assert_eq!(sol.hpwl.to_bits(), legacy.hpwl.to_bits());
    }

    #[test]
    fn eplace_a_cancel_resume_is_bit_identical() {
        let circuit = testcases::adder();
        let placer = EPlaceA::new(small_config());
        let legacy = placer.place(&circuit).unwrap();
        // Cancel inside the second attempt's GP as well as the first's.
        for cancel_at in [3, 95] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
            let ck = outcome.checkpoint().expect("cancelled").clone();
            // Roundtrip through the text codec like the job engine does.
            let ck = Checkpoint::decode(&ck.encode()).unwrap();
            let resumed = placer
                .resume(&circuit, &ck, &RunBudget::unlimited())
                .unwrap();
            let sol = resumed.solution().expect("resume completes");
            assert!(resumed.is_complete());
            assert_eq!(
                sol.placement, legacy.placement,
                "resume after cancel at check {cancel_at} diverged"
            );
            assert_eq!(sol.hpwl.to_bits(), legacy.hpwl.to_bits());
        }
    }

    #[test]
    fn eplace_ap_cancel_resume_is_bit_identical() {
        let circuit = testcases::adder();
        let network = Network::default_config(2);
        let placer = EPlaceAP::new(small_config(), PerfConfig::new(0.5, 20.0), network);
        let legacy = placer.place(&circuit).unwrap();
        for cancel_at in [0, 11, 90] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
            let ck = outcome.checkpoint().expect("cancelled").clone();
            let ck = Checkpoint::decode(&ck.encode()).unwrap();
            let resumed = placer
                .resume(&circuit, &ck, &RunBudget::unlimited())
                .unwrap();
            let sol = resumed.solution().expect("resume completes");
            assert_eq!(
                sol.placement, legacy.placement,
                "resume after cancel at check {cancel_at} diverged"
            );
            assert_eq!(sol.hpwl.to_bits(), legacy.hpwl.to_bits());
        }
    }

    #[test]
    fn exhausted_runs_return_legal_placements() {
        let circuit = testcases::adder();
        let placer = EPlaceA::new(small_config());
        // Exhaust mid-first-attempt (forces partial-GP legalization) and
        // mid-second-attempt (returns the first attempt's best).
        for steps in [4, 95] {
            let outcome = Placer::place(&placer, &circuit, &RunBudget::steps(steps)).unwrap();
            assert!(outcome.is_exhausted(), "steps {steps}");
            let sol = outcome.solution().unwrap();
            assert!(
                sol.placement.is_legal(&circuit, 1e-6),
                "exhausted placement at {steps} steps must stay legal"
            );
        }
    }

    #[test]
    fn eco_replace_fast_path_is_legal_and_fallback_matches_cold() {
        let circuit = testcases::cc_ota();
        let placer = EPlaceA::new(small_config());
        let artifacts = crate::CircuitArtifacts::build(circuit.clone());
        let cold = placer.place(&circuit).unwrap();
        let warm = crate::eco::warm_checkpoint(&circuit, &cold.placement);
        let delta = analog_netlist::NetlistDelta::parse("resize RB 18k\n").unwrap();

        // Fast path: one dirty device out of 13 stays under the threshold.
        let rep = placer
            .replace(
                &artifacts,
                &delta,
                &warm,
                &RunBudget::unlimited(),
                &crate::EcoConfig::default(),
            )
            .unwrap();
        assert!(rep.outcome.is_fast());
        assert!(rep.dirty_fraction > 0.0 && rep.dirty_fraction < 0.25);
        let sol = rep.outcome.solution().unwrap();
        assert!(sol.placement.is_legal(rep.artifacts.circuit(), 1e-6));

        // Forced fallback is bit-identical to a cold run on the edited
        // circuit.
        let eco0 = crate::EcoConfig {
            dirty_threshold: 0.0,
            ..Default::default()
        };
        let rep2 = placer
            .replace(&artifacts, &delta, &warm, &RunBudget::unlimited(), &eco0)
            .unwrap();
        assert!(!rep2.outcome.is_fast());
        let applied = delta.apply(&circuit).unwrap();
        let cold_edit = placer.place(&applied.circuit).unwrap();
        let fb = rep2.outcome.solution().unwrap();
        assert_eq!(fb.placement, cold_edit.placement);
        assert_eq!(fb.hpwl.to_bits(), cold_edit.hpwl.to_bits());
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let circuit = testcases::adder();
        let placer = EPlaceA::new(small_config());
        let budget = RunBudget::unlimited();
        budget.cancel_after_checks(2);
        let outcome = Placer::place(&placer, &circuit, &budget).unwrap();
        let ck = outcome.checkpoint().unwrap();
        let network = Network::default_config(2);
        let ap = EPlaceAP::new(small_config(), PerfConfig::new(0.5, 20.0), network);
        let err = ap
            .resume(&circuit, ck, &RunBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, PlaceError::BadCheckpoint(_)));
    }
}
