//! End-to-end placement pipelines: ePlace-A and ePlace-AP.

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use placer_gnn::Network;

use crate::detailed::{legalize, DetailedError};
use crate::global::GlobalPlacer;
use crate::perf::run_perf_global;
use crate::{PerfConfig, PlacerConfig};

/// The result of a full placement run.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The final (legal) placement.
    pub placement: Placement,
    /// Exact HPWL (µm), flips included.
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Global placement wall time (s).
    pub gp_seconds: f64,
    /// Detailed placement wall time (s).
    pub dp_seconds: f64,
    /// Global placement iterations.
    pub gp_iterations: usize,
}

/// The ePlace-A analog placer (conventional, performance-oblivious).
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use eplace::{EPlaceA, PlacerConfig};
///
/// # fn main() -> Result<(), eplace::DetailedError> {
/// let circuit = testcases::adder();
/// let placer = EPlaceA::new(PlacerConfig::default());
/// let result = placer.place(&circuit)?;
/// assert!(result.placement.is_legal(&circuit, 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EPlaceA {
    config: PlacerConfig,
}

impl EPlaceA {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs global then detailed placement, keeping the best of
    /// `restarts` seeded attempts (by area·HPWL product).
    ///
    /// # Errors
    ///
    /// Propagates [`DetailedError`] from the legalization ILP when every
    /// restart fails; a single successful restart suffices.
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementResult, DetailedError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("eplace_a_place");
        let _span = SPAN.enter();
        let mut best: Option<PlacementResult> = None;
        let mut last_err: Option<DetailedError> = None;
        let attempts = self.config.restarts.max(1);
        // Restarts vary both the seed and the GP region utilization — the
        // best region density is circuit-dependent.
        let util_ladder = [1.0, 1.0, 1.0, 1.5];
        for k in 0..attempts {
            let mut global_cfg = self.config.global.clone();
            global_cfg.seed = self.config.global.seed + k as u64;
            global_cfg.utilization =
                (global_cfg.utilization * util_ladder[k % util_ladder.len()]).min(0.8);
            let t0 = Instant::now();
            let (gp, stats) = GlobalPlacer::new(global_cfg).run(circuit);
            let gp_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let dp_result = if self.config.preserve_gp {
                crate::DetailedPlacer::new(self.config.detailed.clone())
                    .run_preserving(circuit, &gp)
            } else {
                legalize(circuit, &gp, &self.config.detailed)
            };
            match dp_result {
                Ok((placement, dstats)) => {
                    let candidate = PlacementResult {
                        placement,
                        hpwl: dstats.hpwl,
                        area: dstats.area,
                        gp_seconds: best.as_ref().map_or(0.0, |b| b.gp_seconds) + gp_seconds,
                        dp_seconds: best.as_ref().map_or(0.0, |b| b.dp_seconds)
                            + t1.elapsed().as_secs_f64(),
                        gp_iterations: stats.iterations,
                    };
                    let score = |r: &PlacementResult| r.area * r.hpwl;
                    best = match best {
                        Some(prev) if score(&prev) <= score(&candidate) => Some(PlacementResult {
                            gp_seconds: candidate.gp_seconds,
                            dp_seconds: candidate.dp_seconds,
                            ..prev
                        }),
                        _ => Some(candidate),
                    };
                }
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some(result) => Ok(result),
            None => Err(last_err.expect("at least one attempt ran")),
        }
    }

    /// Runs only global placement (for Table IV's shared-GP comparison).
    pub fn global_only(&self, circuit: &Circuit) -> Placement {
        GlobalPlacer::new(self.config.global.clone()).run(circuit).0
    }
}

/// The ePlace-AP performance-driven placer: ePlace-A plus the GNN term.
#[derive(Debug, Clone)]
pub struct EPlaceAP {
    config: PlacerConfig,
    perf: PerfConfig,
    network: Network,
}

impl EPlaceAP {
    /// Creates a performance-driven placer around a trained model.
    pub fn new(config: PlacerConfig, perf: PerfConfig, network: Network) -> Self {
        Self {
            config,
            perf,
            network,
        }
    }

    /// Runs performance-driven global placement then the (identical)
    /// detailed placement of ePlace-A, keeping the best of `restarts`
    /// seeded attempts. The selection score multiplies area·HPWL by the
    /// model's predicted failure probability Φ of the final placement, so
    /// the restart machinery optimizes the same blend as the objective.
    ///
    /// # Errors
    ///
    /// Propagates [`DetailedError`] from the legalization ILP when every
    /// restart fails.
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementResult, DetailedError> {
        static SPAN: placer_telemetry::SpanStat =
            placer_telemetry::SpanStat::new("eplace_ap_place");
        let _span = SPAN.enter();
        let mut best: Option<(f64, PlacementResult)> = None;
        let mut last_err: Option<DetailedError> = None;
        let mut total_gp = 0.0;
        let mut total_dp = 0.0;
        let attempts = self.config.restarts.max(1);
        let util_ladder = [1.0, 1.0, 1.0, 1.5];
        // Restarts also sweep the GNN weight α: how hard to lean on the
        // performance model is itself a hyperparameter worth exploring. The
        // α = 0 attempt keeps the conventional solution in the candidate
        // pool, so a poorly-calibrated model cannot make things worse than
        // plain ePlace-A under the same selection score.
        let alpha_ladder = [1.0, 0.5, 2.0, 0.0];
        // Scoring graph + inference scratch, shared across restarts (the
        // topology is fixed; only the position features change).
        let mut graph: Option<placer_gnn::CircuitGraph> = None;
        let mut scratch = placer_gnn::InferenceScratch::new(&self.network, circuit.num_devices());
        for k in 0..attempts {
            let mut global_cfg = self.config.global.clone();
            global_cfg.seed = self.config.global.seed + k as u64;
            global_cfg.utilization =
                (global_cfg.utilization * util_ladder[k % util_ladder.len()]).min(0.8);
            let mut perf_cfg = self.perf.clone();
            perf_cfg.alpha *= alpha_ladder[k % alpha_ladder.len()];
            let t0 = Instant::now();
            let (gp, stats) = run_perf_global(circuit, &global_cfg, &perf_cfg, &self.network);
            total_gp += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            // Structure-preserving legalization: the GNN guidance lives in
            // the GP's relative ordering, which the reassignment passes of
            // the conventional flow would discard.
            let dp = crate::DetailedPlacer::new(self.config.detailed.clone());
            match dp.run_preserving(circuit, &gp) {
                Ok((placement, dstats)) => {
                    total_dp += t1.elapsed().as_secs_f64();
                    let g = match graph.as_mut() {
                        Some(g) => {
                            g.update_positions(&placement);
                            g
                        }
                        None => {
                            graph = Some(placer_gnn::CircuitGraph::new(
                                circuit,
                                &placement,
                                self.perf.scale,
                            ));
                            graph.as_mut().expect("just inserted")
                        }
                    };
                    let phi = self.network.predict_with(g, &mut scratch);
                    let score = dstats.area * dstats.hpwl * (0.3 + phi);
                    let candidate = PlacementResult {
                        placement,
                        hpwl: dstats.hpwl,
                        area: dstats.area,
                        gp_seconds: total_gp,
                        dp_seconds: total_dp,
                        gp_iterations: stats.iterations,
                    };
                    best = match best {
                        Some((best_score, prev)) if best_score <= score => Some((best_score, prev)),
                        _ => Some((score, candidate)),
                    };
                }
                Err(e) => {
                    total_dp += t1.elapsed().as_secs_f64();
                    last_err = Some(e);
                }
            }
        }
        match best {
            Some((_, mut result)) => {
                result.gp_seconds = total_gp;
                result.dp_seconds = total_dp;
                Ok(result)
            }
            None => Err(last_err.expect("at least one attempt ran")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn eplace_a_produces_legal_placements() {
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let result = EPlaceA::new(PlacerConfig::default())
                .place(&circuit)
                .unwrap();
            assert!(
                result.placement.is_legal(&circuit, 1e-6),
                "{} produced illegal placement",
                circuit.name()
            );
            assert!(result.area >= circuit.total_device_area() * 0.99);
            assert!(result.hpwl > 0.0);
        }
    }

    #[test]
    fn eplace_ap_produces_legal_placements() {
        let circuit = testcases::adder();
        let network = Network::default_config(2);
        let placer = EPlaceAP::new(PlacerConfig::default(), PerfConfig::new(0.5, 20.0), network);
        let result = placer.place(&circuit).unwrap();
        assert!(result.placement.is_legal(&circuit, 1e-6));
    }
}
