//! Incremental ECO re-placement: delta preparation, warm-start carriers
//! and region-bounded re-legalization.
//!
//! An engineering change order (ECO) edits a handful of devices late in
//! the flow — a resistor resize, a decap added, a pin re-hooked. Cold
//! re-placement answers it by throwing the whole layout away; this module
//! answers it incrementally:
//!
//! 1. [`prepare`] applies a [`NetlistDelta`] to the circuit behind a
//!    [`CircuitArtifacts`] bundle and **patches** the artifacts (CSR row
//!    splice, GNN feature rewrite, density-template reuse) instead of
//!    rebuilding them.
//! 2. [`warm_placement`] maps the previous solution onto the edited
//!    circuit by device name and seeds any new devices at the centroid of
//!    their placed net neighbors.
//! 3. Each placer's `eco_refine` hook (see
//!    [`Placer::replace`](crate::Placer::replace)) runs a short
//!    trust-region schedule from that warm state.
//! 4. [`finish_region`] re-legalizes **only the affected region**: devices
//!    inside a dilated bounding box of the edit move freely, everything
//!    else is pinned to its warm position by a heavy displacement cost.
//!
//! When the edit dirties too much of the circuit
//! ([`EcoConfig::dirty_threshold`]) the fast path is not worth running;
//! [`Placer::replace`](crate::Placer::replace) falls back to a cold
//! `place_artifacts` on the patched bundle, which is bit-identical to a
//! from-scratch run and serves as the correctness reference.

use crate::artifacts::CircuitArtifacts;
use crate::checkpoint::Checkpoint;
use crate::error::PlaceError;
use crate::placer::{expect_placer, PlaceOutcome, PlaceSolution};
use crate::sepplan::SeparationPlanner;
use analog_netlist::{AlignKind, AppliedDelta, Axis, Circuit, DeviceId, NetlistDelta, Placement};
use placer_mathopt::{ConstraintOp, Model, VarId};
use std::sync::Arc;

/// Knobs of the incremental re-placement fast path.
#[derive(Debug, Clone)]
pub struct EcoConfig {
    /// Fall back to cold placement when the delta dirties more than this
    /// fraction of the devices. The fallback is the bit-exactness
    /// reference, so raising this only trades speed for quality — never
    /// correctness.
    pub dirty_threshold: f64,
    /// Iteration budget of the warm refinement schedule (Nesterov / CG
    /// iterations, or SA polish moves per dirty block).
    pub refine_iters: usize,
    /// Re-legalization region: the dirty devices' warm bounding box is
    /// dilated by this multiple of the largest dirty-device diagonal.
    pub margin: f64,
    /// Displacement cost of out-of-region devices in the repair LP
    /// (in-region devices cost 1). Large values pin the untouched layout.
    pub pin_cost: f64,
}

impl Default for EcoConfig {
    fn default() -> Self {
        Self {
            dirty_threshold: 0.25,
            refine_iters: 12,
            margin: 2.0,
            pin_cost: 1e4,
        }
    }
}

/// How [`Placer::replace`](crate::Placer::replace) produced its solution.
#[derive(Debug, Clone)]
pub enum EcoOutcome {
    /// The incremental fast path ran: warm refinement plus region-bounded
    /// re-legalization.
    Fast(PlaceSolution),
    /// The delta dirtied too much of the circuit; a cold budgeted run on
    /// the patched artifacts was performed instead (bit-identical to
    /// placing the edited circuit from scratch).
    FellBack(PlaceOutcome),
}

impl EcoOutcome {
    /// The solution, when one was produced (fast, or fallback
    /// complete/exhausted).
    pub fn solution(&self) -> Option<&PlaceSolution> {
        match self {
            EcoOutcome::Fast(s) => Some(s),
            EcoOutcome::FellBack(o) => o.solution(),
        }
    }

    /// True for the incremental fast path.
    pub fn is_fast(&self) -> bool {
        matches!(self, EcoOutcome::Fast(_))
    }

    /// Short status tag (`"fast"` / `"fallback"`) for job reports.
    pub fn status(&self) -> &'static str {
        match self {
            EcoOutcome::Fast(_) => "fast",
            EcoOutcome::FellBack(_) => "fallback",
        }
    }
}

/// Result of an incremental re-placement: the patched artifacts (ready to
/// serve as the cache entry for the edited circuit) plus the outcome.
#[derive(Debug)]
pub struct EcoReplace {
    /// Artifacts of the **edited** circuit, produced by patching rather
    /// than rebuilding; interchangeable with a cold
    /// [`CircuitArtifacts::build`].
    pub artifacts: Arc<CircuitArtifacts>,
    /// Fraction of devices the delta dirtied (drove the path choice).
    pub dirty_fraction: f64,
    /// The fast-path solution or the cold fallback outcome.
    pub outcome: EcoOutcome,
}

/// Applies `delta` to the circuit behind `artifacts` and patches the
/// artifact bundle in place of a rebuild.
///
/// # Errors
///
/// Returns [`PlaceError::Delta`] when the delta references unknown
/// devices/nets or the edited circuit fails validation.
pub fn prepare(
    artifacts: &CircuitArtifacts,
    delta: &NetlistDelta,
) -> Result<(Arc<CircuitArtifacts>, AppliedDelta), PlaceError> {
    let applied = delta.apply(artifacts.circuit())?;
    let patched = artifacts.patched(&applied);
    Ok((patched, applied))
}

/// Packs a placement into a warm-start [`Checkpoint`] (`"eco-warm"`).
///
/// The checkpoint carries the previous solution across the edit; device
/// identity is re-established by **name** in [`warm_placement`], so the
/// carrier stays valid even when the delta removes devices and shifts ids.
pub fn warm_checkpoint(circuit: &Circuit, placement: &Placement) -> Checkpoint {
    let mut ck = Checkpoint::new("eco-warm");
    ck.put_u64("n", circuit.num_devices() as u64);
    let xs: Vec<f64> = placement.positions.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = placement.positions.iter().map(|p| p.1).collect();
    let fx: Vec<bool> = placement.flips.iter().map(|f| f.0).collect();
    let fy: Vec<bool> = placement.flips.iter().map(|f| f.1).collect();
    ck.put_f64s("x", &xs);
    ck.put_f64s("y", &ys);
    ck.put_bools("fx", &fx);
    ck.put_bools("fy", &fy);
    ck
}

/// Maps an `"eco-warm"` checkpoint taken on `old` onto the edited circuit
/// `new`.
///
/// Surviving devices are matched by name and keep their position and flip
/// state. Devices new to the edited circuit are seeded at the centroid of
/// their already-placed routable-net neighbors (falling back to the mean
/// of all warm positions for devices with no placed neighbor).
///
/// # Errors
///
/// Returns [`PlaceError::BadCheckpoint`] when the checkpoint was not
/// written by the warm-start carrier or its vectors disagree with `old`.
pub fn warm_placement(
    old: &Circuit,
    new: &Circuit,
    warm: &Checkpoint,
) -> Result<Placement, PlaceError> {
    expect_placer(warm, "eco-warm")?;
    let n = warm.get_u64("n")? as usize;
    let xs = warm.get_f64s("x")?;
    let ys = warm.get_f64s("y")?;
    let fx = warm.get_bools("fx")?;
    let fy = warm.get_bools("fy")?;
    if n != old.num_devices() || xs.len() != n || ys.len() != n || fx.len() != n || fy.len() != n {
        return Err(PlaceError::BadCheckpoint(crate::CheckpointError {
            line: 0,
            message: format!(
                "warm checkpoint has {} devices, circuit `{}` has {}",
                xs.len().min(n),
                old.name(),
                old.num_devices()
            ),
        }));
    }
    let mut placement = Placement::new(new.num_devices());
    let mut mapped = vec![false; new.num_devices()];
    for (id, d) in new.device_ids() {
        if let Some(old_id) = old.find_device(&d.name) {
            let o = old_id.index();
            placement.positions[id.index()] = (xs[o], ys[o]);
            placement.flips[id.index()] = (fx[o], fy[o]);
            mapped[id.index()] = true;
        }
    }
    // Fallback seed: mean of all warm positions (the layout's mass center).
    let fallback = if n > 0 {
        (
            xs.iter().sum::<f64>() / n as f64,
            ys.iter().sum::<f64>() / n as f64,
        )
    } else {
        (0.0, 0.0)
    };
    for i in 0..new.num_devices() {
        if mapped[i] {
            continue;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut cnt = 0usize;
        for pin in &new.device(DeviceId::new(i)).pins {
            let net = &new.nets()[pin.net.index()];
            if !net.is_routable() {
                continue;
            }
            for p in &net.pins {
                let j = p.device.index();
                if j != i && mapped[j] {
                    let (x, y) = placement.positions[j];
                    cx += x;
                    cy += y;
                    cnt += 1;
                }
            }
        }
        placement.positions[i] = if cnt > 0 {
            (cx / cnt as f64, cy / cnt as f64)
        } else {
            fallback
        };
    }
    Ok(placement)
}

/// Computes the re-legalization region: dirty devices plus every device
/// whose warm center falls inside the dirty outlines' bounding box
/// dilated by `margin ×` the largest dirty-device diagonal.
///
/// Returns all-`false` when nothing is dirty (the repair then only has to
/// absorb rounding, with everything pinned).
pub fn region_mask(circuit: &Circuit, warm: &Placement, dirty: &[bool], margin: f64) -> Vec<bool> {
    let n = circuit.num_devices();
    let mut mask = vec![false; n];
    let mut x0 = f64::INFINITY;
    let mut y0 = f64::INFINITY;
    let mut x1 = f64::NEG_INFINITY;
    let mut y1 = f64::NEG_INFINITY;
    let mut max_diag = 0.0f64;
    let mut any = false;
    for (i, d) in circuit.devices().iter().enumerate() {
        if !dirty.get(i).copied().unwrap_or(false) {
            continue;
        }
        any = true;
        let (cx, cy) = warm.positions[i];
        x0 = x0.min(cx - d.width / 2.0);
        y0 = y0.min(cy - d.height / 2.0);
        x1 = x1.max(cx + d.width / 2.0);
        y1 = y1.max(cy + d.height / 2.0);
        max_diag = max_diag.max((d.width * d.width + d.height * d.height).sqrt());
    }
    if !any {
        return mask;
    }
    let dilate = margin * max_diag;
    x0 -= dilate;
    y0 -= dilate;
    x1 += dilate;
    y1 += dilate;
    for (i, m) in mask.iter_mut().enumerate().take(n) {
        let (cx, cy) = warm.positions[i];
        *m = dirty.get(i).copied().unwrap_or(false)
            || (cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1);
    }
    mask
}

fn axis_extent(circuit: &Circuit, axis: usize, d: DeviceId) -> f64 {
    let dev = circuit.device(d);
    if axis == 0 {
        dev.width
    } else {
        dev.height
    }
}

fn region_repair_axis(
    circuit: &Circuit,
    axis: usize,
    targets: &[f64],
    edges: &[(DeviceId, DeviceId)],
    region: &[bool],
    pin_cost: f64,
) -> Result<Vec<f64>, PlaceError> {
    let n = circuit.num_devices();
    let mut model = Model::new();
    let xs: Vec<VarId> = (0..n)
        .map(|i| {
            let half = axis_extent(circuit, axis, DeviceId::new(i)) / 2.0;
            model.add_var(format!("c{i}"), half, f64::INFINITY, 0.0)
        })
        .collect();
    // Displacement |x − target| via two rows per device. Out-of-region
    // devices pay `pin_cost` per µm, which keeps them glued to the warm
    // layout unless a constraint forces them to yield.
    for (i, &x) in xs.iter().enumerate() {
        let cost = if region[i] { 1.0 } else { pin_cost };
        let d = model.add_var(format!("d{i}"), 0.0, f64::INFINITY, cost);
        model.add_constraint(vec![(d, 1.0), (x, -1.0)], ConstraintOp::Ge, -targets[i]);
        model.add_constraint(vec![(d, 1.0), (x, 1.0)], ConstraintOp::Ge, targets[i]);
    }
    for &(a, b) in edges {
        let gap = (axis_extent(circuit, axis, a) + axis_extent(circuit, axis, b)) / 2.0;
        model.add_constraint(
            vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
            ConstraintOp::Le,
            -gap,
        );
    }
    for g in &circuit.constraints().symmetry_groups {
        let on_axis = matches!((g.axis, axis), (Axis::Vertical, 0) | (Axis::Horizontal, 1));
        if on_axis {
            let m = model.add_var(format!("m_{}", g.name), 0.0, f64::INFINITY, 0.0);
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], 1.0), (m, -2.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            for &s in &g.self_symmetric {
                model.add_constraint(vec![(xs[s.index()], 1.0), (m, -1.0)], ConstraintOp::Eq, 0.0);
            }
        } else {
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
        }
    }
    for al in &circuit.constraints().alignments {
        match (al.kind, axis) {
            (AlignKind::Bottom, 1) => {
                let ha = axis_extent(circuit, 1, al.a) / 2.0;
                let hb = axis_extent(circuit, 1, al.b) / 2.0;
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    ha - hb,
                );
            }
            (AlignKind::VerticalCenter, 0) => {
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            _ => {}
        }
    }
    let sol = model.solve_lp()?;
    Ok(xs.iter().map(|&x| sol.value(x)).collect())
}

/// Region-bounded constraint repair: minimal **weighted** displacement
/// from `target` subject to the exact constraints and `target`'s relative
/// orders, where out-of-region devices pay [`EcoConfig::pin_cost`] per µm
/// of movement.
///
/// This is the ECO variant of the annealer's repair LP: same rows, but
/// the objective pins the untouched part of the layout instead of
/// treating every device equally.
///
/// # Errors
///
/// Returns [`PlaceError::Solve`] when the constraint system is
/// infeasible (inconsistent circuit constraints).
pub fn region_repair(
    circuit: &Circuit,
    target: &Placement,
    region: &[bool],
    pin_cost: f64,
) -> Result<Placement, PlaceError> {
    let mut planner = SeparationPlanner::new(circuit);
    planner.extend_all_pairs(circuit, target);
    let tx: Vec<f64> = target.positions.iter().map(|p| p.0).collect();
    let ty: Vec<f64> = target.positions.iter().map(|p| p.1).collect();
    let xs = region_repair_axis(circuit, 0, &tx, planner.x_edges(), region, pin_cost)?;
    let ys = region_repair_axis(circuit, 1, &ty, planner.y_edges(), region, pin_cost)?;
    let mut placement = target.clone();
    for i in 0..circuit.num_devices() {
        placement.positions[i] = (xs[i], ys[i]);
    }
    Ok(placement)
}

/// Blends the refined coordinates into the warm layout and re-legalizes
/// the affected region.
///
/// In-region devices take their positions (and flips) from `refined`;
/// everything else keeps its warm state, then [`region_repair`] snaps the
/// blend to exact legality with out-of-region devices pinned.
///
/// # Errors
///
/// Returns [`PlaceError::Solve`] when the repair LP is infeasible.
pub fn finish_region(
    circuit: &Circuit,
    refined: &Placement,
    warm: &Placement,
    region: &[bool],
    pin_cost: f64,
) -> Result<Placement, PlaceError> {
    let mut blended = warm.clone();
    for (i, &inside) in region.iter().enumerate().take(circuit.num_devices()) {
        if inside {
            blended.positions[i] = refined.positions[i];
            blended.flips[i] = refined.flips[i];
        }
    }
    region_repair(circuit, &blended, region, pin_cost)
}

/// Assembles the fast-path [`PlaceSolution`] from a legalized placement.
pub(crate) fn fast_solution(
    circuit: &Circuit,
    placement: Placement,
    stage1_seconds: f64,
    stage2_seconds: f64,
    iterations: usize,
) -> PlaceSolution {
    let hpwl = placement.hpwl(circuit);
    let area = placement.area(circuit);
    PlaceSolution {
        placement,
        hpwl,
        area,
        stage1_seconds,
        stage2_seconds,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn spread_row(circuit: &Circuit) -> Placement {
        let mut p = Placement::new(circuit.num_devices());
        let mut x = 0.0;
        for (i, d) in circuit.devices().iter().enumerate() {
            x += d.width / 2.0 + 1.0;
            p.positions[i] = (x, 0.0);
            x += d.width / 2.0 + 1.0;
        }
        p
    }

    #[test]
    fn warm_checkpoint_roundtrips_onto_same_circuit() {
        let c = testcases::cc_ota();
        let p = spread_row(&c);
        let ck = warm_checkpoint(&c, &p);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        let mapped = warm_placement(&c, &c, &back).unwrap();
        assert_eq!(mapped, p);
    }

    #[test]
    fn warm_placement_seeds_new_devices_near_neighbors() {
        let c = testcases::cc_ota();
        let p = spread_row(&c);
        let ck = warm_checkpoint(&c, &p);
        let delta = NetlistDelta::parse("add CX cap 10f outp vss\n").unwrap();
        let applied = delta.apply(&c).unwrap();
        let mapped = warm_placement(&c, &applied.circuit, &ck).unwrap();
        let cx = applied.circuit.find_device("CX").unwrap();
        // Surviving devices keep their coordinates.
        for (id, d) in c.device_ids() {
            let new_id = applied.circuit.find_device(&d.name).unwrap();
            assert_eq!(mapped.positions[new_id.index()], p.positions[id.index()]);
        }
        // The new cap lands at the centroid of its placed net neighbors,
        // inside the row's x span.
        let (x, y) = mapped.positions[cx.index()];
        let span: Vec<f64> = p.positions.iter().map(|q| q.0).collect();
        let lo = span.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = span.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(x >= lo && x <= hi && y.abs() < 1e-9);
    }

    #[test]
    fn warm_placement_rejects_foreign_checkpoints() {
        let c = testcases::cc_ota();
        let bad = Checkpoint::new("sa");
        assert!(matches!(
            warm_placement(&c, &c, &bad),
            Err(PlaceError::BadCheckpoint(_))
        ));
        let mut truncated = warm_checkpoint(&c, &spread_row(&c));
        truncated = {
            let mut ck = Checkpoint::new("eco-warm");
            ck.put_u64("n", 2);
            for name in ["x", "y"] {
                ck.put_f64s(name, truncated.get_f64s(name).unwrap());
            }
            ck.put_bools("fx", truncated.get_bools("fx").unwrap());
            ck.put_bools("fy", truncated.get_bools("fy").unwrap());
            ck
        };
        assert!(matches!(
            warm_placement(&c, &c, &truncated),
            Err(PlaceError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn region_mask_covers_dirty_devices_and_their_surroundings() {
        let c = testcases::cc_ota();
        let p = spread_row(&c);
        let rb = c.find_device("RB").unwrap();
        let mut dirty = vec![false; c.num_devices()];
        dirty[rb.index()] = true;
        let mask = region_mask(&c, &p, &dirty, 2.0);
        assert!(mask[rb.index()]);
        assert!(mask.iter().filter(|&&m| m).count() < c.num_devices());
        // No dirty devices → nothing in the region.
        let empty = region_mask(&c, &p, &vec![false; c.num_devices()], 2.0);
        assert!(empty.iter().all(|&m| !m));
    }

    #[test]
    fn finish_region_produces_a_legal_placement() {
        let c = testcases::cc_ota();
        let warm = spread_row(&c);
        let rb = c.find_device("RB").unwrap();
        let mut dirty = vec![false; c.num_devices()];
        dirty[rb.index()] = true;
        let region = region_mask(&c, &warm, &dirty, 2.0);
        // Nudge the dirty device; finish_region must restore exact
        // legality without tearing up the rest of the row.
        let mut refined = warm.clone();
        refined.positions[rb.index()].0 += 0.75;
        let out = finish_region(&c, &refined, &warm, &region, 1e4).unwrap();
        assert!(out.is_legal(&c, 1e-6));
    }
}
