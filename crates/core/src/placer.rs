//! The unified placement front door: one trait, one outcome type.
//!
//! Every pipeline in the workspace — `EPlaceA`, `EPlaceAP` (this crate),
//! `SaPlacer` (`placer-sa`) and `Xu19Placer` (`placer-xu19`) — implements
//! [`Placer`], so job engines and benchmarks can hold a
//! `&dyn Placer` and not care which algorithm is behind it. The trait
//! methods take a [`RunBudget`](crate::RunBudget) and return a
//! [`PlaceOutcome`]:
//!
//! - [`Complete`](PlaceOutcome::Complete): the algorithm ran to its
//!   natural convergence. With an unlimited budget this is bit-identical
//!   to the pipeline's legacy entry point.
//! - [`Exhausted`](PlaceOutcome::Exhausted): the budget expired; the
//!   solution is the best-so-far state, **legalized** — callers can always
//!   tape it out, it is just potentially worse than a full run.
//! - [`Cancelled`](PlaceOutcome::Cancelled): cooperative cancellation hit
//!   first; the payload is a [`Checkpoint`](crate::Checkpoint) from which
//!   [`Placer::resume`] reproduces the uninterrupted run bit-for-bit.

use crate::artifacts::CircuitArtifacts;
use crate::checkpoint::Checkpoint;
use crate::eco::{self, EcoConfig, EcoOutcome, EcoReplace};
use crate::error::PlaceError;
use crate::RunBudget;
use analog_netlist::{Circuit, NetlistDelta, Placement};
use std::time::Instant;

/// A deterministic best-so-far quality estimate read from a checkpoint,
/// used by portfolio racing to compare paused runs without resuming them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceProbe {
    /// Best-so-far half-perimeter wirelength.
    pub hpwl: f64,
    /// Best-so-far bounding-box area.
    pub area: f64,
}

impl RaceProbe {
    /// The scalar figure of merit the tournament compares: `hpwl × area`
    /// (the same product the restart ladders in this workspace rank by).
    pub fn fom(&self) -> f64 {
        self.hpwl * self.area
    }
}

/// A finished (complete or best-so-far) legalized placement plus its
/// quality metrics and timing breakdown.
#[derive(Debug, Clone)]
pub struct PlaceSolution {
    /// The legalized placement.
    pub placement: Placement,
    /// Half-perimeter wirelength of `placement`.
    pub hpwl: f64,
    /// Bounding-box area of `placement`.
    pub area: f64,
    /// Seconds spent in stage 1 (global placement / annealing).
    pub stage1_seconds: f64,
    /// Seconds spent in stage 2 (legalization / repair).
    pub stage2_seconds: f64,
    /// Optimizer iterations (Nesterov/CG iterations or SA moves).
    pub iterations: usize,
}

/// What a budgeted placement run produced.
#[derive(Debug, Clone)]
pub enum PlaceOutcome {
    /// Ran to natural convergence.
    Complete(PlaceSolution),
    /// Budget expired; best-so-far, still legalized.
    Exhausted(PlaceSolution),
    /// Cancelled; resume from the checkpoint to finish the run.
    Cancelled(Checkpoint),
}

impl PlaceOutcome {
    /// The solution, if the run produced one (complete or exhausted).
    pub fn solution(&self) -> Option<&PlaceSolution> {
        match self {
            PlaceOutcome::Complete(s) | PlaceOutcome::Exhausted(s) => Some(s),
            PlaceOutcome::Cancelled(_) => None,
        }
    }

    /// The checkpoint, if the run was cancelled.
    pub fn checkpoint(&self) -> Option<&Checkpoint> {
        match self {
            PlaceOutcome::Cancelled(ck) => Some(ck),
            _ => None,
        }
    }

    /// True for [`PlaceOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, PlaceOutcome::Complete(_))
    }

    /// True for [`PlaceOutcome::Exhausted`].
    pub fn is_exhausted(&self) -> bool {
        matches!(self, PlaceOutcome::Exhausted(_))
    }

    /// True for [`PlaceOutcome::Cancelled`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, PlaceOutcome::Cancelled(_))
    }

    /// Short status tag (`"complete"` / `"exhausted"` / `"cancelled"`)
    /// for logs and job reports.
    pub fn status(&self) -> &'static str {
        match self {
            PlaceOutcome::Complete(_) => "complete",
            PlaceOutcome::Exhausted(_) => "exhausted",
            PlaceOutcome::Cancelled(_) => "cancelled",
        }
    }
}

/// A budgeted, cancellable, resumable placement algorithm.
///
/// Implementations must uphold three contracts:
///
/// 1. **Unlimited budget ≡ legacy run.** With
///    [`RunBudget::unlimited`](crate::RunBudget::unlimited) and no
///    cancellation, the returned solution is bit-identical to the
///    pipeline's original entry point for the same config and seed.
/// 2. **Exhausted is legal.** When the budget expires the placer
///    legalizes its best-so-far state before returning, so the
///    placement in [`PlaceOutcome::Exhausted`] satisfies the same
///    legality invariants as a complete run.
/// 3. **Resume is exact.** `place` until cancelled, then `resume` from
///    the returned checkpoint (any number of times, at any boundary),
///    yields the same final placement — bit-for-bit — as a single
///    uninterrupted `place`.
pub trait Placer: Sync {
    /// Stable machine-readable identifier (`"eplace-a"`, `"sa"`, ...);
    /// stamped into checkpoints and job reports.
    fn name(&self) -> &'static str;

    /// Runs placement under `budget`.
    fn place(&self, circuit: &Circuit, budget: &RunBudget) -> Result<PlaceOutcome, PlaceError>;

    /// Continues a cancelled run from `checkpoint` under a fresh budget.
    fn resume(
        &self,
        circuit: &Circuit,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError>;

    /// Runs placement against pre-built shared artifacts.
    ///
    /// Must be bit-identical to [`place`](Self::place) on
    /// `artifacts.circuit()` — the artifacts carry exactly the state the
    /// cold path would rebuild. The default implementation simply delegates
    /// (correct, but amortizes nothing); implementations override it to
    /// reuse the shared plans.
    fn place_artifacts(
        &self,
        artifacts: &CircuitArtifacts,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        self.place(artifacts.circuit(), budget)
    }

    /// Continues a cancelled run from `checkpoint` against pre-built shared
    /// artifacts; same contract as [`place_artifacts`](Self::place_artifacts)
    /// relative to [`resume`](Self::resume).
    fn resume_artifacts(
        &self,
        artifacts: &CircuitArtifacts,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        self.resume(artifacts.circuit(), checkpoint, budget)
    }

    /// Incrementally re-places after an ECO delta.
    ///
    /// The default implementation is the full engine; pipelines customize
    /// it through [`eco_refine`](Self::eco_refine) rather than overriding
    /// this method:
    ///
    /// 1. apply `delta` and **patch** `artifacts` (no rebuild);
    /// 2. if the delta dirtied more than
    ///    [`EcoConfig::dirty_threshold`] of the devices, fall back to a
    ///    cold [`place_artifacts`](Self::place_artifacts) on the patched
    ///    bundle — bit-identical to placing the edited circuit from
    ///    scratch ([`EcoOutcome::FellBack`]);
    /// 3. otherwise map `warm_start` (an `"eco-warm"` checkpoint from
    ///    [`eco::warm_checkpoint`]) onto the edited circuit, run the
    ///    placer's short warm refinement, and re-legalize only the
    ///    affected region ([`EcoOutcome::Fast`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Delta`] when the delta fails to apply,
    /// [`PlaceError::BadCheckpoint`] when `warm_start` is not a usable
    /// warm carrier, or any error the fallback / refinement surfaces.
    fn replace(
        &self,
        artifacts: &CircuitArtifacts,
        delta: &NetlistDelta,
        warm_start: &Checkpoint,
        budget: &RunBudget,
        eco: &EcoConfig,
    ) -> Result<EcoReplace, PlaceError> {
        let (patched, applied) = eco::prepare(artifacts, delta)?;
        let dirty_fraction = applied.dirty_fraction();
        if dirty_fraction > eco.dirty_threshold {
            let outcome = self.place_artifacts(&patched, budget)?;
            return Ok(EcoReplace {
                artifacts: patched,
                dirty_fraction,
                outcome: EcoOutcome::FellBack(outcome),
            });
        }
        let t0 = Instant::now();
        let warm = eco::warm_placement(artifacts.circuit(), patched.circuit(), warm_start)?;
        let refined = self.eco_refine(&patched, &warm, &applied.dirty, eco)?;
        let (stage1, iterations) = match refined {
            Some((p, it)) => (p, it),
            None => (warm.clone(), 0),
        };
        let stage1_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let region = eco::region_mask(patched.circuit(), &warm, &applied.dirty, eco.margin);
        let placement =
            eco::finish_region(patched.circuit(), &stage1, &warm, &region, eco.pin_cost)?;
        let solution = eco::fast_solution(
            patched.circuit(),
            placement,
            stage1_seconds,
            t1.elapsed().as_secs_f64(),
            iterations,
        );
        Ok(EcoReplace {
            artifacts: patched,
            dirty_fraction,
            outcome: EcoOutcome::Fast(solution),
        })
    }

    /// Warm refinement hook of the ECO fast path: starting from the warm
    /// placement (already mapped onto the edited circuit behind
    /// `artifacts`), run a short placer-specific trust-region schedule
    /// and return the refined coordinates plus the iterations spent.
    ///
    /// The default returns `Ok(None)`: the engine then legalizes straight
    /// from the warm state, which is correct (region repair restores
    /// exact legality) but skips quality recovery. Pipelines override
    /// this with a warm-started, budget-capped run of their own
    /// optimizer.
    ///
    /// # Errors
    ///
    /// Implementations surface their optimizer's failures unchanged.
    fn eco_refine(
        &self,
        artifacts: &CircuitArtifacts,
        warm: &Placement,
        dirty: &[bool],
        eco: &EcoConfig,
    ) -> Result<Option<(Placement, usize)>, PlaceError> {
        let _ = (artifacts, warm, dirty, eco);
        Ok(None)
    }

    /// Reads a deterministic best-so-far quality estimate out of one of
    /// this placer's checkpoints, without resuming it.
    ///
    /// Returns `None` when the checkpoint carries no comparable state yet
    /// (or the placer does not support probing); the tournament scheduler
    /// then treats the run as not-yet-rankable and keeps it alive. The
    /// probe must be a pure function of the checkpoint text so racing
    /// decisions are identical across thread counts.
    fn probe(&self, circuit: &Circuit, checkpoint: &Checkpoint) -> Option<RaceProbe> {
        let _ = (circuit, checkpoint);
        None
    }
}

/// Verifies a checkpoint was written by `expected` before a resume
/// touches any of its fields; shared by all four [`Placer`]
/// implementations (including the ones in `placer-sa` / `placer-xu19`).
pub fn expect_placer(ck: &Checkpoint, expected: &str) -> Result<(), PlaceError> {
    if ck.placer() != expected {
        return Err(PlaceError::BadCheckpoint(crate::CheckpointError {
            line: 0,
            message: format!(
                "checkpoint written by `{}`, cannot resume with `{expected}`",
                ck.placer()
            ),
        }));
    }
    Ok(())
}
