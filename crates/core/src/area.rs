//! The smoothed area term `Area(v) = WA_{V,x}(v) · WA_{V,y}(v)` (§IV-A).
//!
//! The spread in each axis is the WA-smoothed extent of all device
//! *outline edges* (left/right or bottom/top), so the term tracks the true
//! bounding-box area rather than the center spread.

use analog_netlist::Circuit;

use crate::wirelength::wa_spread_with_grad;

/// Evaluates the smoothed area and accumulates its gradient (scaled by
/// `weight`) into `grad` (`[dx…, dy…]`). Returns the smoothed area value.
///
/// # Panics
///
/// Panics on size mismatches.
pub fn area_term(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    weight: f64,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    assert_eq!(positions.len(), n, "positions length mismatch");
    assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
    if n == 0 {
        return 0.0;
    }

    // Edge coordinate lists: [x−w/2, x+w/2] per device, same for y.
    let mut xs = Vec::with_capacity(2 * n);
    let mut ys = Vec::with_capacity(2 * n);
    for (i, d) in circuit.devices().iter().enumerate() {
        let (cx, cy) = positions[i];
        xs.push(cx - d.width / 2.0);
        xs.push(cx + d.width / 2.0);
        ys.push(cy - d.height / 2.0);
        ys.push(cy + d.height / 2.0);
    }
    let mut gx = vec![0.0; 2 * n];
    let mut gy = vec![0.0; 2 * n];
    let wx = wa_spread_with_grad(&xs, gamma, &mut gx);
    let wy = wa_spread_with_grad(&ys, gamma, &mut gy);
    let area = wx * wy;

    // d(wx·wy)/dx_i = wy · (gx[2i] + gx[2i+1]); both edges move with x_i.
    for i in 0..n {
        grad[i] += weight * wy * (gx[2 * i] + gx[2 * i + 1]);
        grad[n + i] += weight * wx * (gy[2 * i] + gy[2 * i + 1]);
    }
    area
}

/// Exact bounding-box area with the same outline model (for tests).
pub fn exact_area(circuit: &Circuit, positions: &[(f64, f64)]) -> f64 {
    let mut x0 = f64::INFINITY;
    let mut x1 = f64::NEG_INFINITY;
    let mut y0 = f64::INFINITY;
    let mut y1 = f64::NEG_INFINITY;
    for (i, d) in circuit.devices().iter().enumerate() {
        let (cx, cy) = positions[i];
        x0 = x0.min(cx - d.width / 2.0);
        x1 = x1.max(cx + d.width / 2.0);
        y0 = y0.min(cy - d.height / 2.0);
        y1 = y1.max(cy + d.height / 2.0);
    }
    if x1 > x0 && y1 > y0 {
        (x1 - x0) * (y1 - y0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn smoothed_area_tracks_exact_area() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 4) as f64 * 5.0, (i / 4) as f64 * 4.0))
            .collect();
        let mut grad = vec![0.0; 2 * n];
        let smooth = area_term(&c, &positions, 0.05, 1.0, &mut grad);
        let exact = exact_area(&c, &positions);
        assert!(
            (smooth - exact).abs() / exact < 0.05,
            "smooth {smooth} vs exact {exact}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let c = testcases::adder();
        let n = c.num_devices();
        let mut positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i as f64 * 1.9) % 8.0, (i as f64 * 1.3) % 6.0))
            .collect();
        let gamma = 1.0;
        let mut grad = vec![0.0; 2 * n];
        area_term(&c, &positions, gamma, 1.0, &mut grad);
        let eps = 1e-6;
        let mut scratch = vec![0.0; 2 * n];
        for dev in [0usize, n / 2, n - 1] {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            scratch.iter_mut().for_each(|g| *g = 0.0);
            let fp = area_term(&c, &positions, gamma, 1.0, &mut scratch);
            positions[dev] = (orig.0 - eps, orig.1);
            scratch.iter_mut().for_each(|g| *g = 0.0);
            let fm = area_term(&c, &positions, gamma, 1.0, &mut scratch);
            positions[dev] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[dev]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "dev {dev}: numeric {numeric} vs analytic {}",
                grad[dev]
            );
        }
    }

    #[test]
    fn shrinking_spread_reduces_area_term() {
        let c = testcases::comp1();
        let n = c.num_devices();
        let wide: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * 6.0, i as f64 * 4.0)).collect();
        let tight: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 5) as f64 * 2.0, (i / 5) as f64 * 1.5))
            .collect();
        let mut g = vec![0.0; 2 * n];
        let a_wide = area_term(&c, &wide, 1.0, 1.0, &mut g);
        g.iter_mut().for_each(|v| *v = 0.0);
        let a_tight = area_term(&c, &tight, 1.0, 1.0, &mut g);
        assert!(a_tight < a_wide);
    }
}
