//! Serializable placer checkpoints.
//!
//! A [`Checkpoint`] captures everything a placer needs to continue a
//! cancelled run **bit-for-bit**: optimizer state, sequence pair, RNG
//! state, schedule position. It is a flat, typed key/value bag with a
//! line-based text codec — floats are stored as IEEE-754 bit patterns
//! (`f64::to_bits` hex) so encode → decode is an exact roundtrip, which
//! the resume-equals-uninterrupted guarantee depends on. No external
//! serialization crates are involved.

use std::fmt;

/// A typed checkpoint value.
#[derive(Debug, Clone)]
pub enum Value {
    /// An unsigned integer (iteration counters, RNG words, lengths).
    U64(u64),
    /// A float, compared and serialized by bit pattern.
    F64(f64),
    /// A short string (variant tags, placer names).
    Str(String),
    /// A vector of unsigned integers.
    U64s(Vec<u64>),
    /// A vector of floats (positions, gradients, optimizer vectors).
    F64s(Vec<f64>),
    /// A vector of booleans (sequence-pair flips).
    Bools(Vec<bool>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::U64s(a), Value::U64s(b)) => a == b,
            (Value::F64s(a), Value::F64s(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (Value::Bools(a), Value::Bools(b)) => a == b,
            _ => false,
        }
    }
}

/// Error raised when decoding or interrogating a checkpoint fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// 1-based line of the offending text (0 when the error is not tied
    /// to a specific line, e.g. a missing field).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl CheckpointError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    fn field(message: impl Into<String>) -> Self {
        Self::new(0, message)
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "checkpoint line {}: {}", self.line, self.message)
        } else {
            write!(f, "checkpoint: {}", self.message)
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A resumable placer snapshot: which placer wrote it plus an ordered
/// list of typed fields.
///
/// # Examples
///
/// ```
/// use eplace::Checkpoint;
///
/// let mut ck = Checkpoint::new("demo");
/// ck.put_u64("iter", 17);
/// ck.put_f64("lambda", 0.25);
/// ck.put_f64s("x", &[1.0, -2.5]);
/// let text = ck.encode();
/// let back = Checkpoint::decode(&text).unwrap();
/// assert_eq!(ck, back);
/// assert_eq!(back.get_u64("iter").unwrap(), 17);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    placer: String,
    fields: Vec<(String, Value)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint stamped with the writing placer's name.
    pub fn new(placer: impl Into<String>) -> Self {
        Self {
            placer: placer.into(),
            fields: Vec::new(),
        }
    }

    /// Name of the placer that wrote this checkpoint.
    pub fn placer(&self) -> &str {
        &self.placer
    }

    /// Number of stored fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields are stored.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    fn put(&mut self, name: &str, value: Value) {
        debug_assert!(
            !self.fields.iter().any(|(n, _)| n == name),
            "duplicate checkpoint field {name}"
        );
        self.fields.push((name.to_string(), value));
    }

    /// Stores an unsigned integer field.
    pub fn put_u64(&mut self, name: &str, v: u64) {
        self.put(name, Value::U64(v));
    }

    /// Stores a float field (exact bit pattern).
    pub fn put_f64(&mut self, name: &str, v: f64) {
        self.put(name, Value::F64(v));
    }

    /// Stores a string field.
    pub fn put_str(&mut self, name: &str, v: &str) {
        self.put(name, Value::Str(v.to_string()));
    }

    /// Stores a vector of unsigned integers.
    pub fn put_u64s(&mut self, name: &str, v: &[u64]) {
        self.put(name, Value::U64s(v.to_vec()));
    }

    /// Stores a vector of floats (exact bit patterns).
    pub fn put_f64s(&mut self, name: &str, v: &[f64]) {
        self.put(name, Value::F64s(v.to_vec()));
    }

    /// Stores a vector of booleans.
    pub fn put_bools(&mut self, name: &str, v: &[bool]) {
        self.put(name, Value::Bools(v.to_vec()));
    }

    fn get(&self, name: &str) -> Result<&Value, CheckpointError> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| CheckpointError::field(format!("missing field `{name}`")))
    }

    /// True when the field exists.
    pub fn has(&self, name: &str) -> bool {
        self.fields.iter().any(|(n, _)| n == name)
    }

    /// Reads an unsigned integer field.
    pub fn get_u64(&self, name: &str) -> Result<u64, CheckpointError> {
        match self.get(name)? {
            Value::U64(v) => Ok(*v),
            other => Err(type_mismatch(name, "u64", other)),
        }
    }

    /// Reads a float field.
    pub fn get_f64(&self, name: &str) -> Result<f64, CheckpointError> {
        match self.get(name)? {
            Value::F64(v) => Ok(*v),
            other => Err(type_mismatch(name, "f64", other)),
        }
    }

    /// Reads a float field that may be absent (`None` when missing).
    pub fn opt_f64(&self, name: &str) -> Result<Option<f64>, CheckpointError> {
        if !self.has(name) {
            return Ok(None);
        }
        self.get_f64(name).map(Some)
    }

    /// Reads a string field.
    pub fn get_str(&self, name: &str) -> Result<&str, CheckpointError> {
        match self.get(name)? {
            Value::Str(v) => Ok(v),
            other => Err(type_mismatch(name, "str", other)),
        }
    }

    /// Reads an unsigned-integer-vector field.
    pub fn get_u64s(&self, name: &str) -> Result<&[u64], CheckpointError> {
        match self.get(name)? {
            Value::U64s(v) => Ok(v),
            other => Err(type_mismatch(name, "u64 vector", other)),
        }
    }

    /// Reads a float-vector field.
    pub fn get_f64s(&self, name: &str) -> Result<&[f64], CheckpointError> {
        match self.get(name)? {
            Value::F64s(v) => Ok(v),
            other => Err(type_mismatch(name, "f64 vector", other)),
        }
    }

    /// Reads a boolean-vector field.
    pub fn get_bools(&self, name: &str) -> Result<&[bool], CheckpointError> {
        match self.get(name)? {
            Value::Bools(v) => Ok(v),
            other => Err(type_mismatch(name, "bool vector", other)),
        }
    }

    /// Serializes to the line-based text format (exact roundtrip through
    /// [`decode`](Self::decode)).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("placer-checkpoint v1 ");
        out.push_str(&escape(&self.placer));
        out.push('\n');
        for (name, value) in &self.fields {
            match value {
                Value::U64(v) => {
                    out.push_str(&format!("u {name} {v}\n"));
                }
                Value::F64(v) => {
                    out.push_str(&format!("f {name} {:016x}\n", v.to_bits()));
                }
                Value::Str(v) => {
                    out.push_str(&format!("s {name} {}\n", escape(v)));
                }
                Value::U64s(v) => {
                    out.push_str(&format!("vu {name} {}", v.len()));
                    for x in v {
                        out.push_str(&format!(" {x}"));
                    }
                    out.push('\n');
                }
                Value::F64s(v) => {
                    out.push_str(&format!("vf {name} {}", v.len()));
                    for x in v {
                        out.push_str(&format!(" {:016x}", x.to_bits()));
                    }
                    out.push('\n');
                }
                Value::Bools(v) => {
                    out.push_str(&format!("vb {name} {}", v.len()));
                    for x in v {
                        out.push_str(if *x { " 1" } else { " 0" });
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| CheckpointError::new(1, "empty checkpoint"))?;
        let mut head = header.split_whitespace();
        if head.next() != Some("placer-checkpoint") {
            return Err(CheckpointError::new(
                1,
                "missing `placer-checkpoint` header",
            ));
        }
        match head.next() {
            Some("v1") => {}
            Some(v) => {
                return Err(CheckpointError::new(
                    1,
                    format!("unsupported version `{v}`"),
                ));
            }
            None => return Err(CheckpointError::new(1, "missing version")),
        }
        let placer = unescape(head.next().unwrap_or(""));
        if placer.is_empty() {
            return Err(CheckpointError::new(1, "missing placer name"));
        }

        let mut ck = Checkpoint::new(placer);
        let mut saw_end = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "end" {
                saw_end = true;
                break;
            }
            let mut tok = line.split_whitespace();
            let tag = tok.next().expect("trimmed non-empty line has a token");
            let name = tok
                .next()
                .ok_or_else(|| CheckpointError::new(lineno, "missing field name"))?
                .to_string();
            if ck.has(&name) {
                return Err(CheckpointError::new(
                    lineno,
                    format!("duplicate field `{name}`"),
                ));
            }
            let value = match tag {
                "u" => Value::U64(parse_u64(lineno, &name, tok.next())?),
                "f" => Value::F64(parse_f64_bits(lineno, &name, tok.next())?),
                "s" => Value::Str(unescape(tok.next().unwrap_or(""))),
                "vu" | "vf" | "vb" => {
                    let len = parse_u64(lineno, &name, tok.next())? as usize;
                    let toks: Vec<&str> = tok.by_ref().collect();
                    if toks.len() != len {
                        return Err(CheckpointError::new(
                            lineno,
                            format!(
                                "field `{name}` declares {len} elements but has {}",
                                toks.len()
                            ),
                        ));
                    }
                    match tag {
                        "vu" => Value::U64s(
                            toks.iter()
                                .map(|t| parse_u64(lineno, &name, Some(t)))
                                .collect::<Result<_, _>>()?,
                        ),
                        "vf" => Value::F64s(
                            toks.iter()
                                .map(|t| parse_f64_bits(lineno, &name, Some(t)))
                                .collect::<Result<_, _>>()?,
                        ),
                        _ => Value::Bools(
                            toks.iter()
                                .map(|t| match *t {
                                    "0" => Ok(false),
                                    "1" => Ok(true),
                                    other => Err(CheckpointError::new(
                                        lineno,
                                        format!("field `{name}`: bad bool `{other}`"),
                                    )),
                                })
                                .collect::<Result<_, _>>()?,
                        ),
                    }
                }
                other => {
                    return Err(CheckpointError::new(
                        lineno,
                        format!("unknown field tag `{other}`"),
                    ));
                }
            };
            if tag != "vu" && tag != "vf" && tag != "vb" {
                if let Some(extra) = tok.next() {
                    return Err(CheckpointError::new(
                        lineno,
                        format!("trailing token `{extra}` after field `{name}`"),
                    ));
                }
            }
            ck.fields.push((name, value));
        }
        if !saw_end {
            return Err(CheckpointError::new(0, "missing `end` terminator"));
        }
        Ok(ck)
    }
}

fn type_mismatch(name: &str, wanted: &str, got: &Value) -> CheckpointError {
    let kind = match got {
        Value::U64(_) => "u64",
        Value::F64(_) => "f64",
        Value::Str(_) => "str",
        Value::U64s(_) => "u64 vector",
        Value::F64s(_) => "f64 vector",
        Value::Bools(_) => "bool vector",
    };
    CheckpointError::field(format!("field `{name}` is {kind}, expected {wanted}"))
}

fn parse_u64(line: usize, name: &str, tok: Option<&str>) -> Result<u64, CheckpointError> {
    let tok =
        tok.ok_or_else(|| CheckpointError::new(line, format!("field `{name}` missing value")))?;
    tok.parse()
        .map_err(|_| CheckpointError::new(line, format!("field `{name}`: bad integer `{tok}`")))
}

fn parse_f64_bits(line: usize, name: &str, tok: Option<&str>) -> Result<f64, CheckpointError> {
    let tok =
        tok.ok_or_else(|| CheckpointError::new(line, format!("field `{name}` missing value")))?;
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::new(line, format!("field `{name}`: bad float bits `{tok}`")))
}

/// Whitespace-free escaping so names/strings survive `split_whitespace`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next();
            let lo = chars.next();
            if let (Some(hi), Some(lo)) = (hi, lo) {
                let code = u8::from_str_radix(&format!("{hi}{lo}"), 16);
                if let Ok(code) = code {
                    out.push(code as char);
                    continue;
                }
            }
            out.push('%');
            if let Some(hi) = hi {
                out.push(hi);
            }
            if let Some(lo) = lo {
                out.push(lo);
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new("eplace-a");
        ck.put_u64("iter", 42);
        ck.put_f64("lambda", 1.5e-3);
        ck.put_f64("weird", -f64::NAN);
        ck.put_str("phase", "global placement");
        ck.put_u64s("rng", &[1, 2, 3, u64::MAX]);
        ck.put_f64s("x", &[0.0, -0.0, 1.25, f64::INFINITY]);
        ck.put_bools("flips", &[true, false, true]);
        ck
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample();
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(ck, back);
        // NaN and signed zero survive by bit pattern.
        assert_eq!(
            back.get_f64("weird").unwrap().to_bits(),
            (-f64::NAN).to_bits()
        );
        let xs = back.get_f64s("x").unwrap();
        assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn accessors_check_types_and_presence() {
        let ck = sample();
        assert!(ck.get_u64("lambda").is_err());
        assert!(ck.get_f64("missing").is_err());
        assert_eq!(ck.opt_f64("missing").unwrap(), None);
        assert_eq!(ck.opt_f64("lambda").unwrap(), Some(1.5e-3));
        assert_eq!(ck.get_str("phase").unwrap(), "global placement");
        assert_eq!(ck.placer(), "eplace-a");
    }

    #[test]
    fn decode_rejects_malformed_text() {
        assert!(Checkpoint::decode("").is_err());
        assert!(Checkpoint::decode("garbage v1 x\nend\n").is_err());
        assert!(Checkpoint::decode("placer-checkpoint v2 x\nend\n").is_err());
        assert!(Checkpoint::decode("placer-checkpoint v1 x\n").is_err());
        assert!(Checkpoint::decode("placer-checkpoint v1 x\nq bad 1\nend\n").is_err());
        assert!(Checkpoint::decode("placer-checkpoint v1 x\nu iter nope\nend\n").is_err());
        assert!(Checkpoint::decode("placer-checkpoint v1 x\nvf x 3 0 0\nend\n").is_err());
        assert!(
            Checkpoint::decode("placer-checkpoint v1 x\nu a 1\nu a 2\nend\n").is_err(),
            "duplicate fields must be rejected"
        );
    }

    #[test]
    fn escaped_names_survive() {
        let mut ck = Checkpoint::new("name with spaces");
        ck.put_str("s", "a b%c\td");
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.placer(), "name with spaces");
        assert_eq!(back.get_str("s").unwrap(), "a b%c\td");
    }
}
