//! Configuration of the ePlace-A / ePlace-AP pipeline.
//!
//! [`PlacerConfig`] carries plain public fields (the paper's Table II
//! values as defaults) plus a validating [`builder`](PlacerConfig::builder)
//! that rejects NaN / zero / inverted bounds up front with a
//! [`ConfigError`] instead of letting a bad knob panic or silently clamp
//! hundreds of iterations into a run.

use placer_mathopt::MilpOptions;
use std::fmt;

/// A rejected configuration value.
///
/// Shared by every validating builder in the workspace
/// (`PlacerConfig::builder()` here, `SaConfig::builder()` in `placer-sa`,
/// `Xu19GlobalConfig::builder()` in `placer-xu19`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"global.utilization"`.
    pub field: &'static str,
    /// Why the value was rejected.
    pub message: String,
}

impl ConfigError {
    /// Creates a validation error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Checks that `v` is a finite, strictly positive float.
pub fn require_positive(field: &'static str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() || v <= 0.0 {
        return Err(ConfigError::new(
            field,
            format!("must be finite and > 0, got {v}"),
        ));
    }
    Ok(())
}

/// Checks that `v` is a finite, nonnegative float.
pub fn require_nonnegative(field: &'static str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() || v < 0.0 {
        return Err(ConfigError::new(
            field,
            format!("must be finite and >= 0, got {v}"),
        ));
    }
    Ok(())
}

/// Checks that `v` lies in the open/closed interval (`lo`, `hi`].
pub fn require_fraction(field: &'static str, v: f64, lo: f64, hi: f64) -> Result<(), ConfigError> {
    if !v.is_finite() || v <= lo || v > hi {
        return Err(ConfigError::new(
            field,
            format!("must lie in ({lo}, {hi}], got {v}"),
        ));
    }
    Ok(())
}

/// How symmetry constraints are treated during **global** placement
/// (Table I of the paper compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Quadratic penalty term `τ·Sym(v)` (the paper's default).
    Soft,
    /// Exact projection onto the symmetry-feasible set after every step.
    Hard,
}

/// Which smooth HPWL approximation global placement uses. The paper
/// credits part of ePlace-A's quality to WA over LSE (§IV-C, reason 2);
/// this switch makes that ablatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Smoothing {
    /// Weighted-average smoothing (Eq. 2; ePlace-A's default).
    Wa,
    /// Log-sum-exponential smoothing (NTUplace3 / \[11\]).
    Lse,
}

/// Global placement parameters (Eq. 3/5 of the paper).
#[derive(Debug, Clone)]
pub struct GlobalConfig {
    /// Density grid dimension (power of two).
    pub grid: usize,
    /// Target utilization of the placement region (device area / region area).
    pub utilization: f64,
    /// Placement-region aspect ratio (width / height). The region area is
    /// fixed by `utilization`; the aspect splits it as
    /// `W = side·√aspect`, `H = side/√aspect`. `1.0` (the default) is the
    /// square region and is bit-identical to the pre-aspect behavior.
    pub aspect: f64,
    /// Maximum Nesterov iterations.
    pub max_iters: usize,
    /// Stop when density overflow falls below this fraction.
    pub overflow_target: f64,
    /// Relative weight of the density term versus wirelength (λ scale; the
    /// absolute λ is normalized from the initial gradient ratio).
    pub lambda_scale: f64,
    /// Multiplier applied to λ while overflow exceeds the target.
    pub lambda_growth: f64,
    /// Relative weight of the symmetry penalty (τ scale).
    pub tau_scale: f64,
    /// Relative weight of the area term (η scale); set 0 to ablate (Fig. 2).
    pub eta_scale: f64,
    /// Symmetry handling mode (Table I).
    pub symmetry: SymmetryMode,
    /// WA smoothing parameter γ as a multiple of the bin size.
    pub gamma_bins: f64,
    /// HPWL smoothing function (WA default; LSE for the ablation).
    pub smoothing: Smoothing,
    /// Seed for the deterministic initial spread.
    pub seed: u64,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            grid: 32,
            utilization: 0.35,
            aspect: 1.0,
            max_iters: 500,
            overflow_target: 0.08,
            lambda_scale: 1.0,
            lambda_growth: 1.05,
            tau_scale: 0.6,
            eta_scale: 0.35,
            symmetry: SymmetryMode::Soft,
            gamma_bins: 2.0,
            smoothing: Smoothing::Wa,
            seed: 1,
        }
    }
}

/// Detailed placement (integrated legalization) parameters (Eq. 4).
#[derive(Debug, Clone)]
pub struct DetailedConfig {
    /// HPWL-vs-area weighting factor μ in Eq. 4a.
    pub mu: f64,
    /// Chip-area utilization factor ζ defining W̃ = H̃ = √(Σsᵢ/ζ).
    pub zeta: f64,
    /// Placement grid pitch in µm (coordinates become integers on this grid).
    pub grid_step: f64,
    /// Whether device flipping (binary fₓ/f_y variables) is enabled.
    pub flipping: bool,
    /// Branch-and-bound options per axis solve.
    pub milp: MilpOptions,
    /// Maximum cutting-plane rounds for residual-overlap separation.
    pub max_refinement_rounds: usize,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            mu: 2.0,
            zeta: 0.7,
            grid_step: 0.25,
            flipping: true,
            milp: MilpOptions {
                max_nodes: 10_000,
                absolute_gap: 1e-6,
                relative_gap: 0.001,
                time_limit: Some(1.5),
            },
            max_refinement_rounds: 12,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PlacerConfig {
    /// Global placement stage.
    pub global: GlobalConfig,
    /// Detailed placement stage.
    pub detailed: DetailedConfig,
    /// Number of GP+DP restarts with different seeds; the best result by
    /// area·HPWL product is kept. Still far cheaper than annealing.
    pub restarts: usize,
    /// When true, detailed placement preserves the global placement's
    /// relative structure (no reassignment passes). Used by ePlace-AP and
    /// by ablation studies that measure global-placement effects.
    pub preserve_gp: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            global: GlobalConfig::default(),
            detailed: DetailedConfig::default(),
            restarts: 4,
            preserve_gp: false,
        }
    }
}

impl PlacerConfig {
    /// Starts a validating builder preloaded with the paper's defaults.
    pub fn builder() -> PlacerConfigBuilder {
        PlacerConfigBuilder {
            config: PlacerConfig::default(),
        }
    }

    /// Validates every numeric field; [`builder`](Self::builder) calls this
    /// from `build()`, and hand-assembled configs can call it directly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let g = &self.global;
        if g.grid < 4 || !g.grid.is_power_of_two() {
            return Err(ConfigError::new(
                "global.grid",
                format!("must be a power of two >= 4, got {}", g.grid),
            ));
        }
        require_fraction("global.utilization", g.utilization, 0.0, 1.0)?;
        require_positive("global.aspect", g.aspect)?;
        if g.max_iters == 0 {
            return Err(ConfigError::new("global.max_iters", "must be > 0"));
        }
        require_fraction("global.overflow_target", g.overflow_target, 0.0, 1.0)?;
        require_positive("global.lambda_scale", g.lambda_scale)?;
        if !g.lambda_growth.is_finite() || g.lambda_growth < 1.0 {
            return Err(ConfigError::new(
                "global.lambda_growth",
                format!("must be finite and >= 1, got {}", g.lambda_growth),
            ));
        }
        require_nonnegative("global.tau_scale", g.tau_scale)?;
        require_nonnegative("global.eta_scale", g.eta_scale)?;
        require_positive("global.gamma_bins", g.gamma_bins)?;
        let d = &self.detailed;
        require_nonnegative("detailed.mu", d.mu)?;
        require_fraction("detailed.zeta", d.zeta, 0.0, 1.0)?;
        require_positive("detailed.grid_step", d.grid_step)?;
        if d.max_refinement_rounds == 0 {
            return Err(ConfigError::new(
                "detailed.max_refinement_rounds",
                "must be > 0",
            ));
        }
        if self.restarts == 0 {
            return Err(ConfigError::new("restarts", "must be > 0"));
        }
        Ok(())
    }
}

/// Validating builder for [`PlacerConfig`].
///
/// # Examples
///
/// ```
/// use eplace::PlacerConfig;
///
/// let config = PlacerConfig::builder()
///     .restarts(2)
///     .utilization(0.4)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(config.restarts, 2);
///
/// // NaN / zero / inverted bounds are rejected up front.
/// assert!(PlacerConfig::builder().utilization(f64::NAN).build().is_err());
/// assert!(PlacerConfig::builder().restarts(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct PlacerConfigBuilder {
    config: PlacerConfig,
}

impl PlacerConfigBuilder {
    /// Density grid dimension (power of two).
    pub fn grid(mut self, grid: usize) -> Self {
        self.config.global.grid = grid;
        self
    }

    /// Placement-region aspect ratio (width / height), `> 0`.
    pub fn aspect(mut self, aspect: f64) -> Self {
        self.config.global.aspect = aspect;
        self
    }

    /// Target region utilization in (0, 1].
    pub fn utilization(mut self, utilization: f64) -> Self {
        self.config.global.utilization = utilization;
        self
    }

    /// Maximum Nesterov iterations.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.config.global.max_iters = max_iters;
        self
    }

    /// Density overflow stopping threshold in (0, 1].
    pub fn overflow_target(mut self, target: f64) -> Self {
        self.config.global.overflow_target = target;
        self
    }

    /// Symmetry penalty weight (τ scale), >= 0.
    pub fn tau_scale(mut self, tau_scale: f64) -> Self {
        self.config.global.tau_scale = tau_scale;
        self
    }

    /// Area term weight (η scale), >= 0; 0 ablates the term.
    pub fn eta_scale(mut self, eta_scale: f64) -> Self {
        self.config.global.eta_scale = eta_scale;
        self
    }

    /// Symmetry handling mode (Table I).
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.config.global.symmetry = mode;
        self
    }

    /// HPWL smoothing function.
    pub fn smoothing(mut self, smoothing: Smoothing) -> Self {
        self.config.global.smoothing = smoothing;
        self
    }

    /// Seed for the deterministic initial spread.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.global.seed = seed;
        self
    }

    /// Number of GP+DP restarts (best kept), > 0.
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.config.restarts = restarts;
        self
    }

    /// Preserve global-placement structure during legalization.
    pub fn preserve_gp(mut self, preserve: bool) -> Self {
        self.config.preserve_gp = preserve;
        self
    }

    /// Detailed-stage HPWL-vs-area weight μ, >= 0.
    pub fn mu(mut self, mu: f64) -> Self {
        self.config.detailed.mu = mu;
        self
    }

    /// Detailed-stage chip utilization ζ in (0, 1].
    pub fn zeta(mut self, zeta: f64) -> Self {
        self.config.detailed.zeta = zeta;
        self
    }

    /// Placement grid pitch in µm, > 0.
    pub fn grid_step(mut self, step: f64) -> Self {
        self.config.detailed.grid_step = step;
        self
    }

    /// Applies arbitrary edits to the full config (escape hatch for
    /// fields without a dedicated setter); still validated by `build`.
    pub fn tweak(mut self, f: impl FnOnce(&mut PlacerConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PlacerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Performance-driven extension parameters (ePlace-AP, Eq. 5).
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Weight α of the GNN term Φ(G).
    pub alpha: f64,
    /// Coordinate normalization scale the model was trained with (µm).
    pub scale: f64,
}

impl PerfConfig {
    /// Creates a performance configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and `alpha` nonnegative.
    pub fn new(alpha: f64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(alpha >= 0.0, "alpha must be nonnegative");
        Self { alpha, scale }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlacerConfig::default();
        assert!(c.global.grid.is_power_of_two());
        assert!(c.global.utilization > 0.0 && c.global.utilization < 1.0);
        assert!(c.detailed.zeta > 0.0 && c.detailed.zeta <= 1.0);
        assert!(c.detailed.flipping);
        assert_eq!(c.global.symmetry, SymmetryMode::Soft);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn perf_config_validates_scale() {
        let _ = PerfConfig::new(1.0, 0.0);
    }

    #[test]
    fn builder_defaults_validate_and_match_table() {
        let built = PlacerConfig::builder().build().unwrap();
        let default = PlacerConfig::default();
        assert_eq!(built.global.grid, default.global.grid);
        assert_eq!(built.restarts, default.restarts);
        assert!(default.validate().is_ok());
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(PlacerConfig::builder().grid(33).build().is_err());
        assert!(PlacerConfig::builder().grid(0).build().is_err());
        assert!(PlacerConfig::builder().utilization(0.0).build().is_err());
        assert!(PlacerConfig::builder().utilization(1.5).build().is_err());
        assert!(PlacerConfig::builder()
            .utilization(f64::NAN)
            .build()
            .is_err());
        assert!(PlacerConfig::builder().max_iters(0).build().is_err());
        assert!(PlacerConfig::builder()
            .overflow_target(-0.1)
            .build()
            .is_err());
        assert!(PlacerConfig::builder().tau_scale(-1.0).build().is_err());
        assert!(PlacerConfig::builder()
            .eta_scale(f64::INFINITY)
            .build()
            .is_err());
        assert!(PlacerConfig::builder().restarts(0).build().is_err());
        assert!(PlacerConfig::builder().zeta(0.0).build().is_err());
        assert!(PlacerConfig::builder().grid_step(-0.25).build().is_err());
        assert!(PlacerConfig::builder().mu(f64::NAN).build().is_err());
        let err = PlacerConfig::builder()
            .tweak(|c| c.global.lambda_growth = 0.5)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "global.lambda_growth");
        assert!(err.to_string().contains("lambda_growth"));
    }
}
