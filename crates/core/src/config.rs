//! Configuration of the ePlace-A / ePlace-AP pipeline.

use placer_mathopt::MilpOptions;

/// How symmetry constraints are treated during **global** placement
/// (Table I of the paper compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Quadratic penalty term `τ·Sym(v)` (the paper's default).
    Soft,
    /// Exact projection onto the symmetry-feasible set after every step.
    Hard,
}

/// Which smooth HPWL approximation global placement uses. The paper
/// credits part of ePlace-A's quality to WA over LSE (§IV-C, reason 2);
/// this switch makes that ablatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Smoothing {
    /// Weighted-average smoothing (Eq. 2; ePlace-A's default).
    Wa,
    /// Log-sum-exponential smoothing (NTUplace3 / \[11\]).
    Lse,
}

/// Global placement parameters (Eq. 3/5 of the paper).
#[derive(Debug, Clone)]
pub struct GlobalConfig {
    /// Density grid dimension (power of two).
    pub grid: usize,
    /// Target utilization of the placement region (device area / region area).
    pub utilization: f64,
    /// Maximum Nesterov iterations.
    pub max_iters: usize,
    /// Stop when density overflow falls below this fraction.
    pub overflow_target: f64,
    /// Relative weight of the density term versus wirelength (λ scale; the
    /// absolute λ is normalized from the initial gradient ratio).
    pub lambda_scale: f64,
    /// Multiplier applied to λ while overflow exceeds the target.
    pub lambda_growth: f64,
    /// Relative weight of the symmetry penalty (τ scale).
    pub tau_scale: f64,
    /// Relative weight of the area term (η scale); set 0 to ablate (Fig. 2).
    pub eta_scale: f64,
    /// Symmetry handling mode (Table I).
    pub symmetry: SymmetryMode,
    /// WA smoothing parameter γ as a multiple of the bin size.
    pub gamma_bins: f64,
    /// HPWL smoothing function (WA default; LSE for the ablation).
    pub smoothing: Smoothing,
    /// Seed for the deterministic initial spread.
    pub seed: u64,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            grid: 32,
            utilization: 0.35,
            max_iters: 500,
            overflow_target: 0.08,
            lambda_scale: 1.0,
            lambda_growth: 1.05,
            tau_scale: 0.6,
            eta_scale: 0.35,
            symmetry: SymmetryMode::Soft,
            gamma_bins: 2.0,
            smoothing: Smoothing::Wa,
            seed: 1,
        }
    }
}

/// Detailed placement (integrated legalization) parameters (Eq. 4).
#[derive(Debug, Clone)]
pub struct DetailedConfig {
    /// HPWL-vs-area weighting factor μ in Eq. 4a.
    pub mu: f64,
    /// Chip-area utilization factor ζ defining W̃ = H̃ = √(Σsᵢ/ζ).
    pub zeta: f64,
    /// Placement grid pitch in µm (coordinates become integers on this grid).
    pub grid_step: f64,
    /// Whether device flipping (binary fₓ/f_y variables) is enabled.
    pub flipping: bool,
    /// Branch-and-bound options per axis solve.
    pub milp: MilpOptions,
    /// Maximum cutting-plane rounds for residual-overlap separation.
    pub max_refinement_rounds: usize,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            mu: 2.0,
            zeta: 0.7,
            grid_step: 0.25,
            flipping: true,
            milp: MilpOptions {
                max_nodes: 10_000,
                absolute_gap: 1e-6,
                relative_gap: 0.001,
                time_limit: Some(1.5),
            },
            max_refinement_rounds: 12,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PlacerConfig {
    /// Global placement stage.
    pub global: GlobalConfig,
    /// Detailed placement stage.
    pub detailed: DetailedConfig,
    /// Number of GP+DP restarts with different seeds; the best result by
    /// area·HPWL product is kept. Still far cheaper than annealing.
    pub restarts: usize,
    /// When true, detailed placement preserves the global placement's
    /// relative structure (no reassignment passes). Used by ePlace-AP and
    /// by ablation studies that measure global-placement effects.
    pub preserve_gp: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            global: GlobalConfig::default(),
            detailed: DetailedConfig::default(),
            restarts: 4,
            preserve_gp: false,
        }
    }
}

/// Performance-driven extension parameters (ePlace-AP, Eq. 5).
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Weight α of the GNN term Φ(G).
    pub alpha: f64,
    /// Coordinate normalization scale the model was trained with (µm).
    pub scale: f64,
}

impl PerfConfig {
    /// Creates a performance configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and `alpha` nonnegative.
    pub fn new(alpha: f64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(alpha >= 0.0, "alpha must be nonnegative");
        Self { alpha, scale }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PlacerConfig::default();
        assert!(c.global.grid.is_power_of_two());
        assert!(c.global.utilization > 0.0 && c.global.utilization < 1.0);
        assert!(c.detailed.zeta > 0.0 && c.detailed.zeta <= 1.0);
        assert!(c.detailed.flipping);
        assert_eq!(c.global.symmetry, SymmetryMode::Soft);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn perf_config_validates_scale() {
        let _ = PerfConfig::new(1.0, 0.0);
    }
}
