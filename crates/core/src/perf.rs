//! ePlace-AP: GNN-guided performance-driven global placement (Eq. 5).
//!
//! The only difference from ePlace-A is the extra objective term `α·Φ(G)`;
//! its gradient `∂Φ/∂v` comes from the GNN's reverse pass
//! ([`Network::position_gradient_with`]) — the role TensorFlow's autodiff
//! plays in the paper. [`PerfGradHook`] owns every buffer that pass needs,
//! so the per-iteration hook evaluation performs **zero heap allocations**
//! (enforced by `crates/core/tests/zero_alloc_perf.rs`).

use analog_netlist::{Circuit, Placement};
use placer_gnn::{CircuitGraph, GradScratch, Network};

use crate::global::{GlobalPlacer, GlobalStats};
use crate::{GlobalConfig, PerfConfig};

/// The reusable state of the ePlace-AP gradient hook: the circuit graph
/// (topology fixed, position features refreshed in place each call), the
/// GNN gradient scratch, the position-gradient buffer, and the one-time α
/// normalization.
///
/// After construction, [`eval`](Self::eval) is allocation-free: features
/// update straight from the solver's point slice
/// ([`CircuitGraph::update_positions_from_slice`]) and the CSR backward
/// pass writes into owned buffers.
pub struct PerfGradHook<'a> {
    network: &'a Network,
    graph: CircuitGraph,
    scratch: GradScratch,
    pos_grad: Vec<(f64, f64)>,
    alpha_weight: f64,
    alpha_abs: Option<f64>,
}

impl<'a> PerfGradHook<'a> {
    /// Builds the hook state for a circuit. `alpha` is the relative weight
    /// from Eq. 5; `scale` the feature normalization extent (µm).
    pub fn new(circuit: &Circuit, network: &'a Network, alpha: f64, scale: f64) -> Self {
        let n = circuit.num_devices();
        let graph = CircuitGraph::new(circuit, &Placement::new(n), scale);
        Self::from_graph(graph, network, alpha, n)
    }

    /// Builds the hook from a pre-built shared [`GraphTopology`] — the
    /// amortized path: the adjacency/CSR plan is stamped out of the
    /// topology instead of rebuilt from the circuit. Bit-identical to
    /// [`new`](Self::new) (see [`CircuitGraph::from_topology`]).
    pub fn with_topology(
        topology: &placer_gnn::GraphTopology,
        network: &'a Network,
        alpha: f64,
        scale: f64,
    ) -> Self {
        let n = topology.num_nodes();
        let graph = CircuitGraph::from_topology(topology, &vec![(0.0, 0.0); n], scale);
        Self::from_graph(graph, network, alpha, n)
    }

    fn from_graph(graph: CircuitGraph, network: &'a Network, alpha: f64, n: usize) -> Self {
        Self {
            network,
            scratch: GradScratch::new(network, n),
            pos_grad: vec![(0.0, 0.0); n],
            graph,
            alpha_weight: alpha,
            alpha_abs: None,
        }
    }

    /// Evaluates the performance term at `pts`: adds `α·∂Φ/∂v` into `grad`
    /// (solver layout `[x₀…xₙ₋₁, y₀…yₙ₋₁]`) and returns the objective
    /// contribution `α·Φ`. Allocation-free.
    ///
    /// `α` is normalized against the wirelength gradient magnitude on the
    /// first call so the configured weight acts as a relative one,
    /// mirroring how the other weights in Eq. 5 are balanced
    /// (re-normalizing every iteration amplifies a saturated Φ gradient
    /// into noise — measured to hurt).
    pub fn eval(&mut self, pts: &[(f64, f64)], grad: &mut [f64]) -> f64 {
        let n = self.pos_grad.len();
        self.graph.update_positions_from_slice(pts);
        let phi =
            self.network
                .position_gradient_with(&self.graph, &mut self.scratch, &mut self.pos_grad);
        let alpha = match self.alpha_abs {
            Some(a) => a,
            None => {
                let g_norm: f64 = grad.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
                let phi_norm: f64 = self
                    .pos_grad
                    .iter()
                    .map(|(gx, gy)| gx.abs() + gy.abs())
                    .sum::<f64>()
                    .max(1e-12);
                let a = self.alpha_weight * g_norm / phi_norm;
                self.alpha_abs = Some(a);
                a
            }
        };
        for (i, &(gx, gy)) in self.pos_grad.iter().enumerate() {
            grad[i] += alpha * gx;
            grad[n + i] += alpha * gy;
        }
        alpha * phi
    }

    /// The lazily-normalized absolute α (`None` before the first
    /// [`eval`](Self::eval)). Checkpointed by ePlace-AP: the normalization
    /// happens on the run's *first* iteration, so a resumed segment must
    /// inherit it rather than re-normalize at its own first call.
    pub fn alpha_abs(&self) -> Option<f64> {
        self.alpha_abs
    }

    /// Restores the absolute α from a checkpoint (see
    /// [`alpha_abs`](Self::alpha_abs)).
    pub fn set_alpha_abs(&mut self, alpha_abs: Option<f64>) {
        self.alpha_abs = alpha_abs;
    }
}

/// Runs performance-driven global placement: ePlace-A's engine with the
/// GNN gradient hook plugged in.
pub fn run_perf_global(
    circuit: &Circuit,
    global_config: &GlobalConfig,
    perf: &PerfConfig,
    network: &Network,
) -> (Placement, GlobalStats) {
    let mut state = PerfGradHook::new(circuit, network, perf.alpha, perf.scale);
    let mut hook = |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 { state.eval(pts, grad) };
    GlobalPlacer::new(global_config.clone()).run_with_extra(circuit, Some(&mut hook))
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;
    use placer_gnn::Network;

    #[test]
    fn perf_global_runs_and_is_deterministic() {
        let c = testcases::adder();
        let net = Network::default_config(4);
        let cfg = GlobalConfig {
            max_iters: 60,
            ..GlobalConfig::default()
        };
        let perf = PerfConfig::new(0.5, 20.0);
        let (p1, s1) = run_perf_global(&c, &cfg, &perf, &net);
        let (p2, _) = run_perf_global(&c, &cfg, &perf, &net);
        assert_eq!(p1, p2);
        assert!(s1.hpwl > 0.0);
    }

    #[test]
    fn alpha_zero_matches_conventional_run() {
        let c = testcases::adder();
        let net = Network::default_config(4);
        let cfg = GlobalConfig {
            max_iters: 40,
            ..GlobalConfig::default()
        };
        let perf = PerfConfig::new(0.0, 20.0);
        let (p_perf, _) = run_perf_global(&c, &cfg, &perf, &net);
        let (p_conv, _) = crate::GlobalPlacer::new(cfg).run(&c);
        for (a, b) in p_perf.positions.iter().zip(&p_conv.positions) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn hook_matches_the_allocating_gradient_path() {
        // The hook's scratch pipeline must reproduce what a from-scratch
        // graph build plus the allocating gradient API would compute.
        let c = testcases::cc_ota();
        let net = Network::default_config(8);
        let n = c.num_devices();
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 4) as f64 * 2.0 + 0.3, (i / 4) as f64 * 1.8))
            .collect();
        let mut hook = PerfGradHook::new(&c, &net, 1.0, 20.0);
        let mut grad = vec![0.5; 2 * n];
        let contrib = hook.eval(&pts, &mut grad);

        let placement = Placement::from_positions(pts.clone());
        let graph = CircuitGraph::new(&c, &placement, 20.0);
        let (phi, pos_grad) = net.position_gradient(&graph);
        let g_norm: f64 = (0..2 * n).map(|_| 0.5f64).sum::<f64>().max(1e-12);
        let phi_norm: f64 = pos_grad
            .iter()
            .map(|(gx, gy)| gx.abs() + gy.abs())
            .sum::<f64>()
            .max(1e-12);
        let alpha = 1.0 * g_norm / phi_norm;
        assert_eq!(contrib.to_bits(), (alpha * phi).to_bits());
        for (i, &(gx, gy)) in pos_grad.iter().enumerate() {
            assert_eq!(grad[i].to_bits(), (0.5 + alpha * gx).to_bits(), "x {i}");
            assert_eq!(grad[n + i].to_bits(), (0.5 + alpha * gy).to_bits(), "y {i}");
        }
    }
}
