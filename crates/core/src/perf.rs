//! ePlace-AP: GNN-guided performance-driven global placement (Eq. 5).
//!
//! The only difference from ePlace-A is the extra objective term `α·Φ(G)`;
//! its gradient `∂Φ/∂v` comes from the GNN's reverse pass
//! ([`Network::position_gradient`]) — the role TensorFlow's autodiff plays
//! in the paper.

use analog_netlist::{Circuit, Placement};
use placer_gnn::{CircuitGraph, Network};

use crate::global::{GlobalPlacer, GlobalStats};
use crate::{GlobalConfig, PerfConfig};

/// Runs performance-driven global placement: ePlace-A's engine with the
/// GNN gradient hook plugged in.
///
/// `α` is normalized against the wirelength gradient magnitude on the first
/// call so `PerfConfig::alpha` acts as a relative weight, mirroring how the
/// other weights in Eq. 5 are balanced.
pub fn run_perf_global(
    circuit: &Circuit,
    global_config: &GlobalConfig,
    perf: &PerfConfig,
    network: &Network,
) -> (Placement, GlobalStats) {
    let n = circuit.num_devices();
    let mut graph: Option<CircuitGraph> = None;
    let mut alpha_abs: Option<f64> = None;
    let mut hook = |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 {
        let placement = Placement::from_positions(pts.to_vec());
        let g = match graph.as_mut() {
            Some(g) => {
                g.update_positions(&placement);
                g
            }
            None => {
                graph = Some(CircuitGraph::new(circuit, &placement, perf.scale));
                graph.as_mut().expect("just inserted")
            }
        };
        let (phi, pos_grad) = network.position_gradient(g);
        // Normalize α once, against the initial wirelength-dominated grad
        // (re-normalizing every iteration amplifies a saturated Φ gradient
        // into noise — measured to hurt).
        let alpha = *alpha_abs.get_or_insert_with(|| {
            let g_norm: f64 = grad.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
            let phi_norm: f64 = pos_grad
                .iter()
                .map(|(gx, gy)| gx.abs() + gy.abs())
                .sum::<f64>()
                .max(1e-12);
            perf.alpha * g_norm / phi_norm
        });
        for (i, &(gx, gy)) in pos_grad.iter().enumerate() {
            grad[i] += alpha * gx;
            grad[n + i] += alpha * gy;
        }
        alpha * phi
    };
    GlobalPlacer::new(global_config.clone()).run_with_extra(circuit, Some(&mut hook))
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;
    use placer_gnn::Network;

    #[test]
    fn perf_global_runs_and_is_deterministic() {
        let c = testcases::adder();
        let net = Network::default_config(4);
        let cfg = GlobalConfig {
            max_iters: 60,
            ..GlobalConfig::default()
        };
        let perf = PerfConfig::new(0.5, 20.0);
        let (p1, s1) = run_perf_global(&c, &cfg, &perf, &net);
        let (p2, _) = run_perf_global(&c, &cfg, &perf, &net);
        assert_eq!(p1, p2);
        assert!(s1.hpwl > 0.0);
    }

    #[test]
    fn alpha_zero_matches_conventional_run() {
        let c = testcases::adder();
        let net = Network::default_config(4);
        let cfg = GlobalConfig {
            max_iters: 40,
            ..GlobalConfig::default()
        };
        let perf = PerfConfig::new(0.0, 20.0);
        let (p_perf, _) = run_perf_global(&c, &cfg, &perf, &net);
        let (p_conv, _) = crate::GlobalPlacer::new(cfg).run(&c);
        for (a, b) in p_perf.positions.iter().zip(&p_conv.positions) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }
}
