//! Cooperative run budgets: deadlines, step limits and cancellation.
//!
//! A [`RunBudget`] is a cheap token threaded through the outer loops of all
//! four placers. It is checked **once per Nesterov iteration / SA
//! temperature level / CG round — never per move**, so the hot paths keep
//! their zero-allocation, branch-light shape (`bench_hotpaths --check`
//! guards this). Three things can happen at a check:
//!
//! - [`BudgetStatus::Continue`]: keep optimizing (the common case — one
//!   relaxed atomic increment plus a few predictable branches).
//! - [`BudgetStatus::Exhausted`]: the deadline or step budget ran out; the
//!   placer stops, legalizes its best-so-far state and tags the outcome
//!   [`Exhausted`](crate::PlaceOutcome::Exhausted).
//! - [`BudgetStatus::Cancelled`]: somebody called [`RunBudget::cancel`] (or
//!   a deterministic test trigger fired); the placer captures a
//!   [`Checkpoint`](crate::Checkpoint) so the run can resume later,
//!   bit-for-bit equal to the uninterrupted run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation handle that outlives the [`RunBudget`] it is
/// attached to.
///
/// [`RunBudget::cancel`] requires a reference to the budget itself, which
/// only the thread running the placer holds. A scheduler that wants to
/// preempt a running job from *outside* — the placement daemon's
/// fair-share preemption under overload — clones a `CancelFlag`, attaches
/// it with [`RunBudget::with_cancel_flag`], and trips it from any thread.
/// The next budget check reports [`BudgetStatus::Cancelled`] and the
/// placer checkpoints exactly as if `cancel` had been called.
///
/// # Examples
///
/// ```
/// use eplace::{BudgetStatus, CancelFlag, RunBudget};
///
/// let flag = CancelFlag::new();
/// let budget = RunBudget::unlimited().with_cancel_flag(&flag);
/// assert_eq!(budget.check(), BudgetStatus::Continue);
/// flag.cancel(); // from any thread
/// assert_eq!(budget.check(), BudgetStatus::Cancelled);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, untripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag: every budget it is attached to cancels at its next
    /// check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Clears the flag so the handle can arm a later run (a preempted job
    /// being resumed reuses its slot's flag).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// What a budget check told the placer to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStatus {
    /// Keep going.
    Continue,
    /// Deadline or step budget ran out: stop and return best-so-far.
    Exhausted,
    /// Cooperative cancellation requested: checkpoint and return.
    Cancelled,
}

/// A shareable (`&self`-only, `Sync`) run budget.
///
/// # Examples
///
/// ```
/// use eplace::{BudgetStatus, RunBudget};
///
/// let budget = RunBudget::unlimited();
/// assert_eq!(budget.check(), BudgetStatus::Continue);
///
/// let budget = RunBudget::steps(2);
/// assert_eq!(budget.check(), BudgetStatus::Continue);
/// assert_eq!(budget.check(), BudgetStatus::Continue);
/// assert_eq!(budget.check(), BudgetStatus::Exhausted);
///
/// let budget = RunBudget::unlimited();
/// budget.cancel();
/// assert_eq!(budget.check(), BudgetStatus::Cancelled);
/// ```
#[derive(Debug)]
pub struct RunBudget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    /// Deterministic test trigger: checks numbered above this cancel.
    cancel_after: AtomicU64,
    cancelled: AtomicBool,
    /// External preemption handle, shared with a scheduler.
    external: Option<CancelFlag>,
    steps: AtomicU64,
}

impl RunBudget {
    /// A budget that never expires (checks always continue unless
    /// [`cancel`](Self::cancel) is called).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_steps: None,
            cancel_after: AtomicU64::new(u64::MAX),
            cancelled: AtomicBool::new(false),
            external: None,
            steps: AtomicU64::new(0),
        }
    }

    /// A budget that exhausts `timeout` from now.
    pub fn deadline(timeout: Duration) -> Self {
        Self::unlimited().with_deadline(timeout)
    }

    /// A budget that exhausts after `n` checks pass. Because every placer
    /// checks at a fixed structural boundary, a step budget is a
    /// deterministic, wall-clock-free deadline (used heavily by tests).
    pub fn steps(n: u64) -> Self {
        Self::unlimited().with_steps(n)
    }

    /// Adds a wall-clock deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Adds a step budget: the first `n` checks pass, later ones exhaust.
    #[must_use]
    pub fn with_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Attaches an external [`CancelFlag`]: once the flag trips, the next
    /// check cancels, exactly like [`cancel`](Self::cancel).
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: &CancelFlag) -> Self {
        self.external = Some(flag.clone());
        self
    }

    /// Requests cooperative cancellation: the next check (on any thread
    /// sharing this budget) reports [`BudgetStatus::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Deterministic cancellation trigger: the first `n` checks *from the
    /// budget's creation* pass, every later one cancels. Lets tests cancel
    /// "at iteration k" without wall-clock races.
    pub fn cancel_after_checks(&self, n: u64) {
        self.cancel_after.store(n, Ordering::Relaxed);
    }

    /// Checks the budget. Called once per outer-loop boundary.
    ///
    /// Cancellation takes precedence over exhaustion, so a cancelled run
    /// always yields a resumable checkpoint even when its deadline has also
    /// passed.
    pub fn check(&self) -> BudgetStatus {
        let k = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cancelled.load(Ordering::Relaxed)
            || k > self.cancel_after.load(Ordering::Relaxed)
            || self.external.as_ref().is_some_and(CancelFlag::is_cancelled)
        {
            return BudgetStatus::Cancelled;
        }
        if let Some(max) = self.max_steps {
            if k > max {
                return BudgetStatus::Exhausted;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return BudgetStatus::Exhausted;
            }
        }
        BudgetStatus::Continue
    }

    /// Total checks performed so far.
    pub fn checks(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Time left until the deadline (`None` without one; zero when past).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_continues() {
        let b = RunBudget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.check(), BudgetStatus::Continue);
        }
        assert_eq!(b.checks(), 1000);
    }

    #[test]
    fn step_budget_exhausts_after_n_checks() {
        let b = RunBudget::steps(3);
        assert_eq!(b.check(), BudgetStatus::Continue);
        assert_eq!(b.check(), BudgetStatus::Continue);
        assert_eq!(b.check(), BudgetStatus::Continue);
        assert_eq!(b.check(), BudgetStatus::Exhausted);
        assert_eq!(b.check(), BudgetStatus::Exhausted);
    }

    #[test]
    fn cancel_is_sticky_and_beats_exhaustion() {
        let b = RunBudget::steps(0);
        assert_eq!(b.check(), BudgetStatus::Exhausted);
        b.cancel();
        assert_eq!(b.check(), BudgetStatus::Cancelled);
        assert_eq!(b.check(), BudgetStatus::Cancelled);
    }

    #[test]
    fn cancel_after_checks_is_deterministic() {
        let b = RunBudget::unlimited();
        b.cancel_after_checks(2);
        assert_eq!(b.check(), BudgetStatus::Continue);
        assert_eq!(b.check(), BudgetStatus::Continue);
        assert_eq!(b.check(), BudgetStatus::Cancelled);
    }

    #[test]
    fn elapsed_deadline_exhausts() {
        let b = RunBudget::deadline(Duration::from_secs(0));
        assert_eq!(b.check(), BudgetStatus::Exhausted);
        assert!(b.remaining().unwrap().is_zero());
    }

    #[test]
    fn budgets_are_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<RunBudget>();
        assert_traits::<CancelFlag>();
    }

    #[test]
    fn external_flag_cancels_and_resets() {
        let flag = CancelFlag::new();
        let b = RunBudget::unlimited().with_cancel_flag(&flag);
        assert_eq!(b.check(), BudgetStatus::Continue);
        flag.cancel();
        assert!(flag.is_cancelled());
        assert_eq!(b.check(), BudgetStatus::Cancelled);
        // A rearm applies to a later budget sharing the same flag.
        flag.reset();
        let b2 = RunBudget::unlimited().with_cancel_flag(&flag);
        assert_eq!(b2.check(), BudgetStatus::Continue);
    }
}
