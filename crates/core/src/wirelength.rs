//! Weighted-average (WA) wirelength smoothing (Eq. 2 of the paper).
//!
//! `WA_e(x) = Σxᵢ·e^{xᵢ/γ}/Σe^{xᵢ/γ} − Σxᵢ·e^{−xᵢ/γ}/Σe^{−xᵢ/γ}` smoothly
//! approximates `max xᵢ − min xᵢ`; the paper adopts it over the LSE function
//! for its smaller estimation error \[23\].

use analog_netlist::Circuit;

/// Flat per-block staging for the batched spread accumulation: every
/// multi-pin net in a net block contributes its pin coordinates and
/// stabilized exponent arguments to these arrays, so the exponentials run
/// as a handful of long [`placer_simd::exp_slice`] sweeps instead of one
/// tiny kernel call per 2–10-pin analog net (per-net dispatch overhead
/// dwarfed the work). Each block call owns its own scratch, so parallel
/// blocks stay independent.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Pin x/y coordinates, concatenated in net order.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Exponent arguments, overwritten in place with their exponentials:
    /// `e^{(x−xmax)/γ}` (max side) and `e^{(xmin−x)/γ}` (min side).
    ep_x: Vec<f64>,
    em_x: Vec<f64>,
    ep_y: Vec<f64>,
    em_y: Vec<f64>,
    /// Flat-array start offset of each staged net, plus a final sentinel.
    starts: Vec<u32>,
    /// Net index (into `circuit.nets()`) of each staged net.
    nets: Vec<u32>,
    /// Per-net coordinate extremes `(xmin, xmax, ymin, ymax)`.
    ext: Vec<(f64, f64, f64, f64)>,
}

/// One axis of WA smoothing over a coordinate set: returns the smoothed
/// spread and fills `grads` (∂WA/∂xᵢ aligned with `coords`).
///
/// Numerically stabilized by subtracting the max/min before exponentiation.
pub fn wa_spread_with_grad(coords: &[f64], gamma: f64, grads: &mut [f64]) -> f64 {
    debug_assert_eq!(coords.len(), grads.len());
    if coords.len() < 2 {
        grads.iter_mut().for_each(|g| *g = 0.0);
        return 0.0;
    }
    let xmax = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let xmin = coords.iter().copied().fold(f64::INFINITY, f64::min);

    // Max-side: weights e^{(x−xmax)/γ}.
    let mut s1 = 0.0; // Σ e
    let mut s1x = 0.0; // Σ x·e
                       // Min-side: weights e^{(xmin−x)/γ}.
    let mut s2 = 0.0;
    let mut s2x = 0.0;
    for &x in coords {
        let ep = ((x - xmax) / gamma).exp();
        let em = ((xmin - x) / gamma).exp();
        s1 += ep;
        s1x += x * ep;
        s2 += em;
        s2x += x * em;
    }
    let wa_max = s1x / s1;
    let wa_min = s2x / s2;

    for (g, &x) in grads.iter_mut().zip(coords) {
        let ep = ((x - xmax) / gamma).exp();
        let em = ((xmin - x) / gamma).exp();
        // d(wa_max)/dx = e/s1 · (1 + (x − wa_max)/γ)
        let dmax = ep / s1 * (1.0 + (x - wa_max) / gamma);
        // d(wa_min)/dx = e/s2 · (1 − (x − wa_min)/γ)
        let dmin = em / s2 * (1.0 - (x - wa_min) / gamma);
        *g = dmax - dmin;
    }
    wa_max - wa_min
}

/// Smoothed total wirelength `W(v)` and its gradient over device centers.
///
/// Pin offsets are honored (unflipped orientation — flips are a detailed
/// placement decision); each pin's gradient accumulates onto its device.
///
/// Returns the smoothed HPWL; `grad` receives `(∂W/∂x, ∂W/∂y)` interleaved
/// as `[dx0, …, dxn−1, dy0, …, dyn−1]`.
///
/// # Panics
///
/// Panics if `positions`/`grad` sizes do not match the circuit.
pub fn wa_wirelength(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    grad: &mut [f64],
) -> f64 {
    smoothed_wirelength(circuit, positions, gamma, grad, crate::Smoothing::Wa)
}

/// The seed single-pass WA accumulation, retained as the benchmark
/// baseline for [`wa_wirelength`]; identical results on small circuits
/// (which run as one block either way).
pub fn wa_wirelength_reference(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    assert_eq!(positions.len(), n, "positions length mismatch");
    assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
    grad.iter_mut().for_each(|g| *g = 0.0);
    accumulate_nets(
        circuit,
        positions,
        gamma,
        wa_spread_with_grad,
        0..circuit.nets().len(),
        grad,
    )
}

/// One axis of log-sum-exponential (LSE) smoothing (NTUplace3 \[10\]):
/// `γ·lnΣe^{xᵢ/γ} + γ·lnΣe^{−xᵢ/γ}` over-approximates the spread. Kept
/// alongside WA so the smoothing choice (§IV-C reason 2) can be ablated.
pub fn lse_spread_with_grad(coords: &[f64], gamma: f64, grads: &mut [f64]) -> f64 {
    debug_assert_eq!(coords.len(), grads.len());
    if coords.len() < 2 {
        grads.iter_mut().for_each(|g| *g = 0.0);
        return 0.0;
    }
    let xmax = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let xmin = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for &x in coords {
        s_max += ((x - xmax) / gamma).exp();
        s_min += ((xmin - x) / gamma).exp();
    }
    let value = xmax + gamma * s_max.ln() - xmin + gamma * s_min.ln();
    for (g, &x) in grads.iter_mut().zip(coords) {
        let p_max = ((x - xmax) / gamma).exp() / s_max;
        let p_min = ((xmin - x) / gamma).exp() / s_min;
        *g = p_max - p_min;
    }
    value
}

/// Number of fixed net blocks the gradient accumulation decomposes into
/// for large circuits. Block boundaries and the block-ordered reduction
/// depend only on the net count — never on threads — so the result is
/// bit-identical for any parallelism.
const NET_BLOCKS: usize = 16;

/// Nets below this count run as a single block (the partial-buffer
/// machinery would dominate).
const NET_BLOCK_THRESHOLD: usize = 64;

/// Devices below this count run as a single block regardless of net count.
///
/// Every block carries a `2·n_devices` partial-gradient buffer (zeroed,
/// filled, then reduced in block order), so the fan-out overhead scales
/// with the *device* count while the useful work scales with pins per
/// block. Below this point the partials cost more than the accumulation
/// they split — the seed benched 0.87× at 4096 devices — so the spread
/// falls back to the direct single-buffer path. Both thresholds depend
/// only on problem size, never on threads, preserving bit-identical
/// results for any thread count.
const DEVICE_BLOCK_THRESHOLD: usize = 8192;

fn net_blocks(n_nets: usize, n_devices: usize) -> usize {
    if n_nets >= NET_BLOCK_THRESHOLD && n_devices >= DEVICE_BLOCK_THRESHOLD {
        NET_BLOCKS
    } else {
        1
    }
}

/// Accumulates one contiguous net range: adds each net's weighted spread
/// gradient into `grad` (assumed zeroed) and returns the range's smoothed
/// wirelength.
fn accumulate_nets<F: FnMut(&[f64], f64, &mut [f64]) -> f64>(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    mut spread: F,
    range: std::ops::Range<usize>,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    let mut total = 0.0;
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut gx: Vec<f64> = Vec::new();
    let mut gy: Vec<f64> = Vec::new();
    for net in &circuit.nets()[range] {
        if net.pins.len() < 2 {
            continue;
        }
        xs.clear();
        ys.clear();
        for p in &net.pins {
            let d = circuit.device(p.device);
            let (cx, cy) = positions[p.device.index()];
            let (ox, oy) = d.pins[p.pin.index()].offset;
            xs.push(cx - d.width / 2.0 + ox);
            ys.push(cy - d.height / 2.0 + oy);
        }
        gx.resize(xs.len(), 0.0);
        gy.resize(ys.len(), 0.0);
        let wx = spread(&xs, gamma, &mut gx);
        let wy = spread(&ys, gamma, &mut gy);
        total += net.weight * (wx + wy);
        for (k, p) in net.pins.iter().enumerate() {
            grad[p.device.index()] += net.weight * gx[k];
            grad[n + p.device.index()] += net.weight * gy[k];
        }
    }
    total
}

/// Accumulates one net range with batched exponentials, owning the flat
/// staging scratch for that range (each parallel block carries its own, so
/// blocks stay independent).
///
/// Four phases per block: (1) gather every multi-pin net's pin coordinates
/// into flat arrays; (2) per net, fold the coordinate extremes and write
/// the stabilized exponent arguments `(x−xmax)/γ` / `(xmin−x)/γ` — the
/// seed's exact expressions; (3) exponentiate all four argument arrays
/// with [`placer_simd::exp_slice`], the only dispatched step — one long
/// sweep per array instead of a kernel call per tiny net; (4) per net,
/// accumulate the weight sums, value and gradient in the seed's op order,
/// reusing the stored exponentials for the gradient (same expressions on
/// the same inputs, so the reuse is bit-identical to the seed's
/// recomputation — and halves the exp count).
///
/// Under the forced-scalar backend every phase is bit-identical to the
/// seed accumulation ([`accumulate_nets`] over [`wa_spread_with_grad`] /
/// [`lse_spread_with_grad`]): the gather, folds, sums and scatter are the
/// same scalar sequences per accumulator, and scalar `exp_slice` is
/// `f64::exp` per element in order. Under AVX2/AVX-512 only the
/// exponentials differ (≤ 2-ULP vector polynomial), so results are
/// bounded-ULP (see the contract table in `placer_simd`).
fn accumulate_nets_simd(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    smoothing: crate::Smoothing,
    range: std::ops::Range<usize>,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    let nets = circuit.nets();
    let mut sc = BatchScratch::default();

    // Phase 1: gather pin coordinates of every multi-pin net in the range.
    for ni in range {
        let net = &nets[ni];
        if net.pins.len() < 2 {
            continue;
        }
        sc.starts.push(sc.xs.len() as u32);
        sc.nets.push(ni as u32);
        for p in &net.pins {
            let d = circuit.device(p.device);
            let (cx, cy) = positions[p.device.index()];
            let (ox, oy) = d.pins[p.pin.index()].offset;
            sc.xs.push(cx - d.width / 2.0 + ox);
            sc.ys.push(cy - d.height / 2.0 + oy);
        }
    }
    sc.starts.push(sc.xs.len() as u32);
    let m = sc.xs.len();
    sc.ep_x.resize(m, 0.0);
    sc.em_x.resize(m, 0.0);
    sc.ep_y.resize(m, 0.0);
    sc.em_y.resize(m, 0.0);

    // Phase 2: per-net extremes (the seed's separate max/min folds, fused
    // — per-accumulator sequences unchanged) and exponent arguments.
    for k in 0..sc.nets.len() {
        let (s, e) = (sc.starts[k] as usize, sc.starts[k + 1] as usize);
        let mut xmax = f64::NEG_INFINITY;
        let mut xmin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        for j in s..e {
            xmax = xmax.max(sc.xs[j]);
            xmin = xmin.min(sc.xs[j]);
            ymax = ymax.max(sc.ys[j]);
            ymin = ymin.min(sc.ys[j]);
        }
        sc.ext.push((xmin, xmax, ymin, ymax));
        for j in s..e {
            sc.ep_x[j] = (sc.xs[j] - xmax) / gamma;
            sc.em_x[j] = (xmin - sc.xs[j]) / gamma;
            sc.ep_y[j] = (sc.ys[j] - ymax) / gamma;
            sc.em_y[j] = (ymin - sc.ys[j]) / gamma;
        }
    }

    // Phase 3: one vectorized exponential sweep per argument array — the
    // block's entire exp workload, batched so the SIMD lanes stay full.
    placer_simd::exp_slice(&mut sc.ep_x);
    placer_simd::exp_slice(&mut sc.em_x);
    placer_simd::exp_slice(&mut sc.ep_y);
    placer_simd::exp_slice(&mut sc.em_y);

    // Phase 4: per-net sums, value and gradient scatter, in net order.
    let mut total = 0.0;
    for k in 0..sc.nets.len() {
        let net = &nets[sc.nets[k] as usize];
        let (s, e) = (sc.starts[k] as usize, sc.starts[k + 1] as usize);
        let (xmin, xmax, ymin, ymax) = sc.ext[k];
        let (wx, wy) = match smoothing {
            crate::Smoothing::Wa => {
                let wx = wa_finish(
                    &sc.xs[s..e],
                    &sc.ep_x[s..e],
                    &sc.em_x[s..e],
                    gamma,
                    net,
                    &mut grad[..n],
                );
                let wy = wa_finish(
                    &sc.ys[s..e],
                    &sc.ep_y[s..e],
                    &sc.em_y[s..e],
                    gamma,
                    net,
                    &mut grad[n..],
                );
                (wx, wy)
            }
            crate::Smoothing::Lse => {
                let wx = lse_finish(
                    &sc.ep_x[s..e],
                    &sc.em_x[s..e],
                    gamma,
                    xmin,
                    xmax,
                    net,
                    &mut grad[..n],
                );
                let wy = lse_finish(
                    &sc.ep_y[s..e],
                    &sc.em_y[s..e],
                    gamma,
                    ymin,
                    ymax,
                    net,
                    &mut grad[n..],
                );
                (wx, wy)
            }
        };
        total += net.weight * (wx + wy);
    }
    total
}

/// One axis of the WA finish for one net: weight sums, value and gradient
/// scatter from the stored exponentials — the seed's accumulation and
/// gradient passes, op for op (the `x`/`y` halves of `grad` are disjoint,
/// so scattering the axes in separate calls keeps every accumulator's
/// add sequence identical to the seed's fused scatter loop).
fn wa_finish(
    coords: &[f64],
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    net: &analog_netlist::Net,
    grad_axis: &mut [f64],
) -> f64 {
    let mut s1 = 0.0;
    let mut s1x = 0.0;
    let mut s2 = 0.0;
    let mut s2x = 0.0;
    for j in 0..coords.len() {
        let x = coords[j];
        s1 += ep[j];
        s1x += x * ep[j];
        s2 += em[j];
        s2x += x * em[j];
    }
    let wa_max = s1x / s1;
    let wa_min = s2x / s2;
    for (j, p) in net.pins.iter().enumerate() {
        let x = coords[j];
        let dmax = ep[j] / s1 * (1.0 + (x - wa_max) / gamma);
        let dmin = em[j] / s2 * (1.0 - (x - wa_min) / gamma);
        grad_axis[p.device.index()] += net.weight * (dmax - dmin);
    }
    wa_max - wa_min
}

/// One axis of the LSE finish for one net (see [`wa_finish`]).
fn lse_finish(
    ep: &[f64],
    em: &[f64],
    gamma: f64,
    xmin: f64,
    xmax: f64,
    net: &analog_netlist::Net,
    grad_axis: &mut [f64],
) -> f64 {
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for j in 0..ep.len() {
        s_max += ep[j];
        s_min += em[j];
    }
    let value = xmax + gamma * s_max.ln() - xmin + gamma * s_min.ln();
    for (j, p) in net.pins.iter().enumerate() {
        grad_axis[p.device.index()] += net.weight * (ep[j] / s_max - em[j] / s_min);
    }
    value
}

/// Smoothed total wirelength with a selectable smoother.
///
/// Large circuits decompose into fixed net blocks: each block accumulates
/// a per-thread partial gradient, and partials reduce in block order. The
/// single- and multi-threaded paths share the same block boundaries and
/// reduction order, so the value and gradient are bit-identical for any
/// thread count.
///
/// # Panics
///
/// Panics on size mismatches (see [`wa_wirelength`]).
pub fn smoothed_wirelength(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    grad: &mut [f64],
    smoothing: crate::Smoothing,
) -> f64 {
    let n = circuit.num_devices();
    assert_eq!(positions.len(), n, "positions length mismatch");
    assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
    grad.iter_mut().for_each(|g| *g = 0.0);
    let n_nets = circuit.nets().len();
    let blocks = placer_parallel::fixed_blocks(n_nets, net_blocks(n_nets, n));
    if blocks.len() <= 1 {
        return accumulate_nets_simd(circuit, positions, gamma, smoothing, 0..n_nets, grad);
    }
    if placer_parallel::max_threads() <= 1 {
        // Same partial-buffer structure as the threaded path so the
        // floating-point reduction associates identically.
        let mut partial = vec![0.0; grad.len()];
        let mut total = 0.0;
        for r in blocks {
            partial.iter_mut().for_each(|p| *p = 0.0);
            total += accumulate_nets_simd(circuit, positions, gamma, smoothing, r, &mut partial);
            for (g, &p) in grad.iter_mut().zip(&partial) {
                *g += p;
            }
        }
        return total;
    }
    let parts = placer_parallel::par_map(blocks.len(), |b| {
        let mut partial = vec![0.0; 2 * n];
        let t = accumulate_nets_simd(
            circuit,
            positions,
            gamma,
            smoothing,
            blocks[b].clone(),
            &mut partial,
        );
        (t, partial)
    });
    let mut total = 0.0;
    for (t, partial) in parts {
        total += t;
        for (g, &p) in grad.iter_mut().zip(&partial) {
            *g += p;
        }
    }
    total
}

/// Exact HPWL with the same pin model as [`wa_wirelength`] (for tests and
/// convergence reporting).
pub fn exact_hpwl(circuit: &Circuit, positions: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for net in circuit.nets() {
        if net.pins.len() < 2 {
            continue;
        }
        let mut xmin = f64::INFINITY;
        let mut xmax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for p in &net.pins {
            let d = circuit.device(p.device);
            let (cx, cy) = positions[p.device.index()];
            let (ox, oy) = d.pins[p.pin.index()].offset;
            let x = cx - d.width / 2.0 + ox;
            let y = cy - d.height / 2.0 + oy;
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        total += net.weight * ((xmax - xmin) + (ymax - ymin));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn wa_spread_approaches_exact_as_gamma_shrinks() {
        let coords = [0.0, 3.0, 7.5, 1.2];
        let exact = 7.5;
        let mut grads = vec![0.0; 4];
        let loose = wa_spread_with_grad(&coords, 5.0, &mut grads);
        let tight = wa_spread_with_grad(&coords, 0.05, &mut grads);
        assert!((tight - exact).abs() < 1e-3);
        assert!((tight - exact).abs() < (loose - exact).abs());
    }

    #[test]
    fn wa_spread_underestimates_exact() {
        // The WA max underestimates max and the WA min overestimates min.
        let coords = [0.0, 1.0, 2.0, 10.0];
        let mut grads = vec![0.0; 4];
        let wa = wa_spread_with_grad(&coords, 1.0, &mut grads);
        assert!(wa <= 10.0 + 1e-12);
        assert!(wa > 0.0);
    }

    #[test]
    fn wa_gradient_matches_finite_differences() {
        let coords = vec![0.3, 2.7, -1.2, 5.0, 4.9];
        let gamma = 0.8;
        let mut grads = vec![0.0; coords.len()];
        wa_spread_with_grad(&coords, gamma, &mut grads);
        let eps = 1e-6;
        for i in 0..coords.len() {
            let mut plus = coords.clone();
            plus[i] += eps;
            let mut minus = coords.clone();
            minus[i] -= eps;
            let mut scratch = vec![0.0; coords.len()];
            let fp = wa_spread_with_grad(&plus, gamma, &mut scratch);
            let fm = wa_spread_with_grad(&minus, gamma, &mut scratch);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grads[i]).abs() < 1e-5,
                "coord {i}: numeric {numeric} vs analytic {}",
                grads[i]
            );
        }
    }

    #[test]
    fn circuit_wirelength_gradient_matches_finite_differences() {
        let c = testcases::adder();
        let n = c.num_devices();
        let mut positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 3) as f64 * 2.3, (i / 3) as f64 * 1.7))
            .collect();
        let gamma = 1.0;
        let mut grad = vec![0.0; 2 * n];
        wa_wirelength(&c, &positions, gamma, &mut grad);
        let eps = 1e-6;
        let mut scratch = vec![0.0; 2 * n];
        for dev in [0usize, n / 2, n - 1] {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            let fp = wa_wirelength(&c, &positions, gamma, &mut scratch);
            positions[dev] = (orig.0 - eps, orig.1);
            let fm = wa_wirelength(&c, &positions, gamma, &mut scratch);
            positions[dev] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[dev]).abs() < 1e-4,
                "device {dev}: numeric {numeric} vs analytic {}",
                grad[dev]
            );
        }
    }

    #[test]
    fn wa_upper_bounds_track_exact_hpwl() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 4) as f64 * 4.0, (i / 4) as f64 * 3.0))
            .collect();
        let exact = exact_hpwl(&c, &positions);
        let mut grad = vec![0.0; 2 * n];
        let smooth = wa_wirelength(&c, &positions, 0.05, &mut grad);
        assert!(
            (smooth - exact).abs() / exact < 0.02,
            "smooth {smooth} vs exact {exact}"
        );
    }

    #[test]
    fn simd_wirelength_tracks_seed_reference() {
        // The dispatched path re-associates lane sums and uses the vector
        // exp, so it is bounded-ULP (not bit-exact) against the seed
        // single-pass accumulation under SIMD backends — and bit-identical
        // under PLACER_SIMD=scalar, which the forced-scalar CI lane pins.
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 4) as f64 * 4.0, (i / 4) as f64 * 3.0))
            .collect();
        for gamma in [0.1, 1.0, 8.0] {
            let mut grad = vec![0.0; 2 * n];
            let mut grad_ref = vec![0.0; 2 * n];
            let w = wa_wirelength(&c, &positions, gamma, &mut grad);
            let w_ref = wa_wirelength_reference(&c, &positions, gamma, &mut grad_ref);
            assert!(
                (w - w_ref).abs() <= 1e-9 * w_ref.abs(),
                "gamma {gamma}: simd {w} vs reference {w_ref}"
            );
            for (i, (g, gr)) in grad.iter().zip(&grad_ref).enumerate() {
                assert!((g - gr).abs() < 1e-9, "grad[{i}]: {g} vs {gr}");
            }

            let mut grad_lse = vec![0.0; 2 * n];
            let mut grad_lse_ref = vec![0.0; 2 * n];
            let l =
                smoothed_wirelength(&c, &positions, gamma, &mut grad_lse, crate::Smoothing::Lse);
            let l_ref = accumulate_nets(
                &c,
                &positions,
                gamma,
                lse_spread_with_grad,
                0..c.nets().len(),
                &mut grad_lse_ref,
            );
            assert!(
                (l - l_ref).abs() <= 1e-9 * l_ref.abs(),
                "gamma {gamma}: lse simd {l} vs reference {l_ref}"
            );
            for (i, (g, gr)) in grad_lse.iter().zip(&grad_lse_ref).enumerate() {
                assert!((g - gr).abs() < 1e-9, "lse grad[{i}]: {g} vs {gr}");
            }
        }
    }

    #[test]
    fn single_pin_nets_contribute_nothing() {
        let coords = [4.2];
        let mut grads = [1.0];
        assert_eq!(wa_spread_with_grad(&coords, 1.0, &mut grads), 0.0);
        assert_eq!(grads[0], 0.0);
    }
}
