//! Property-based tests for the placement engines' invariants.

#![cfg(test)]

use analog_netlist::{testcases, Placement};
use proptest::prelude::*;

use crate::sepplan::SeparationPlanner;
use crate::wirelength::{exact_hpwl, lse_spread_with_grad, wa_spread_with_grad, wa_wirelength};
use crate::{area_term, symmetry_penalty};

fn coords(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-20.0..20.0f64, n..=n)
}

proptest! {
    /// WA never exceeds the exact spread; LSE never undershoots it.
    #[test]
    fn smoothers_bracket_exact(xs in coords(6), gamma in 0.2..3.0f64) {
        let exact = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut g = vec![0.0; xs.len()];
        let wa = wa_spread_with_grad(&xs, gamma, &mut g);
        let lse = lse_spread_with_grad(&xs, gamma, &mut g);
        prop_assert!(wa <= exact + 1e-9, "WA {wa} exceeds exact {exact}");
        prop_assert!(lse >= exact - 1e-9, "LSE {lse} under exact {exact}");
    }

    /// Smoothed wirelength is translation invariant (like HPWL itself).
    #[test]
    fn wa_wirelength_translation_invariant(dx in -30.0..30.0f64, dy in -30.0..30.0f64) {
        let c = testcases::adder();
        let n = c.num_devices();
        let base: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 3) as f64 * 2.0, (i / 3) as f64 * 1.5))
            .collect();
        let shifted: Vec<(f64, f64)> = base.iter().map(|p| (p.0 + dx, p.1 + dy)).collect();
        let mut g = vec![0.0; 2 * n];
        let a = wa_wirelength(&c, &base, 1.0, &mut g);
        let b = wa_wirelength(&c, &shifted, 1.0, &mut g);
        prop_assert!((a - b).abs() < 1e-6);
    }

    /// The symmetry penalty is zero iff the placement satisfies the groups
    /// (up to the envelope axis), and is always nonnegative.
    #[test]
    fn symmetry_penalty_nonnegative(seed_x in -5.0..5.0f64, seed_y in -5.0..5.0f64) {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| (seed_x + i as f64, seed_y + (i * i % 7) as f64))
            .collect();
        let mut g = vec![0.0; 2 * n];
        let v = symmetry_penalty(&c, &positions, 1.0, &mut g);
        prop_assert!(v >= 0.0);
    }

    /// The smoothed area term is within a bounded factor of the exact
    /// bounding-box area at small gamma and never negative.
    #[test]
    fn area_term_tracks_exact(scale in 1.0..8.0f64) {
        let c = testcases::comp1();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 5) as f64 * scale, (i / 5) as f64 * scale))
            .collect();
        let mut g = vec![0.0; 2 * n];
        let smooth = area_term(&c, &positions, 0.1, 1.0, &mut g);
        let exact = crate::exact_area(&c, &positions);
        prop_assert!(smooth >= 0.0);
        prop_assert!((smooth - exact).abs() / exact < 0.25);
    }

    /// The separation planner never emits an x edge that contradicts a
    /// y-cluster tie and always converges to a fixpoint.
    #[test]
    fn planner_reaches_fixpoint_on_random_placements(
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let c = testcases::comp2();
        let n = c.num_devices();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Placement::new(n);
        for pos in &mut p.positions {
            *pos = (rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0));
        }
        let mut planner = SeparationPlanner::new(&c);
        let mut rounds = 0;
        while planner.extend_from(&c, &p) {
            rounds += 1;
            prop_assert!(rounds < 30, "planner failed to converge");
        }
        // Every y edge must respect symmetry pair ties: no edge directly
        // between a mirrored pair of a vertical group.
        for g in &c.constraints().symmetry_groups {
            if g.axis == analog_netlist::Axis::Vertical {
                for &(a, b) in &g.pairs {
                    for &(u, v) in planner.y_edges() {
                        prop_assert!(
                            !((u == a && v == b) || (u == b && v == a)),
                            "y edge between mirrored pair"
                        );
                    }
                }
            }
        }
    }

    /// Exact HPWL agrees between the wirelength module and Placement.
    #[test]
    fn hpwl_implementations_agree(scale in 0.5..6.0f64) {
        let c = testcases::vga();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 6) as f64 * scale, (i / 6) as f64 * scale))
            .collect();
        let a = exact_hpwl(&c, &positions);
        let p = Placement::from_positions(positions);
        let b = p.hpwl(&c);
        prop_assert!((a - b).abs() < 1e-9);
    }
}
