//! Electrostatic density term `N(v)` (ePlace).
//!
//! Devices are modelled as positive charges whose magnitude equals their
//! footprint area, deposited onto a bin grid with area-proportional overlap.
//! The potential solves Poisson's equation via the spectral solver; the
//! density *energy* is `½Σqψ` and each device's force is its charge times
//! the local field, accumulated over the bins it covers.
//!
//! The grid owns all solver scratch (density, potential and field grids,
//! device spans), so repeated [`DensityGrid::evaluate`] calls only allocate
//! the returned gradient vector. Scatter and gather are decomposed into
//! fixed device blocks fanned out over threads; block boundaries and the
//! block-ordered reduction depend only on the device count, so results are
//! bit-identical for any thread count.

use analog_netlist::Circuit;
use placer_numeric::{Grid, PoissonSolver};

/// Device span in bin coordinates: `(bx0, bx1, by0, by1)`, inclusive.
type Span = (u32, u32, u32, u32);

/// Number of fixed device blocks scatter/gather decompose into when the
/// circuit is large enough to be worth fanning out. Fixed (never derived
/// from the thread count) so the floating-point reduction order — and
/// therefore the placement — is identical for any parallelism.
const DEVICE_BLOCKS: usize = 16;

/// Devices below this count run as a single block: the block-partial
/// machinery would cost more than the scatter itself.
const BLOCK_THRESHOLD: usize = 64;

fn device_blocks(n: usize) -> usize {
    if n >= BLOCK_THRESHOLD {
        DEVICE_BLOCKS
    } else {
        1
    }
}

/// Rasterizes one device rectangle onto `grid` with area-proportional
/// overlap, returning its bin span.
#[allow(clippy::too_many_arguments)]
fn scatter_one(
    origin: (f64, f64),
    bin: (f64, f64),
    dim: usize,
    grid: &mut Grid,
    cx: f64,
    cy: f64,
    width: f64,
    height: f64,
) -> Span {
    let bin_area = bin.0 * bin.1;
    let clampi = |v: isize| v.clamp(0, dim as isize - 1) as usize;
    let x0 = cx - width / 2.0 - origin.0;
    let x1 = cx + width / 2.0 - origin.0;
    let y0 = cy - height / 2.0 - origin.1;
    let y1 = cy + height / 2.0 - origin.1;
    let bx0 = clampi((x0 / bin.0).floor() as isize);
    let bx1 = clampi(((x1 / bin.0).ceil() as isize) - 1);
    let by0 = clampi((y0 / bin.1).floor() as isize);
    let by1 = clampi(((y1 / bin.1).ceil() as isize) - 1);
    // Rows are contiguous in the row-major grid, so each y-slab hands one
    // row slice to the dispatched kernel (bit-exact under every backend:
    // the per-cell charge is a pure elementwise map).
    let data = grid.as_mut_slice();
    for by in by0..=by1 {
        let cell_y0 = by as f64 * bin.1;
        let oy = (y1.min(cell_y0 + bin.1) - y0.max(cell_y0)).max(0.0);
        let row = &mut data[by * dim + bx0..=by * dim + bx1];
        placer_simd::scatter_row(row, bx0, bin.0, x0, x1, oy, bin_area);
    }
    (bx0 as u32, bx1 as u32, by0 as u32, by1 as u32)
}

/// Gathers the charge-weighted field force on one device.
#[allow(clippy::too_many_arguments)]
fn gather_one(
    origin: (f64, f64),
    bin: (f64, f64),
    ex: &Grid,
    ey: &Grid,
    span: Span,
    cx: f64,
    cy: f64,
    width: f64,
    height: f64,
) -> (f64, f64) {
    let bin_area = bin.0 * bin.1;
    let (bx0, bx1, by0, by1) = span;
    let x0 = cx - width / 2.0 - origin.0;
    let x1 = cx + width / 2.0 - origin.0;
    let y0 = cy - height / 2.0 - origin.1;
    let y1 = cy + height / 2.0 - origin.1;
    let mut fx = 0.0;
    let mut fy = 0.0;
    // The force accumulators thread across rows (seed order); within a row
    // the dispatched kernel may re-associate the sum (bounded-ULP under
    // SIMD backends, seed-exact under scalar).
    let dim = ex.nx();
    let (exs, eys) = (ex.as_slice(), ey.as_slice());
    for by in by0 as usize..=by1 as usize {
        let cell_y0 = by as f64 * bin.1;
        let oy = (y1.min(cell_y0 + bin.1) - y0.max(cell_y0)).max(0.0);
        let r = by * dim + bx0 as usize..=by * dim + bx1 as usize;
        placer_simd::gather_row(
            &exs[r.clone()],
            &eys[r],
            bx0 as usize,
            bin.0,
            x0,
            x1,
            oy,
            bin_area,
            &mut fx,
            &mut fy,
        );
    }
    (fx, fy)
}

/// The density engine for one placement region.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    solver: PoissonSolver,
    /// Region origin (µm).
    origin: (f64, f64),
    /// Bin pitch (µm).
    bin: (f64, f64),
    /// Grid dimension.
    dim: usize,
    /// Scatter target, reused across evaluations.
    rho: Grid,
    /// Potential, reused across evaluations.
    psi: Grid,
    /// Field components, reused across evaluations.
    ex: Grid,
    ey: Grid,
    /// Per-block scatter partial (single-threaded path).
    partial: Grid,
    /// Per-device bin spans, reused across evaluations.
    spans: Vec<Span>,
}

/// Result of one density evaluation.
#[derive(Debug, Clone)]
pub struct DensityEval {
    /// Electrostatic energy (the smooth penalty value `N(v)`).
    pub energy: f64,
    /// Per-device gradient `∂N/∂(x, y)` interleaved `[dx…, dy…]`.
    pub grad: Vec<f64>,
    /// Density overflow: fraction of movable area above the target density.
    pub overflow: f64,
}

impl DensityGrid {
    /// Creates a density grid covering `[origin, origin + extent]` with a
    /// `dim × dim` bin lattice.
    ///
    /// The utilization target deliberately does **not** appear here: it is
    /// a *region sizing* input (the caller chooses `extent` so that
    /// `total_device_area / extent² = target`), while overflow is always
    /// measured against full bin occupancy (density 1.0), i.e. as a
    /// physical-overlap proxy. An earlier signature accepted the target
    /// and silently ignored it.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is a power of two and extents are positive.
    pub fn new(origin: (f64, f64), extent: (f64, f64), dim: usize) -> Self {
        assert!(
            extent.0 > 0.0 && extent.1 > 0.0,
            "region extent must be positive"
        );
        let bin = (extent.0 / dim as f64, extent.1 / dim as f64);
        Self {
            solver: PoissonSolver::new(dim, dim, bin.0, bin.1),
            origin,
            bin,
            dim,
            rho: Grid::new(dim, dim),
            psi: Grid::new(dim, dim),
            ex: Grid::new(dim, dim),
            ey: Grid::new(dim, dim),
            partial: Grid::new(dim, dim),
            spans: Vec::new(),
        }
    }

    /// Bin pitch (µm).
    pub fn bin_size(&self) -> (f64, f64) {
        self.bin
    }

    /// Evaluates energy, gradient and overflow for device centers.
    ///
    /// Reuses the grid's internal scratch; the only per-call allocation on
    /// the single-threaded path is the returned gradient vector.
    ///
    /// # Panics
    ///
    /// Panics if `positions` length mismatches the circuit.
    pub fn evaluate(&mut self, circuit: &Circuit, positions: &[(f64, f64)]) -> DensityEval {
        let n = circuit.num_devices();
        assert_eq!(positions.len(), n, "positions length mismatch");
        let bin_area = self.bin.0 * self.bin.1;
        let blocks = placer_parallel::fixed_blocks(n, device_blocks(n));
        let (origin, bin, dim) = (self.origin, self.bin, self.dim);

        // Scatter: per-block partial densities summed into `rho` in block
        // order. A single block writes straight into `rho`; both paths
        // produce bit-identical sums (each partial starts from zero and
        // partials combine in block order).
        self.rho.fill_zero();
        self.spans.clear();
        self.spans.resize(n, (0, 0, 0, 0));
        if blocks.len() <= 1 {
            for (i, d) in circuit.devices().iter().enumerate() {
                let (cx, cy) = positions[i];
                self.spans[i] =
                    scatter_one(origin, bin, dim, &mut self.rho, cx, cy, d.width, d.height);
            }
        } else if placer_parallel::max_threads() <= 1 {
            for r in &blocks {
                self.partial.fill_zero();
                for i in r.clone() {
                    let d = &circuit.devices()[i];
                    let (cx, cy) = positions[i];
                    self.spans[i] = scatter_one(
                        origin,
                        bin,
                        dim,
                        &mut self.partial,
                        cx,
                        cy,
                        d.width,
                        d.height,
                    );
                }
                for (acc, &p) in self
                    .rho
                    .as_mut_slice()
                    .iter_mut()
                    .zip(self.partial.as_slice())
                {
                    *acc += p;
                }
            }
        } else {
            let devices = circuit.devices();
            let parts = placer_parallel::par_map(blocks.len(), |b| {
                let mut partial = Grid::new(dim, dim);
                let mut spans = Vec::with_capacity(blocks[b].len());
                for i in blocks[b].clone() {
                    let d = &devices[i];
                    let (cx, cy) = positions[i];
                    spans.push(scatter_one(
                        origin,
                        bin,
                        dim,
                        &mut partial,
                        cx,
                        cy,
                        d.width,
                        d.height,
                    ));
                }
                (partial, spans)
            });
            for (b, (partial, spans)) in parts.into_iter().enumerate() {
                for (acc, &p) in self.rho.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                    *acc += p;
                }
                self.spans[blocks[b].start..blocks[b].end].copy_from_slice(&spans);
            }
        }

        // Overflow before solving: area packed above full bin occupancy,
        // i.e. a physical-overlap proxy (density 1.0 = exactly filled).
        // The utilization target shapes the *region*, not this metric.
        let mut over = 0.0;
        for v in self.rho.as_slice() {
            over += (v - 1.0).max(0.0) * bin_area;
        }
        let total_area: f64 = circuit.total_device_area();
        let overflow = if total_area > 0.0 {
            over / total_area
        } else {
            0.0
        };

        // Allocation-free spectral solve + field into owned scratch.
        self.solver.solve_into(&self.rho, &mut self.psi);
        self.solver
            .field_into(&self.psi, &mut self.ex, &mut self.ey);
        let energy = self.solver.energy(&self.rho, &self.psi);

        // Gather: per-device force; devices are independent, so any
        // decomposition gives identical results.
        let mut grad = vec![0.0; 2 * n];
        if placer_parallel::max_threads() <= 1 || blocks.len() <= 1 {
            for (i, d) in circuit.devices().iter().enumerate() {
                let (cx, cy) = positions[i];
                let (fx, fy) = gather_one(
                    origin,
                    bin,
                    &self.ex,
                    &self.ey,
                    self.spans[i],
                    cx,
                    cy,
                    d.width,
                    d.height,
                );
                // Energy decreases along the force: ∂N/∂x = −fx.
                grad[i] = -fx;
                grad[n + i] = -fy;
            }
        } else {
            let devices = circuit.devices();
            let forces = placer_parallel::par_map(blocks.len(), |b| {
                blocks[b]
                    .clone()
                    .map(|i| {
                        let d = &devices[i];
                        let (cx, cy) = positions[i];
                        gather_one(
                            origin,
                            bin,
                            &self.ex,
                            &self.ey,
                            self.spans[i],
                            cx,
                            cy,
                            d.width,
                            d.height,
                        )
                    })
                    .collect::<Vec<_>>()
            });
            for (b, block_forces) in forces.into_iter().enumerate() {
                for (i, (fx, fy)) in blocks[b].clone().zip(block_forces) {
                    grad[i] = -fx;
                    grad[n + i] = -fy;
                }
            }
        }

        DensityEval {
            energy,
            grad,
            overflow,
        }
    }

    /// The seed evaluation path: fresh grids every call, mirror-extended
    /// FFT solve. Retained as the benchmark baseline for
    /// [`evaluate`](Self::evaluate); agrees with it to solver roundoff.
    pub fn evaluate_reference(&self, circuit: &Circuit, positions: &[(f64, f64)]) -> DensityEval {
        let n = circuit.num_devices();
        assert_eq!(positions.len(), n, "positions length mismatch");
        let bin_area = self.bin.0 * self.bin.1;
        let (origin, bin, dim) = (self.origin, self.bin, self.dim);

        let mut rho = Grid::new(dim, dim);
        let mut spans = Vec::with_capacity(n);
        for (i, d) in circuit.devices().iter().enumerate() {
            let (cx, cy) = positions[i];
            spans.push(scatter_one(
                origin, bin, dim, &mut rho, cx, cy, d.width, d.height,
            ));
        }

        let mut over = 0.0;
        for v in rho.as_slice() {
            over += (v - 1.0).max(0.0) * bin_area;
        }
        let total_area: f64 = circuit.total_device_area();
        let overflow = if total_area > 0.0 {
            over / total_area
        } else {
            0.0
        };

        let psi = self.solver.solve_reference(&rho);
        let (ex, ey) = self.solver.field(&psi);
        let energy = self.solver.energy(&rho, &psi);

        let mut grad = vec![0.0; 2 * n];
        for (i, d) in circuit.devices().iter().enumerate() {
            let (cx, cy) = positions[i];
            let (fx, fy) = gather_one(origin, bin, &ex, &ey, spans[i], cx, cy, d.width, d.height);
            grad[i] = -fx;
            grad[n + i] = -fy;
        }

        DensityEval {
            energy,
            grad,
            overflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn grid_for(circuit: &Circuit) -> DensityGrid {
        let side = (circuit.total_device_area() / 0.4).sqrt();
        DensityGrid::new((0.0, 0.0), (side, side), 16)
    }

    #[test]
    fn stacked_devices_have_high_energy_and_outward_forces() {
        let c = testcases::cc_ota();
        let mut g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        let stacked: Vec<(f64, f64)> = vec![(side / 2.0, side / 2.0); c.num_devices()];
        let spread: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| {
                (
                    (i % 4) as f64 / 4.0 * side + side / 8.0,
                    (i / 4) as f64 / 4.0 * side + side / 8.0,
                )
            })
            .collect();
        let e_stacked = g.evaluate(&c, &stacked);
        let e_spread = g.evaluate(&c, &spread);
        assert!(e_stacked.energy > e_spread.energy);
        assert!(e_stacked.overflow > e_spread.overflow);
    }

    #[test]
    fn forces_push_overlapping_devices_apart() {
        let c = testcases::adder();
        let mut g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        // Two clusters: everything at center except device 0 slightly left.
        let mut positions: Vec<(f64, f64)> = vec![(side / 2.0, side / 2.0); c.num_devices()];
        positions[0] = (side / 2.0 - 1.0, side / 2.0);
        let eval = g.evaluate(&c, &positions);
        let n = c.num_devices();
        // Gradient on device 0 along +x (energy rises if it moves right,
        // back into the cluster): ∂N/∂x > 0 means descent moves it left.
        assert!(
            eval.grad[0] > 0.0,
            "expected positive x-gradient, got {}",
            eval.grad[0]
        );
        let _ = n;
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let c = testcases::adder();
        let mut g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        let mut positions: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| {
                (
                    side * 0.3 + (i % 3) as f64 * 1.1,
                    side * 0.3 + (i / 3) as f64 * 0.9,
                )
            })
            .collect();
        let eval = g.evaluate(&c, &positions);
        let eps = 0.05; // bin-scale probe: the rasterization is piecewise linear
        for dev in [0usize, 2] {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            let ep = g.evaluate(&c, &positions).energy;
            positions[dev] = (orig.0 - eps, orig.1);
            let em = g.evaluate(&c, &positions).energy;
            positions[dev] = orig;
            let numeric = (ep - em) / (2.0 * eps);
            let analytic = eval.grad[dev];
            // The bin-field gradient is a coarse discretization of the true
            // energy derivative; demand agreement in sign and within a
            // factor of 4 when the signal is meaningful.
            if numeric.abs() > 1e-3 {
                assert!(
                    numeric.signum() == analytic.signum(),
                    "dev {dev}: sign mismatch {numeric} vs {analytic}"
                );
                let ratio =
                    numeric.abs().max(analytic.abs()) / numeric.abs().min(analytic.abs()).max(1e-9);
                assert!(
                    ratio < 4.0,
                    "dev {dev}: magnitudes too far apart {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn overflow_zero_when_perfectly_spread() {
        let c = testcases::adder();
        // Huge region: density everywhere below target.
        let mut g = DensityGrid::new((0.0, 0.0), (200.0, 200.0), 16);
        let positions: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| ((i % 4) as f64 * 50.0 + 10.0, (i / 4) as f64 * 50.0 + 10.0))
            .collect();
        let eval = g.evaluate(&c, &positions);
        assert!(eval.overflow < 0.05, "overflow {}", eval.overflow);
    }

    #[test]
    fn evaluate_matches_reference_path() {
        let c = testcases::cc_ota();
        let mut g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        let positions: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| {
                (
                    side * 0.2 + (i % 5) as f64 * side * 0.15,
                    side * 0.2 + (i / 5) as f64 * side * 0.2,
                )
            })
            .collect();
        let fast = g.evaluate(&c, &positions);
        let reference = g.evaluate_reference(&c, &positions);
        assert!((fast.energy - reference.energy).abs() < 1e-9 * reference.energy.abs().max(1.0));
        assert!((fast.overflow - reference.overflow).abs() < 1e-12);
        for (a, b) in fast.grad.iter().zip(&reference.grad) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
