//! Electrostatic density term `N(v)` (ePlace).
//!
//! Devices are modelled as positive charges whose magnitude equals their
//! footprint area, deposited onto a bin grid with area-proportional overlap.
//! The potential solves Poisson's equation via the spectral solver; the
//! density *energy* is `½Σqψ` and each device's force is its charge times
//! the local field, accumulated over the bins it covers.

use analog_netlist::Circuit;
use placer_numeric::{Grid, PoissonSolver};

/// The density engine for one placement region.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    solver: PoissonSolver,
    /// Region origin (µm).
    origin: (f64, f64),
    /// Bin pitch (µm).
    bin: (f64, f64),
    /// Grid dimension.
    dim: usize,
}

/// Result of one density evaluation.
#[derive(Debug, Clone)]
pub struct DensityEval {
    /// Electrostatic energy (the smooth penalty value `N(v)`).
    pub energy: f64,
    /// Per-device gradient `∂N/∂(x, y)` interleaved `[dx…, dy…]`.
    pub grad: Vec<f64>,
    /// Density overflow: fraction of movable area above the target density.
    pub overflow: f64,
}

impl DensityGrid {
    /// Creates a density grid covering `[origin, origin + extent]` with a
    /// `dim × dim` bin lattice.
    ///
    /// # Panics
    ///
    /// Panics unless `dim` is a power of two and extents are positive.
    pub fn new(origin: (f64, f64), extent: (f64, f64), dim: usize, target: f64) -> Self {
        assert!(extent.0 > 0.0 && extent.1 > 0.0, "region extent must be positive");
        let _ = target; // regional sizing input, retained in the signature
        let bin = (extent.0 / dim as f64, extent.1 / dim as f64);
        Self {
            solver: PoissonSolver::new(dim, dim, bin.0, bin.1),
            origin,
            bin,
            dim,
        }
    }

    /// Bin pitch (µm).
    pub fn bin_size(&self) -> (f64, f64) {
        self.bin
    }

    /// Evaluates energy, gradient and overflow for device centers.
    ///
    /// # Panics
    ///
    /// Panics if `positions` length mismatches the circuit.
    pub fn evaluate(&self, circuit: &Circuit, positions: &[(f64, f64)]) -> DensityEval {
        let n = circuit.num_devices();
        assert_eq!(positions.len(), n, "positions length mismatch");
        let dim = self.dim;
        let mut rho = Grid::new(dim, dim);
        let bin_area = self.bin.0 * self.bin.1;

        // Rasterize each device's rectangle onto the bins.
        let clampi = |v: isize| v.clamp(0, dim as isize - 1) as usize;
        let mut spans: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(n);
        for (i, d) in circuit.devices().iter().enumerate() {
            let (cx, cy) = positions[i];
            let x0 = cx - d.width / 2.0 - self.origin.0;
            let x1 = cx + d.width / 2.0 - self.origin.0;
            let y0 = cy - d.height / 2.0 - self.origin.1;
            let y1 = cy + d.height / 2.0 - self.origin.1;
            let bx0 = clampi((x0 / self.bin.0).floor() as isize);
            let bx1 = clampi(((x1 / self.bin.0).ceil() as isize) - 1);
            let by0 = clampi((y0 / self.bin.1).floor() as isize);
            let by1 = clampi(((y1 / self.bin.1).ceil() as isize) - 1);
            spans.push((bx0, bx1, by0, by1));
            for by in by0..=by1 {
                let cell_y0 = by as f64 * self.bin.1;
                let oy = (y1.min(cell_y0 + self.bin.1) - y0.max(cell_y0)).max(0.0);
                for bx in bx0..=bx1 {
                    let cell_x0 = bx as f64 * self.bin.0;
                    let ox = (x1.min(cell_x0 + self.bin.0) - x0.max(cell_x0)).max(0.0);
                    rho.add(bx, by, ox * oy / bin_area);
                }
            }
        }

        // Overflow before solving: area packed above full bin occupancy,
        // i.e. a physical-overlap proxy (density 1.0 = exactly filled).
        // The utilization target shapes the *region*, not this metric.
        let mut over = 0.0;
        for v in rho.as_slice() {
            over += (v - 1.0).max(0.0) * bin_area;
        }
        let total_area: f64 = circuit.total_device_area();
        let overflow = if total_area > 0.0 { over / total_area } else { 0.0 };

        let psi = self.solver.solve(&rho);
        let (ex, ey) = self.solver.field(&psi);
        let energy = self.solver.energy(&rho, &psi);

        // Per-device force: charge-weighted field over covered bins.
        let mut grad = vec![0.0; 2 * n];
        for (i, d) in circuit.devices().iter().enumerate() {
            let (bx0, bx1, by0, by1) = spans[i];
            let (cx, cy) = positions[i];
            let x0 = cx - d.width / 2.0 - self.origin.0;
            let x1 = cx + d.width / 2.0 - self.origin.0;
            let y0 = cy - d.height / 2.0 - self.origin.1;
            let y1 = cy + d.height / 2.0 - self.origin.1;
            let mut fx = 0.0;
            let mut fy = 0.0;
            for by in by0..=by1 {
                let cell_y0 = by as f64 * self.bin.1;
                let oy = (y1.min(cell_y0 + self.bin.1) - y0.max(cell_y0)).max(0.0);
                for bx in bx0..=bx1 {
                    let cell_x0 = bx as f64 * self.bin.0;
                    let ox = (x1.min(cell_x0 + self.bin.0) - x0.max(cell_x0)).max(0.0);
                    let q = ox * oy / bin_area;
                    fx += q * ex.get(bx, by);
                    fy += q * ey.get(bx, by);
                }
            }
            // Energy decreases along the force: ∂N/∂x = −fx.
            grad[i] = -fx;
            grad[n + i] = -fy;
        }

        DensityEval {
            energy,
            grad,
            overflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn grid_for(circuit: &Circuit) -> DensityGrid {
        let side = (circuit.total_device_area() / 0.4).sqrt();
        DensityGrid::new((0.0, 0.0), (side, side), 16, 0.4)
    }

    #[test]
    fn stacked_devices_have_high_energy_and_outward_forces() {
        let c = testcases::cc_ota();
        let g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        let stacked: Vec<(f64, f64)> = vec![(side / 2.0, side / 2.0); c.num_devices()];
        let spread: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| {
                (
                    (i % 4) as f64 / 4.0 * side + side / 8.0,
                    (i / 4) as f64 / 4.0 * side + side / 8.0,
                )
            })
            .collect();
        let e_stacked = g.evaluate(&c, &stacked);
        let e_spread = g.evaluate(&c, &spread);
        assert!(e_stacked.energy > e_spread.energy);
        assert!(e_stacked.overflow > e_spread.overflow);
    }

    #[test]
    fn forces_push_overlapping_devices_apart() {
        let c = testcases::adder();
        let g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        // Two clusters: everything at center except device 0 slightly left.
        let mut positions: Vec<(f64, f64)> = vec![(side / 2.0, side / 2.0); c.num_devices()];
        positions[0] = (side / 2.0 - 1.0, side / 2.0);
        let eval = g.evaluate(&c, &positions);
        let n = c.num_devices();
        // Gradient on device 0 along +x (energy rises if it moves right,
        // back into the cluster): ∂N/∂x > 0 means descent moves it left.
        assert!(
            eval.grad[0] > 0.0,
            "expected positive x-gradient, got {}",
            eval.grad[0]
        );
        let _ = n;
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let c = testcases::adder();
        let g = grid_for(&c);
        let side = (c.total_device_area() / 0.4).sqrt();
        let mut positions: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| {
                (
                    side * 0.3 + (i % 3) as f64 * 1.1,
                    side * 0.3 + (i / 3) as f64 * 0.9,
                )
            })
            .collect();
        let eval = g.evaluate(&c, &positions);
        let eps = 0.05; // bin-scale probe: the rasterization is piecewise linear
        for dev in [0usize, 2] {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            let ep = g.evaluate(&c, &positions).energy;
            positions[dev] = (orig.0 - eps, orig.1);
            let em = g.evaluate(&c, &positions).energy;
            positions[dev] = orig;
            let numeric = (ep - em) / (2.0 * eps);
            let analytic = eval.grad[dev];
            // The bin-field gradient is a coarse discretization of the true
            // energy derivative; demand agreement in sign and within a
            // factor of 4 when the signal is meaningful.
            if numeric.abs() > 1e-3 {
                assert!(
                    numeric.signum() == analytic.signum(),
                    "dev {dev}: sign mismatch {numeric} vs {analytic}"
                );
                let ratio = numeric.abs().max(analytic.abs())
                    / numeric.abs().min(analytic.abs()).max(1e-9);
                assert!(
                    ratio < 4.0,
                    "dev {dev}: magnitudes too far apart {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn overflow_zero_when_perfectly_spread() {
        let c = testcases::adder();
        // Huge region: density everywhere below target.
        let g = DensityGrid::new((0.0, 0.0), (200.0, 200.0), 16, 0.4);
        let positions: Vec<(f64, f64)> = (0..c.num_devices())
            .map(|i| ((i % 4) as f64 * 50.0 + 10.0, (i / 4) as f64 * 50.0 + 10.0))
            .collect();
        let eval = g.evaluate(&c, &positions);
        assert!(eval.overflow < 0.05, "overflow {}", eval.overflow);
    }
}
