//! # eplace
//!
//! **ePlace-A** and **ePlace-AP**: analytical analog IC placement, the core
//! contribution of *"Are Analytical Techniques Worthwhile for Analog IC
//! Placement?"* (DATE 2022).
//!
//! - [`GlobalPlacer`] minimizes `W(v) + λN(v) + τSym(v) + ηArea(v)` (Eq. 3)
//!   with WA wirelength smoothing, ePlace electrostatic density, a soft (or
//!   hard, Table I) symmetry penalty and a smoothed bounding-box area term,
//!   solved by Nesterov descent with Lipschitz step estimation.
//! - [`DetailedPlacer`] performs integrated legalization + detailed
//!   placement as an ILP (Eq. 4a–4j) with device flipping, hard symmetry,
//!   alignment and ordering constraints on an integer grid.
//! - [`EPlaceAP`] adds the GNN performance term `α·Φ(G)` (Eq. 5) through an
//!   analytic input-gradient hook.
//!
//! # Examples
//!
//! ```
//! use analog_netlist::testcases;
//! use eplace::{EPlaceA, PlacerConfig};
//!
//! # fn main() -> Result<(), eplace::PlaceError> {
//! let circuit = testcases::cc_ota();
//! let result = EPlaceA::new(PlacerConfig::default()).place(&circuit)?;
//! println!(
//!     "area {:.1} µm², HPWL {:.1} µm in {:.2}s",
//!     result.area,
//!     result.hpwl,
//!     result.gp_seconds + result.dp_seconds,
//! );
//! assert!(result.placement.is_legal(&circuit, 1e-6));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod area;
mod artifacts;
mod budget;
mod checkpoint;
mod config;
mod density;
mod detailed;
pub mod eco;
mod error;
mod global;
mod perf;
mod pipeline;
mod placer;
mod proptests;
pub mod sepplan;
mod symmetry;
pub mod wirelength;

pub use area::{area_term, exact_area};
pub use artifacts::{circuit_content_hash, ArtifactCache, CircuitArtifacts};
pub use budget::{BudgetStatus, CancelFlag, RunBudget};
pub use checkpoint::{Checkpoint, CheckpointError, Value as CheckpointValue};
pub use config::{
    require_fraction, require_nonnegative, require_positive, ConfigError, DetailedConfig,
    GlobalConfig, PerfConfig, PlacerConfig, PlacerConfigBuilder, Smoothing, SymmetryMode,
};
pub use density::{DensityEval, DensityGrid};
pub use detailed::{legalize, DetailedPlacer, DetailedStats};
pub use eco::{EcoConfig, EcoOutcome, EcoReplace};
pub use error::PlaceError;
pub use global::{GlobalPlacer, GlobalStats, GpCheckpoint, GpRun};
pub use perf::{run_perf_global, PerfGradHook};
pub use pipeline::{EPlaceA, EPlaceAP, PlacementResult};
pub use placer::{expect_placer, PlaceOutcome, PlaceSolution, Placer, RaceProbe};
pub use sepplan::{SepEdge, SeparationPlanner};
pub use symmetry::{project_symmetry, symmetry_penalty};
