//! Compiled-artifact cache: per-circuit immutable state built once and
//! shared read-only across every run of that circuit.
//!
//! Profiling the batched sweep path showed that once the inner kernels are
//! SIMD-saturated, the remaining per-run cost is redundant *setup*: parsing
//! the netlist, rebuilding the GNN adjacency/CSR plan, re-deriving the
//! device→net incidence index, and re-planning the DCT used by the Poisson
//! solver — all of which depend only on the circuit (and, for the density
//! plans, the placement-region geometry), not on the run's seed or budget.
//!
//! [`CircuitArtifacts`] bundles that state behind `Arc`s:
//!
//! - the parsed [`Circuit`] itself,
//! - its [`DeviceNets`] incidence index,
//! - its GNN [`GraphTopology`] (normalized adjacency + CSR plan + static
//!   features),
//! - a pool of [`DensityGrid`] templates keyed by region geometry (each
//!   template owns the DCT plans and eigenvalue tables; handing out clones
//!   is a memcpy, and a clone is bitwise-identical to a fresh build because
//!   plan construction is deterministic),
//! - a type-keyed extension map so placer crates that `eplace` does not
//!   depend on (the SA move evaluator's SoA tables, for example) can attach
//!   their own shared per-circuit state.
//!
//! [`ArtifactCache`] maps circuits to their artifacts. The authoritative
//! key is a 64-bit FNV-1a hash of the circuit's canonical text form
//! ([`circuit_content_hash`]): two circuits with the same devices, nets and
//! constraints share artifacts no matter how they were obtained, and any
//! netlist edit changes the key. Raw-text and testcase-name memos sit in
//! front of the content hash so repeated lookups skip re-parsing and
//! re-serialization entirely.
//!
//! Sharing is observable: the cache counts hits and misses both as plain
//! atomics (available in every build, asserted by CI) and as telemetry
//! counters (`artifact_cache_hits`/`artifact_cache_misses`).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use analog_netlist::{parser, AppliedDelta, Circuit, DeviceNets, ParseError};
use placer_gnn::GraphTopology;
use placer_telemetry::Counter;

use crate::density::DensityGrid;

static CACHE_HITS: Counter = Counter::new("artifact_cache_hits");
static CACHE_MISSES: Counter = Counter::new("artifact_cache_misses");
static DENSITY_TEMPLATE_HITS: Counter = Counter::new("artifact_density_template_hits");
static DENSITY_TEMPLATE_MISSES: Counter = Counter::new("artifact_density_template_misses");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes raw netlist text (before parsing) for the cache's text memo.
fn text_hash(spice: &str, constraints: Option<&str>) -> u64 {
    let h = fnv1a(FNV_OFFSET, spice.as_bytes());
    let h = fnv1a(h, &[0x1f]);
    fnv1a(h, constraints.unwrap_or("").as_bytes())
}

/// Content hash of a circuit: 64-bit FNV-1a over its canonical SPICE deck
/// and constraint text.
///
/// The canonical writers ([`parser::write_spice`] /
/// [`parser::write_constraints`]) normalize away incidental formatting, so
/// the hash identifies the circuit's devices, nets, electrical parameters
/// and constraints — any edit to one of those changes the hash, while two
/// differently-formatted decks of the same circuit collide on purpose.
pub fn circuit_content_hash(circuit: &Circuit) -> u64 {
    let h = fnv1a(FNV_OFFSET, parser::write_spice(circuit).as_bytes());
    // Separator byte keeps (deck, constraints) framings unambiguous.
    let h = fnv1a(h, &[0x1f]);
    fnv1a(h, parser::write_constraints(circuit).as_bytes())
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Artifact state is immutable once inserted, so a panicking holder
    // cannot leave it torn; recover instead of propagating poison.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Key for a density template: the bit patterns of the region origin and
/// extent plus the grid dimension.
type DensityKey = ([u64; 4], usize);

/// Immutable per-circuit state shared read-only across runs.
///
/// Built once per circuit (usually through an [`ArtifactCache`]) and handed
/// around as `Arc<CircuitArtifacts>`. Every placer's
/// [`place_artifacts`](crate::Placer::place_artifacts) entry point accepts
/// one; runs that start from artifacts are bit-identical to cold-built runs
/// because the shared state is exactly what the cold path would have
/// computed (tested per placer).
pub struct CircuitArtifacts {
    circuit: Arc<Circuit>,
    content_hash: u64,
    device_nets: Arc<DeviceNets>,
    topology: Arc<GraphTopology>,
    density_templates: Mutex<HashMap<DensityKey, DensityGrid>>,
    ext: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl fmt::Debug for CircuitArtifacts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitArtifacts")
            .field("content_hash", &format_args!("{:#018x}", self.content_hash))
            .field("devices", &self.circuit.num_devices())
            .finish_non_exhaustive()
    }
}

impl CircuitArtifacts {
    /// Builds the artifact bundle for a circuit.
    ///
    /// Eagerly derives the content hash, the device→net index and the GNN
    /// topology; density templates and extension state fill in lazily on
    /// first use.
    pub fn build(circuit: Circuit) -> Arc<Self> {
        let content_hash = circuit_content_hash(&circuit);
        let device_nets = Arc::new(DeviceNets::new(&circuit));
        let topology = Arc::new(GraphTopology::new(&circuit));
        Arc::new(Self {
            circuit: Arc::new(circuit),
            content_hash,
            device_nets,
            topology,
            density_templates: Mutex::new(HashMap::new()),
            ext: Mutex::new(HashMap::new()),
        })
    }

    /// Patches the bundle for an applied [`analog_netlist::NetlistDelta`]
    /// instead of rebuilding it — the incremental ECO path.
    ///
    /// What survives depends on what the delta touched:
    ///
    /// - **device→net index**: shared untouched when membership did not
    ///   change, row-spliced ([`DeviceNets::spliced`]) for adds and pin
    ///   rewires, rebuilt only when a device was removed (ids shift);
    /// - **GNN topology**: shared untouched for pure attribute edits,
    ///   feature-row patched ([`GraphTopology::patched_features`]) for
    ///   resizes/criticality flips, rebuilt when connectivity changed;
    /// - **density templates**: cloned wholesale — they depend only on
    ///   region geometry, so an unchanged region keeps its DCT plans;
    /// - **extension state**: dropped (placer crates own its rebuild).
    ///
    /// Every retained structure is bit-identical to what
    /// [`CircuitArtifacts::build`] would derive from the edited circuit
    /// (property-tested over random delta sequences).
    pub fn patched(&self, applied: &AppliedDelta) -> Arc<Self> {
        let circuit = applied.circuit.clone();
        let content_hash = circuit_content_hash(&circuit);
        let device_nets = if !applied.membership_changed {
            Arc::clone(&self.device_nets)
        } else if applied.removed_devices {
            Arc::new(DeviceNets::new(&circuit))
        } else {
            Arc::new(self.device_nets.spliced(&circuit, &applied.dirty))
        };
        let topology = if applied.membership_changed {
            Arc::new(GraphTopology::new(&circuit))
        } else if applied.features_changed {
            Arc::new(self.topology.patched_features(&circuit, &applied.dirty))
        } else {
            Arc::clone(&self.topology)
        };
        let density_templates = Mutex::new(lock(&self.density_templates).clone());
        Arc::new(Self {
            circuit: Arc::new(circuit),
            content_hash,
            device_nets,
            topology,
            density_templates,
            ext: Mutex::new(HashMap::new()),
        })
    }

    /// The parsed circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The circuit behind its shared handle (for spawning owned clones of
    /// the `Arc`, not of the circuit).
    pub fn circuit_arc(&self) -> Arc<Circuit> {
        Arc::clone(&self.circuit)
    }

    /// The circuit's [`circuit_content_hash`].
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The shared device→net incidence index.
    pub fn device_nets(&self) -> Arc<DeviceNets> {
        Arc::clone(&self.device_nets)
    }

    /// The shared GNN connectivity plan (adjacency, CSR, static features).
    pub fn topology(&self) -> Arc<GraphTopology> {
        Arc::clone(&self.topology)
    }

    /// Hands out a [`DensityGrid`] for the given region, cloning from a
    /// cached template when one exists for that geometry.
    ///
    /// Grid construction is deterministic, so the clone is bitwise-equal to
    /// `DensityGrid::new(origin, extent, dim)` — the clone just skips
    /// re-planning the DCTs and re-tabulating the Poisson eigenvalues.
    pub fn density_grid(&self, origin: (f64, f64), extent: (f64, f64), dim: usize) -> DensityGrid {
        let key: DensityKey = (
            [
                origin.0.to_bits(),
                origin.1.to_bits(),
                extent.0.to_bits(),
                extent.1.to_bits(),
            ],
            dim,
        );
        if let Some(template) = lock(&self.density_templates).get(&key) {
            DENSITY_TEMPLATE_HITS.add(1);
            return template.clone();
        }
        DENSITY_TEMPLATE_MISSES.add(1);
        // Build outside the lock: concurrent first requests may duplicate
        // the work, but never deadlock and never observe a torn template.
        let built = DensityGrid::new(origin, extent, dim);
        let mut pool = lock(&self.density_templates);
        pool.entry(key).or_insert_with(|| built.clone());
        built
    }

    /// Fetches (or builds and caches) typed extension state.
    ///
    /// Placer crates attach their own shared per-circuit artifacts here —
    /// for example the SA placer's immutable move-evaluation tables — keyed
    /// by the state's type. The first caller's `build` result wins; `build`
    /// runs outside the map lock and must not call back into this map.
    pub fn ext_or_build<T, F>(&self, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&Circuit) -> T,
    {
        let key = TypeId::of::<T>();
        if let Some(existing) = lock(&self.ext).get(&key) {
            return Arc::clone(existing).downcast::<T>().expect("ext type key");
        }
        let built: Arc<T> = Arc::new(build(&self.circuit));
        let mut map = lock(&self.ext);
        let entry = map
            .entry(key)
            .or_insert_with(|| Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry).downcast::<T>().expect("ext type key")
    }
}

/// Cache of [`CircuitArtifacts`] keyed by circuit content hash.
///
/// Three entry points, fastest first:
///
/// - [`get_or_build_named`](Self::get_or_build_named) — a name memo for
///   generated testcases (names are trusted stable per cache lifetime);
/// - [`get_or_parse`](Self::get_or_parse) — a raw-text memo in front of the
///   parser, so re-submitting the same deck text skips parsing entirely;
/// - [`get_or_build`](Self::get_or_build) — the authoritative content-hash
///   path for already-parsed circuits.
///
/// All three converge on the same hash-keyed store, so a circuit reached by
/// any route shares one artifact bundle. [`invalidate`](Self::invalidate)
/// evicts an entry (and any memos pointing at it); the next lookup rebuilds.
pub struct ArtifactCache {
    by_hash: Mutex<HashMap<u64, Arc<CircuitArtifacts>>>,
    by_text: Mutex<HashMap<u64, u64>>,
    by_name: Mutex<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &lock(&self.by_hash).len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            by_hash: Mutex::new(HashMap::new()),
            by_text: Mutex::new(HashMap::new()),
            by_name: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        CACHE_HITS.add(1);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.add(1);
    }

    fn get_hash(&self, hash: u64) -> Option<Arc<CircuitArtifacts>> {
        lock(&self.by_hash).get(&hash).cloned()
    }

    fn insert(&self, artifacts: Arc<CircuitArtifacts>) -> Arc<CircuitArtifacts> {
        let mut map = lock(&self.by_hash);
        Arc::clone(
            map.entry(artifacts.content_hash())
                .or_insert_with(|| artifacts),
        )
    }

    /// Fetches (or builds) the artifact bundle for an already-parsed
    /// circuit, keyed by its content hash.
    pub fn get_or_build(&self, circuit: &Circuit) -> Arc<CircuitArtifacts> {
        let hash = circuit_content_hash(circuit);
        if let Some(found) = self.get_hash(hash) {
            self.hit();
            return found;
        }
        self.miss();
        self.insert(CircuitArtifacts::build(circuit.clone()))
    }

    /// Fetches (or parses and builds) the artifact bundle for raw netlist
    /// text, with a text memo so byte-identical resubmissions skip the
    /// parser.
    pub fn get_or_parse(
        &self,
        spice: &str,
        constraints: Option<&str>,
    ) -> Result<Arc<CircuitArtifacts>, ParseError> {
        let memo_key = text_hash(spice, constraints);
        if let Some(hash) = lock(&self.by_text).get(&memo_key).copied() {
            if let Some(found) = self.get_hash(hash) {
                self.hit();
                return Ok(found);
            }
        }
        self.miss();
        let mut circuit = parser::parse_spice(spice)?;
        if let Some(text) = constraints {
            parser::parse_constraints(&mut circuit, text)?;
        }
        let artifacts = self.insert(CircuitArtifacts::build(circuit));
        lock(&self.by_text).insert(memo_key, artifacts.content_hash());
        Ok(artifacts)
    }

    /// Fetches (or builds via `build`) the artifact bundle for a named
    /// circuit — the testcase path. Names are trusted stable for the cache's
    /// lifetime; `build` runs only on the first miss per name. Returns
    /// `None` when `build` does (unknown name).
    pub fn get_or_build_named<F>(&self, name: &str, build: F) -> Option<Arc<CircuitArtifacts>>
    where
        F: FnOnce() -> Option<Circuit>,
    {
        if let Some(hash) = lock(&self.by_name).get(name).copied() {
            if let Some(found) = self.get_hash(hash) {
                self.hit();
                return Some(found);
            }
        }
        self.miss();
        let circuit = build()?;
        let artifacts = self.insert(CircuitArtifacts::build(circuit));
        lock(&self.by_name).insert(name.to_string(), artifacts.content_hash());
        Some(artifacts)
    }

    /// Evicts the entry with this content hash (plus any text/name memos
    /// pointing at it). Returns whether an entry existed. The next lookup
    /// for that circuit rebuilds from scratch.
    pub fn invalidate(&self, hash: u64) -> bool {
        let existed = lock(&self.by_hash).remove(&hash).is_some();
        lock(&self.by_text).retain(|_, h| *h != hash);
        lock(&self.by_name).retain(|_, h| *h != hash);
        existed
    }

    /// Number of cached circuits.
    pub fn len(&self) -> usize {
        lock(&self.by_hash).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an existing bundle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn content_hash_is_stable_and_distinguishes_circuits() {
        let a = testcases::cc_ota();
        let b = testcases::cc_ota();
        assert_eq!(circuit_content_hash(&a), circuit_content_hash(&b));
        assert_ne!(
            circuit_content_hash(&testcases::cc_ota()),
            circuit_content_hash(&testcases::comp1())
        );
    }

    #[test]
    fn netlist_edit_changes_the_hash() {
        let circuit = testcases::cc_ota();
        let before = circuit_content_hash(&circuit);
        // Round-trip through text with one device's width edited. The
        // constraints ride along unchanged so only the edit moves the hash.
        let deck = parser::write_spice(&circuit);
        let edited_deck = deck.replace("W=4.0000", "W=4.1000");
        assert_ne!(deck, edited_deck, "edit must hit the canonical deck");
        let cons = parser::write_constraints(&circuit);
        let mut edited = parser::parse_spice(&edited_deck).unwrap();
        parser::parse_constraints(&mut edited, &cons).unwrap();
        assert_ne!(before, circuit_content_hash(&edited));

        // An identity round-trip keeps the hash.
        let mut same = parser::parse_spice(&deck).unwrap();
        parser::parse_constraints(&mut same, &cons).unwrap();
        assert_eq!(before, circuit_content_hash(&same));
    }

    #[test]
    fn cache_hits_after_first_build() {
        let cache = ArtifactCache::new();
        let first = cache.get_or_build(&testcases::cc_ota());
        let second = cache.get_or_build(&testcases::cc_ota());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn text_memo_skips_reparse_and_invalidate_rebuilds() {
        let circuit = testcases::comp1();
        let deck = parser::write_spice(&circuit);
        let cons = parser::write_constraints(&circuit);
        let cache = ArtifactCache::new();
        let a = cache.get_or_parse(&deck, Some(&cons)).unwrap();
        let b = cache.get_or_parse(&deck, Some(&cons)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.content_hash(), circuit_content_hash(&circuit));
        assert!(cache.invalidate(a.content_hash()));
        assert!(cache.is_empty());
        let c = cache.get_or_parse(&deck, Some(&cons)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn named_lookup_memoizes_and_rejects_unknown() {
        let cache = ArtifactCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let got = cache.get_or_build_named("cc_ota", || {
                builds += 1;
                Some(testcases::cc_ota())
            });
            assert!(got.is_some());
        }
        assert_eq!(builds, 1);
        assert!(cache.get_or_build_named("no-such", || None).is_none());
    }

    #[test]
    fn density_template_clone_matches_fresh_build() {
        let artifacts = CircuitArtifacts::build(testcases::cc_ota());
        let shared = artifacts.density_grid((0.0, 0.0), (40.0, 40.0), 32);
        let fresh = DensityGrid::new((0.0, 0.0), (40.0, 40.0), 32);
        // Deterministic construction: the cached template's clone must
        // evaluate identically to a cold-built grid.
        let circuit = artifacts.circuit();
        let pts: Vec<(f64, f64)> = (0..circuit.num_devices())
            .map(|i| (3.0 + i as f64, 5.0 + 0.5 * i as f64))
            .collect();
        let mut a = shared;
        let mut b = fresh;
        let ea = a.evaluate(circuit, &pts);
        let eb = b.evaluate(circuit, &pts);
        assert_eq!(ea.energy, eb.energy);
        assert_eq!(ea.overflow, eb.overflow);
        assert_eq!(ea.grad, eb.grad);
    }

    #[test]
    fn ext_map_returns_one_shared_instance_per_type() {
        struct Marker(usize);
        let artifacts = CircuitArtifacts::build(testcases::adder());
        let a = artifacts.ext_or_build(|c| Marker(c.num_devices()));
        let b = artifacts.ext_or_build(|_| Marker(usize::MAX));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.0, artifacts.circuit().num_devices());
    }
}
