//! Global placement of ePlace-A (Eq. 3) and ePlace-AP (Eq. 5).
//!
//! Minimizes `W(v) + λN(v) + τSym(v) + ηArea(v) [+ αΦ(G)]` with Nesterov
//! accelerated gradient descent and Lipschitz step estimation, exactly the
//! solver structure of ePlace \[15\]: the density weight λ grows while the
//! overflow is above target, the WA smoothing γ anneals, and (for Table I's
//! hard-constraint variant) positions are projected onto the
//! symmetry-feasible set after every step.

use analog_netlist::{Circuit, Placement};
use placer_numeric::{NesterovSnapshot, NesterovState};

use crate::area::area_term;
use crate::budget::{BudgetStatus, RunBudget};
use crate::density::DensityGrid;
use crate::symmetry::{project_symmetry, symmetry_penalty};
use crate::wirelength::{exact_hpwl, smoothed_wirelength};
use crate::{GlobalConfig, SymmetryMode};

/// Statistics of a global placement run.
#[derive(Debug, Clone)]
pub struct GlobalStats {
    /// Nesterov iterations executed.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
    /// Exact HPWL of the result (µm).
    pub hpwl: f64,
    /// Side length of the placement region (µm).
    pub region_side: f64,
}

/// Resumable snapshot of the global-placement loop, captured at an
/// iteration boundary (before any of that iteration's work). Everything
/// not stored here — region geometry, weight normalization, the η
/// constant — is a deterministic function of circuit + config and is
/// recomputed on resume, so restarting from a checkpoint continues the
/// optimization bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GpCheckpoint {
    /// Iteration the loop was about to execute.
    pub iter: usize,
    /// Current density weight λ.
    pub lambda: f64,
    /// Current symmetry weight τ.
    pub tau: f64,
    /// Current WA smoothing parameter γ.
    pub gamma: f64,
    /// Overflow of the last evaluated iteration.
    pub overflow: f64,
    /// Full optimizer state (positions, velocity, step estimate).
    pub nesterov: NesterovSnapshot,
}

/// Outcome of a budgeted global-placement run.
#[derive(Debug, Clone)]
pub enum GpRun {
    /// Converged (overflow target hit or `max_iters` spent).
    Complete(Placement, GlobalStats),
    /// Budget expired; best-so-far positions at the interruption boundary.
    Exhausted(Placement, GlobalStats),
    /// Cancelled; resume from the checkpoint to finish bit-for-bit.
    Cancelled(Box<GpCheckpoint>),
}

/// Extra objective hook: given positions, accumulate an additional gradient
/// (already weighted) into `grad` (`[dx…, dy…]`) and return the term value.
/// ePlace-AP plugs the GNN gradient in through this.
pub type ExtraGradientFn<'a> = dyn FnMut(&[(f64, f64)], &mut [f64]) -> f64 + 'a;

/// The ePlace-A global placement engine.
#[derive(Debug, Clone)]
pub struct GlobalPlacer {
    config: GlobalConfig,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: GlobalConfig) -> Self {
        Self { config }
    }

    /// Runs global placement (conventional formulation, Eq. 3).
    pub fn run(&self, circuit: &Circuit) -> (Placement, GlobalStats) {
        self.run_with_extra(circuit, None)
    }

    /// Runs global placement with an optional extra gradient term (Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no devices.
    pub fn run_with_extra(
        &self,
        circuit: &Circuit,
        extra: Option<&mut ExtraGradientFn<'_>>,
    ) -> (Placement, GlobalStats) {
        match self.run_budgeted(circuit, extra, None, None) {
            GpRun::Complete(p, s) => (p, s),
            // Unreachable without a budget, but harmless to accept.
            GpRun::Exhausted(p, s) => (p, s),
            GpRun::Cancelled(_) => unreachable!("no budget, cannot cancel"),
        }
    }

    /// Runs global placement under an optional [`RunBudget`], optionally
    /// resuming from a [`GpCheckpoint`].
    ///
    /// With `budget: None` this is exactly [`run_with_extra`]
    /// (bit-identical; no budget checks are even performed). The budget is
    /// checked once per Nesterov iteration, at the iteration boundary —
    /// which is also the checkpoint boundary, so a cancelled run's
    /// checkpoint resumes with no recomputed or skipped work.
    ///
    /// [`run_with_extra`]: Self::run_with_extra
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no devices, or if `resume` carries
    /// optimizer vectors sized for a different circuit.
    pub fn run_budgeted(
        &self,
        circuit: &Circuit,
        extra: Option<&mut ExtraGradientFn<'_>>,
        budget: Option<&RunBudget>,
        resume: Option<&GpCheckpoint>,
    ) -> GpRun {
        self.run_budgeted_with(circuit, extra, budget, resume, None)
    }

    /// [`run_budgeted`](Self::run_budgeted) with optional pre-built shared
    /// artifacts: when `artifacts` is given, the density grid (DCT plans +
    /// Poisson eigenvalue tables) is cloned from the circuit's cached
    /// template instead of planned from scratch. Grid construction is
    /// deterministic, so results are bit-identical either way.
    pub fn run_budgeted_with(
        &self,
        circuit: &Circuit,
        mut extra: Option<&mut ExtraGradientFn<'_>>,
        budget: Option<&RunBudget>,
        resume: Option<&GpCheckpoint>,
        artifacts: Option<&crate::CircuitArtifacts>,
    ) -> GpRun {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("gp_run");
        let _span = SPAN.enter();
        let n = circuit.num_devices();
        assert!(n > 0, "cannot place an empty circuit");
        let cfg = &self.config;
        let total_area = circuit.total_device_area();
        let side = (total_area / cfg.utilization).sqrt();
        // The aspect splits the fixed region area into W×H; √1 = 1 makes
        // the default square region bit-identical to the pre-aspect path.
        let (side_x, side_y) = (side * cfg.aspect.sqrt(), side / cfg.aspect.sqrt());
        // Utilization enters through the region side above; see
        // `DensityGrid::new` on why it takes no target parameter.
        let mut density = match artifacts {
            Some(a) => a.density_grid((0.0, 0.0), (side_x, side_y), cfg.grid),
            None => DensityGrid::new((0.0, 0.0), (side_x, side_y), cfg.grid),
        };
        let (bin_x, _) = density.bin_size();

        // Deterministic golden-angle spiral seed around the region center.
        let mut v0 = vec![0.0; 2 * n];
        let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
        for i in 0..n {
            let rx = side_x * 0.18 * ((i as f64 + 0.5) / n as f64).sqrt();
            let ry = side_y * 0.18 * ((i as f64 + 0.5) / n as f64).sqrt();
            let theta = golden * (i as f64 + cfg.seed as f64);
            v0[i] = side_x / 2.0 + rx * theta.cos();
            v0[n + i] = side_y / 2.0 + ry * theta.sin();
        }
        let clamp_positions = |v: &mut [f64]| {
            for (i, d) in circuit.devices().iter().enumerate() {
                let hw = (d.width / 2.0).min(side_x / 2.0);
                let hh = (d.height / 2.0).min(side_y / 2.0);
                v[i] = v[i].clamp(hw, side_x - hw);
                v[n + i] = v[n + i].clamp(hh, side_y - hh);
            }
        };
        clamp_positions(&mut v0);
        if cfg.symmetry == SymmetryMode::Hard {
            let mut pts = to_points(&v0, n);
            project_symmetry(circuit, &mut pts);
            from_points(&pts, &mut v0);
        }

        // --- Weight normalization from initial gradient magnitudes. -------
        let mut gamma = cfg.gamma_bins * bin_x;
        let pts0 = to_points(&v0, n);
        let mut g_wl = vec![0.0; 2 * n];
        smoothed_wirelength(circuit, &pts0, gamma, &mut g_wl, cfg.smoothing);
        let eval0 = density.evaluate(circuit, &pts0);
        let mut g_sym = vec![0.0; 2 * n];
        symmetry_penalty(circuit, &pts0, 1.0, &mut g_sym);
        let mut g_area = vec![0.0; 2 * n];
        area_term(circuit, &pts0, gamma, 1.0, &mut g_area);
        let mean_area = total_area / n as f64;
        let l1 = |g: &[f64]| g.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
        let wl_norm = l1(&g_wl);
        let mut lambda = cfg.lambda_scale * wl_norm / l1(&eval0.grad);
        let mut tau = cfg.tau_scale * wl_norm / l1(&g_sym);
        let eta = cfg.eta_scale * wl_norm / l1(&g_area);

        // --- Nesterov loop. -------------------------------------------------
        // On resume, every value above (region, grid, η, normalization
        // inputs) was recomputed deterministically; only the loop-carried
        // state comes from the checkpoint.
        let mut state;
        let mut overflow;
        let mut iterations;
        let start_iter;
        match resume {
            Some(ck) => {
                assert_eq!(
                    ck.nesterov.u.len(),
                    2 * n,
                    "checkpoint optimizer state sized for a different circuit"
                );
                state = NesterovState::restore(ck.nesterov.clone());
                lambda = ck.lambda;
                tau = ck.tau;
                gamma = ck.gamma;
                overflow = ck.overflow;
                iterations = ck.iter;
                start_iter = ck.iter;
            }
            None => {
                state = NesterovState::new(v0, bin_x * 0.25);
                state.set_max_step(side * 0.1);
                overflow = eval0.overflow;
                iterations = 0;
                start_iter = 0;
            }
        }
        let mut grad = vec![0.0; 2 * n];
        let gamma_min = 0.25 * bin_x;
        let mut exhausted = false;
        for iter in start_iter..cfg.max_iters {
            if let Some(b) = budget {
                match b.check() {
                    BudgetStatus::Continue => {}
                    BudgetStatus::Exhausted => {
                        exhausted = true;
                        break;
                    }
                    BudgetStatus::Cancelled => {
                        return GpRun::Cancelled(Box::new(GpCheckpoint {
                            iter,
                            lambda,
                            tau,
                            gamma,
                            overflow,
                            nesterov: state.snapshot(),
                        }));
                    }
                }
            }
            iterations = iter + 1;
            let pts = to_points(state.reference(), n);
            grad.iter_mut().for_each(|g| *g = 0.0);
            smoothed_wirelength(circuit, &pts, gamma, &mut grad, cfg.smoothing);
            let eval = density.evaluate(circuit, &pts);
            placer_simd::axpy(&mut grad, lambda, &eval.grad);
            symmetry_penalty(circuit, &pts, tau, &mut grad);
            if eta > 0.0 {
                area_term(circuit, &pts, gamma, eta, &mut grad);
            }
            if let Some(hook) = extra.as_deref_mut() {
                hook(&pts, &mut grad);
            }
            // Jacobi preconditioning (as in ePlace): normalize each
            // device's gradient by its charge (area), so large passives do
            // not dominate the step direction.
            for (i, d) in circuit.devices().iter().enumerate() {
                let q = (d.area() / mean_area).max(0.25);
                grad[i] /= q;
                grad[n + i] /= q;
            }
            let step_len = state.step(&grad);
            clamp_positions(state.reference_mut());
            if cfg.symmetry == SymmetryMode::Hard {
                let mut pts = to_points(state.reference(), n);
                project_symmetry(circuit, &mut pts);
                from_points(&pts, state.reference_mut());
            }
            overflow = eval.overflow;
            if overflow > cfg.overflow_target {
                lambda *= cfg.lambda_growth;
                state.notify_objective_change();
            }
            if placer_telemetry::active() {
                // `pts` is the gradient-evaluation point this iteration, so
                // the exact HPWL here costs one net sweep and no allocation.
                placer_telemetry::record(
                    "gp_iter",
                    &[
                        ("iter", iter as f64),
                        ("max_iters", cfg.max_iters as f64),
                        ("overflow", overflow),
                        ("hpwl", exact_hpwl(circuit, &pts)),
                        ("step", step_len),
                        ("lambda", lambda),
                        ("tau", tau),
                        ("gamma", gamma),
                        ("safeguard_trips", state.safeguard_trips() as f64),
                    ],
                );
            }
            // Anneal the soft symmetry penalty upward so the GP converges
            // to a near-feasible symmetric structure (legalization then
            // needs only small moves) while staying explorative early on.
            tau *= 1.02;
            gamma = (gamma * 0.995).max(gamma_min);
            if overflow < cfg.overflow_target && iter > 60 {
                break;
            }
        }

        let mut solution = state.solution().to_vec();
        clamp_positions(&mut solution);
        let mut pts = to_points(&solution, n);
        if cfg.symmetry == SymmetryMode::Hard {
            project_symmetry(circuit, &mut pts);
        }
        let hpwl = exact_hpwl(circuit, &pts);
        if placer_telemetry::active() {
            placer_telemetry::record(
                "gp_done",
                &[
                    ("iterations", iterations as f64),
                    ("overflow", overflow),
                    ("hpwl", hpwl),
                    ("safeguard_trips", state.safeguard_trips() as f64),
                ],
            );
            // Drain this thread's ring outside the iteration loop.
            placer_telemetry::flush();
        }
        let placement = Placement::from_positions(pts);
        let stats = GlobalStats {
            iterations,
            overflow,
            hpwl,
            region_side: side,
        };
        if exhausted {
            GpRun::Exhausted(placement, stats)
        } else {
            GpRun::Complete(placement, stats)
        }
    }
}

pub(crate) fn to_points(flat: &[f64], n: usize) -> Vec<(f64, f64)> {
    (0..n).map(|i| (flat[i], flat[n + i])).collect()
}

pub(crate) fn from_points(points: &[(f64, f64)], flat: &mut [f64]) {
    let n = points.len();
    for (i, &(x, y)) in points.iter().enumerate() {
        flat[i] = x;
        flat[n + i] = y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    fn run(circuit: &Circuit, cfg: GlobalConfig) -> (Placement, GlobalStats) {
        GlobalPlacer::new(cfg).run(circuit)
    }

    #[test]
    fn global_placement_spreads_devices() {
        let c = testcases::cc_ota();
        let (p, stats) = run(&c, GlobalConfig::default());
        // Overlap should be far below the fully-stacked initial state.
        let stacked = Placement::new(c.num_devices());
        assert!(p.overlap_area(&c) < 0.5 * stacked.overlap_area(&c));
        assert!(stats.overflow < 0.5, "overflow {}", stats.overflow);
        assert!(stats.hpwl > 0.0);
    }

    #[test]
    fn devices_stay_inside_region() {
        let c = testcases::comp2();
        let (p, stats) = run(&c, GlobalConfig::default());
        for (i, d) in c.devices().iter().enumerate() {
            let (x, y) = p.positions[i];
            assert!(x >= d.width / 2.0 - 1e-6 && x <= stats.region_side - d.width / 2.0 + 1e-6);
            assert!(y >= d.height / 2.0 - 1e-6 && y <= stats.region_side - d.height / 2.0 + 1e-6);
        }
    }

    #[test]
    fn soft_symmetry_keeps_violation_small() {
        let c = testcases::cc_ota();
        let (p, _) = run(&c, GlobalConfig::default());
        let side = (c.total_device_area() / 0.35).sqrt();
        assert!(
            p.symmetry_violation(&c) < 0.25 * side,
            "violation {} vs side {side}",
            p.symmetry_violation(&c)
        );
    }

    #[test]
    fn hard_symmetry_is_exact() {
        let c = testcases::cc_ota();
        let cfg = GlobalConfig {
            symmetry: SymmetryMode::Hard,
            ..GlobalConfig::default()
        };
        let (p, _) = run(&c, cfg);
        assert!(p.symmetry_violation(&c) < 1e-9);
    }

    #[test]
    fn area_term_reduces_bounding_box() {
        let c = testcases::cm_ota1();
        let with_area = run(
            &c,
            GlobalConfig {
                seed: 3,
                ..GlobalConfig::default()
            },
        )
        .0;
        let without_area = run(
            &c,
            GlobalConfig {
                eta_scale: 0.0,
                seed: 3,
                ..GlobalConfig::default()
            },
        )
        .0;
        assert!(
            with_area.area(&c) < 1.3 * without_area.area(&c),
            "area term should not blow up the bounding box: {} vs {}",
            with_area.area(&c),
            without_area.area(&c)
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = testcases::adder();
        let a = run(&c, GlobalConfig::default()).0;
        let b = run(&c, GlobalConfig::default()).0;
        assert_eq!(a, b);
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted() {
        let c = testcases::cc_ota();
        let placer = GlobalPlacer::new(GlobalConfig::default());
        let (a, sa) = placer.run(&c);
        let budget = RunBudget::unlimited();
        let GpRun::Complete(b, sb) = placer.run_budgeted(&c, None, Some(&budget), None) else {
            panic!("unlimited budget must complete");
        };
        assert_eq!(a, b);
        assert_eq!(sa.hpwl.to_bits(), sb.hpwl.to_bits());
        assert_eq!(sa.iterations, sb.iterations);
    }

    #[test]
    fn cancel_then_resume_is_bit_identical() {
        let c = testcases::cc_ota();
        let placer = GlobalPlacer::new(GlobalConfig {
            max_iters: 120,
            ..GlobalConfig::default()
        });
        let (baseline, base_stats) = placer.run(&c);
        // The run converges after 60-odd iterations, so stay below that.
        for cancel_at in [0, 1, 7, 45] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let GpRun::Cancelled(ck) = placer.run_budgeted(&c, None, Some(&budget), None) else {
                panic!("expected cancellation at check {cancel_at}");
            };
            assert_eq!(ck.iter as u64, cancel_at);
            let resume_budget = RunBudget::unlimited();
            let GpRun::Complete(p, s) =
                placer.run_budgeted(&c, None, Some(&resume_budget), Some(&ck))
            else {
                panic!("resume must complete");
            };
            assert_eq!(p, baseline, "resume from iter {cancel_at} diverged");
            assert_eq!(s.hpwl.to_bits(), base_stats.hpwl.to_bits());
            assert_eq!(s.iterations, base_stats.iterations);
        }
    }

    #[test]
    fn repeated_cancellation_still_converges_exactly() {
        let c = testcases::adder();
        let placer = GlobalPlacer::new(GlobalConfig {
            max_iters: 100,
            ..GlobalConfig::default()
        });
        let (baseline, _) = placer.run(&c);
        // Interrupt every 9 iterations until the run completes.
        let mut checkpoint: Option<GpCheckpoint> = None;
        let final_placement = loop {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(9);
            match placer.run_budgeted(&c, None, Some(&budget), checkpoint.as_ref()) {
                GpRun::Complete(p, _) => break p,
                GpRun::Cancelled(ck) => checkpoint = Some(*ck),
                GpRun::Exhausted(..) => panic!("no deadline set"),
            }
        };
        assert_eq!(final_placement, baseline);
    }

    #[test]
    fn exhaustion_stops_at_the_step_budget() {
        let c = testcases::cc_ota();
        let placer = GlobalPlacer::new(GlobalConfig::default());
        let budget = RunBudget::steps(5);
        let GpRun::Exhausted(p, s) = placer.run_budgeted(&c, None, Some(&budget), None) else {
            panic!("step budget must exhaust");
        };
        assert_eq!(s.iterations, 5);
        assert_eq!(p.len(), c.num_devices());
    }

    #[test]
    fn extra_gradient_hook_is_invoked() {
        let c = testcases::adder();
        let mut calls = 0usize;
        let mut hook = |_pts: &[(f64, f64)], _grad: &mut [f64]| -> f64 {
            calls += 1;
            0.0
        };
        let placer = GlobalPlacer::new(GlobalConfig {
            max_iters: 10,
            ..GlobalConfig::default()
        });
        let _ = placer.run_with_extra(&c, Some(&mut hook));
        assert!(calls >= 10);
    }
}
