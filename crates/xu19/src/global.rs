//! Global placement of the ISPD'19 baseline \[11\]: LSE wirelength +
//! bell-shaped density + soft symmetry, **no area term**, solved with
//! nonlinear conjugate gradient (the NTUplace3 lineage).

use analog_netlist::{Circuit, Placement};
use placer_numeric::{minimize_cg, CgOptions};

use crate::bell::BellDensity;
use crate::lse::lse_wirelength;
use eplace::{symmetry_penalty, BudgetStatus, ConfigError, RunBudget};

/// Configuration of the baseline's global placement.
#[derive(Debug, Clone)]
pub struct Xu19GlobalConfig {
    /// Bin grid dimension per axis.
    pub bins: usize,
    /// Region utilization target.
    pub utilization: f64,
    /// Region aspect ratio W/H. W = side·√aspect, H = side/√aspect; 1.0 is
    /// the square region and is bit-identical to the pre-aspect behavior.
    pub aspect: f64,
    /// LSE smoothing γ as a multiple of the bin size.
    pub gamma_bins: f64,
    /// Density weight multiplier per outer round.
    pub beta_growth: f64,
    /// Outer rounds (density reweighting steps).
    pub rounds: usize,
    /// CG iterations per round.
    pub cg_iters: usize,
    /// Symmetry penalty scale.
    pub tau_scale: f64,
    /// Deterministic seed for the initial spread.
    pub seed: u64,
}

impl Default for Xu19GlobalConfig {
    fn default() -> Self {
        Self {
            bins: 24,
            utilization: 0.35,
            aspect: 1.0,
            gamma_bins: 2.0,
            beta_growth: 2.0,
            rounds: 8,
            cg_iters: 60,
            tau_scale: 0.6,
            seed: 1,
        }
    }
}

impl Xu19GlobalConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> Xu19GlobalConfigBuilder {
        Xu19GlobalConfigBuilder {
            config: Xu19GlobalConfig::default(),
        }
    }

    /// Checks every field; [`Xu19GlobalConfigBuilder::build`] calls this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bins < 2 {
            return Err(ConfigError::new("xu19.bins", "must be >= 2"));
        }
        eplace::require_fraction("xu19.utilization", self.utilization, 0.0, 1.0)?;
        eplace::require_positive("xu19.aspect", self.aspect)?;
        eplace::require_positive("xu19.gamma_bins", self.gamma_bins)?;
        if !self.beta_growth.is_finite() || self.beta_growth < 1.0 {
            return Err(ConfigError::new(
                "xu19.beta_growth",
                format!("must be finite and >= 1, got {}", self.beta_growth),
            ));
        }
        if self.rounds == 0 {
            return Err(ConfigError::new("xu19.rounds", "must be > 0"));
        }
        if self.cg_iters == 0 {
            return Err(ConfigError::new("xu19.cg_iters", "must be > 0"));
        }
        eplace::require_nonnegative("xu19.tau_scale", self.tau_scale)?;
        Ok(())
    }
}

/// Validating builder for [`Xu19GlobalConfig`]; see
/// [`Xu19GlobalConfig::builder`].
#[derive(Debug, Clone)]
pub struct Xu19GlobalConfigBuilder {
    config: Xu19GlobalConfig,
}

impl Xu19GlobalConfigBuilder {
    /// Sets the bin grid dimension per axis.
    pub fn bins(mut self, bins: usize) -> Self {
        self.config.bins = bins;
        self
    }

    /// Sets the region utilization target (must end up in `(0, 1]`).
    pub fn utilization(mut self, utilization: f64) -> Self {
        self.config.utilization = utilization;
        self
    }

    /// Sets the region aspect ratio W/H (must end up finite and positive).
    pub fn aspect(mut self, aspect: f64) -> Self {
        self.config.aspect = aspect;
        self
    }

    /// Sets the LSE smoothing γ as a multiple of the bin size.
    pub fn gamma_bins(mut self, gamma_bins: f64) -> Self {
        self.config.gamma_bins = gamma_bins;
        self
    }

    /// Sets the density weight multiplier per outer round.
    pub fn beta_growth(mut self, beta_growth: f64) -> Self {
        self.config.beta_growth = beta_growth;
        self
    }

    /// Sets the number of outer rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.rounds = rounds;
        self
    }

    /// Sets the CG iterations per round.
    pub fn cg_iters(mut self, cg_iters: usize) -> Self {
        self.config.cg_iters = cg_iters;
        self
    }

    /// Sets the symmetry penalty scale.
    pub fn tau_scale(mut self, tau_scale: f64) -> Self {
        self.config.tau_scale = tau_scale;
        self
    }

    /// Sets the deterministic seed for the initial spread.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<Xu19GlobalConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Statistics of a baseline global placement run.
#[derive(Debug, Clone)]
pub struct Xu19GlobalStats {
    /// Total CG iterations across rounds.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
    /// Region side (µm).
    pub region_side: f64,
}

/// Runs the baseline's global placement.
///
/// # Panics
///
/// Panics if the circuit has no devices.
pub fn run_global(circuit: &Circuit, cfg: &Xu19GlobalConfig) -> (Placement, Xu19GlobalStats) {
    run_global_with_extra(circuit, cfg, None)
}

/// Extra gradient hook type (used by the Perf* extension of Table V/VII).
pub type ExtraGradientFn<'a> = dyn FnMut(&[(f64, f64)], &mut [f64]) -> f64 + 'a;

/// A baseline global placement frozen at an outer-round boundary.
///
/// The normalization pass (spiral spread, gradient-derived `tau`) is a pure
/// function of circuit and config, so only the evolving quantities are
/// stored; [`run_global_budgeted`] recomputes the rest deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct Xu19Checkpoint {
    /// The next outer round to run.
    pub round: usize,
    /// Flat coordinates (`x[0..n]`, `y[n..2n]`) at the boundary.
    pub x: Vec<f64>,
    /// Density weight at the boundary.
    pub beta: f64,
    /// CG iterations spent so far.
    pub iterations: usize,
    /// Density overflow after the last finished round.
    pub overflow: f64,
}

/// What a budgeted baseline global placement produced.
#[derive(Debug, Clone)]
pub enum Xu19Run {
    /// Ran to convergence (overflow target or round limit).
    Complete(Placement, Xu19GlobalStats),
    /// Budget expired; coordinates as of the last finished round.
    Exhausted(Placement, Xu19GlobalStats),
    /// Cancelled at a round boundary; resume to finish bit-for-bit.
    Cancelled(Box<Xu19Checkpoint>),
}

/// Runs global placement with an optional extra gradient (Perf* variant).
pub fn run_global_with_extra(
    circuit: &Circuit,
    cfg: &Xu19GlobalConfig,
    extra: Option<&mut ExtraGradientFn<'_>>,
) -> (Placement, Xu19GlobalStats) {
    match run_global_budgeted(circuit, cfg, extra, None, None) {
        Xu19Run::Complete(p, s) | Xu19Run::Exhausted(p, s) => (p, s),
        Xu19Run::Cancelled(_) => unreachable!("no budget, cannot cancel"),
    }
}

/// [`run_global_with_extra`] under a [`RunBudget`], checked once per outer
/// round (the checkpoint granularity), optionally resuming a cancelled run.
pub fn run_global_budgeted(
    circuit: &Circuit,
    cfg: &Xu19GlobalConfig,
    mut extra: Option<&mut ExtraGradientFn<'_>>,
    budget: Option<&RunBudget>,
    resume: Option<&Xu19Checkpoint>,
) -> Xu19Run {
    static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("xu19_global");
    let _span = SPAN.enter();
    let n = circuit.num_devices();
    assert!(n > 0, "cannot place an empty circuit");
    let side = (circuit.total_device_area() / cfg.utilization).sqrt();
    let (side_x, side_y) = (side * cfg.aspect.sqrt(), side / cfg.aspect.sqrt());
    let bell = BellDensity::new(
        (0.0, 0.0),
        (side_x, side_y),
        cfg.bins,
        cfg.bins,
        cfg.utilization,
    );
    let gamma = cfg.gamma_bins * side / cfg.bins as f64;

    // Deterministic initial spread (same spiral as ePlace-A for fairness).
    let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
    let mut x = vec![0.0; 2 * n];
    for i in 0..n {
        let rx = side_x * 0.18 * ((i as f64 + 0.5) / n as f64).sqrt();
        let ry = side_y * 0.18 * ((i as f64 + 0.5) / n as f64).sqrt();
        let theta = golden * (i as f64 + cfg.seed as f64);
        x[i] = side_x / 2.0 + rx * theta.cos();
        x[n + i] = side_y / 2.0 + ry * theta.sin();
    }

    // Normalize weights from initial gradients.
    let pts0: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
    let mut g_wl = vec![0.0; 2 * n];
    lse_wirelength(circuit, &pts0, gamma, &mut g_wl);
    let mut g_bell = vec![0.0; 2 * n];
    bell.evaluate(circuit, &pts0, 1.0, &mut g_bell);
    let mut g_sym = vec![0.0; 2 * n];
    symmetry_penalty(circuit, &pts0, 1.0, &mut g_sym);
    let l1 = |g: &[f64]| g.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    let wl_norm = l1(&g_wl);
    let mut beta = 0.2 * wl_norm / l1(&g_bell);
    let tau = cfg.tau_scale * wl_norm / l1(&g_sym);

    let mut iterations = 0;
    let mut overflow = 1.0;
    let start_round = match resume {
        Some(ck) => {
            assert_eq!(ck.x.len(), 2 * n, "checkpoint sized for another circuit");
            x.copy_from_slice(&ck.x);
            beta = ck.beta;
            iterations = ck.iterations;
            overflow = ck.overflow;
            ck.round
        }
        None => 0,
    };
    let mut exhausted = false;
    for round in start_round..cfg.rounds {
        // Budget granularity == checkpoint granularity: one check per
        // outer round, never inside the CG solve.
        if let Some(b) = budget {
            match b.check() {
                BudgetStatus::Continue => {}
                BudgetStatus::Exhausted => {
                    exhausted = true;
                    break;
                }
                BudgetStatus::Cancelled => {
                    return Xu19Run::Cancelled(Box::new(Xu19Checkpoint {
                        round,
                        x,
                        beta,
                        iterations,
                        overflow,
                    }));
                }
            }
        }
        let opts = CgOptions {
            max_iters: cfg.cg_iters,
            grad_tol: 1e-5,
            initial_step: side / cfg.bins as f64 * 0.5,
            ..CgOptions::default()
        };
        let result = minimize_cg(
            |v, grad| {
                let pts: Vec<(f64, f64)> = (0..n).map(|i| (v[i], v[n + i])).collect();
                grad.iter_mut().for_each(|g| *g = 0.0);
                let wl = lse_wirelength(circuit, &pts, gamma, grad);
                let mut g_b = vec![0.0; 2 * n];
                let (pen, _) = bell.evaluate(circuit, &pts, beta, &mut g_b);
                for (g, gb) in grad.iter_mut().zip(&g_b) {
                    *g += gb;
                }
                let sym = symmetry_penalty(circuit, &pts, tau, grad);
                let extra_val = match extra.as_deref_mut() {
                    Some(hook) => hook(&pts, grad),
                    None => 0.0,
                };
                wl + beta * pen + tau * sym + extra_val
            },
            x.clone(),
            &opts,
        );
        x = result.x;
        iterations += result.iterations;
        // Clamp into the region.
        for (i, d) in circuit.devices().iter().enumerate() {
            let hw = (d.width / 2.0).min(side_x / 2.0);
            let hh = (d.height / 2.0).min(side_y / 2.0);
            x[i] = x[i].clamp(hw, side_x - hw);
            x[n + i] = x[n + i].clamp(hh, side_y - hh);
        }
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
        let mut scratch = vec![0.0; 2 * n];
        let (_, of) = bell.evaluate(circuit, &pts, 1.0, &mut scratch);
        overflow = of;
        placer_telemetry::record(
            "xu_round",
            &[
                ("round", round as f64),
                ("rounds", cfg.rounds as f64),
                ("cg_iters", result.iterations as f64),
                ("total_iters", iterations as f64),
                ("overflow", overflow),
                ("beta", beta),
                ("value", result.value),
            ],
        );
        if overflow < 0.08 {
            break;
        }
        beta *= cfg.beta_growth;
    }
    placer_telemetry::flush();

    let pts: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
    let placement = Placement::from_positions(pts);
    let stats = Xu19GlobalStats {
        iterations,
        overflow,
        region_side: side,
    };
    if exhausted {
        Xu19Run::Exhausted(placement, stats)
    } else {
        Xu19Run::Complete(placement, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn baseline_global_reduces_overlap() {
        let c = testcases::cc_ota();
        let (p, stats) = run_global(&c, &Xu19GlobalConfig::default());
        let stacked = Placement::new(c.num_devices());
        assert!(p.overlap_area(&c) < 0.7 * stacked.overlap_area(&c));
        assert!(stats.overflow < 0.6, "overflow {}", stats.overflow);
    }

    #[test]
    fn devices_stay_in_region() {
        let c = testcases::comp1();
        let (p, stats) = run_global(&c, &Xu19GlobalConfig::default());
        for (i, d) in c.devices().iter().enumerate() {
            let (x, y) = p.positions[i];
            assert!(x >= d.width / 2.0 - 1e-6 && x <= stats.region_side - d.width / 2.0 + 1e-6);
            assert!(y >= d.height / 2.0 - 1e-6 && y <= stats.region_side - d.height / 2.0 + 1e-6);
        }
    }

    #[test]
    fn deterministic_runs() {
        let c = testcases::adder();
        let a = run_global(&c, &Xu19GlobalConfig::default()).0;
        let b = run_global(&c, &Xu19GlobalConfig::default()).0;
        assert_eq!(a, b);
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted() {
        let c = testcases::cc_ota();
        let cfg = Xu19GlobalConfig::default();
        let (a, stats_a) = run_global(&c, &cfg);
        let Xu19Run::Complete(b, stats_b) =
            run_global_budgeted(&c, &cfg, None, Some(&RunBudget::unlimited()), None)
        else {
            panic!("unlimited budget must complete");
        };
        assert_eq!(a, b);
        assert_eq!(stats_a.iterations, stats_b.iterations);
        assert_eq!(stats_a.overflow.to_bits(), stats_b.overflow.to_bits());
    }

    #[test]
    fn cancel_then_resume_is_bit_identical() {
        let c = testcases::cc_ota();
        let cfg = Xu19GlobalConfig::default();
        let (reference, ref_stats) = run_global(&c, &cfg);

        for cancel_at in [0u64, 1, 3] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let Xu19Run::Cancelled(ck) = run_global_budgeted(&c, &cfg, None, Some(&budget), None)
            else {
                panic!("expected cancellation at check {cancel_at}");
            };
            let Xu19Run::Complete(resumed, stats) =
                run_global_budgeted(&c, &cfg, None, Some(&RunBudget::unlimited()), Some(&ck))
            else {
                panic!("resume must complete");
            };
            assert_eq!(reference, resumed, "cancel_at={cancel_at}");
            assert_eq!(ref_stats.iterations, stats.iterations);
            assert_eq!(ref_stats.overflow.to_bits(), stats.overflow.to_bits());
        }
    }

    #[test]
    fn exhaustion_stops_at_the_round_budget() {
        let c = testcases::cc_ota();
        let cfg = Xu19GlobalConfig::default();
        let Xu19Run::Exhausted(p, stats) =
            run_global_budgeted(&c, &cfg, None, Some(&RunBudget::steps(2)), None)
        else {
            panic!("a 2-round budget cannot finish 8 rounds");
        };
        assert_eq!(p.positions.len(), c.num_devices());
        // Two finished rounds cap the iteration count at 2 CG solves.
        assert!(stats.iterations <= 2 * cfg.cg_iters);
    }

    #[test]
    fn builder_validates_and_builds() {
        let cfg = Xu19GlobalConfig::builder()
            .bins(16)
            .utilization(0.5)
            .rounds(4)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(cfg.bins, 16);
        assert_eq!(cfg.rounds, 4);

        assert!(Xu19GlobalConfig::builder().bins(1).build().is_err());
        assert!(Xu19GlobalConfig::builder()
            .utilization(0.0)
            .build()
            .is_err());
        assert!(Xu19GlobalConfig::builder()
            .utilization(f64::NAN)
            .build()
            .is_err());
        assert!(Xu19GlobalConfig::builder()
            .beta_growth(0.5)
            .build()
            .is_err());
        assert!(Xu19GlobalConfig::builder().rounds(0).build().is_err());
        assert!(Xu19GlobalConfig::builder().cg_iters(0).build().is_err());
        assert!(Xu19GlobalConfig::builder().tau_scale(-1.0).build().is_err());
    }
}
