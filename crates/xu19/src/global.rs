//! Global placement of the ISPD'19 baseline \[11\]: LSE wirelength +
//! bell-shaped density + soft symmetry, **no area term**, solved with
//! nonlinear conjugate gradient (the NTUplace3 lineage).

use analog_netlist::{Circuit, Placement};
use placer_numeric::{minimize_cg, CgOptions};

use crate::bell::BellDensity;
use crate::lse::lse_wirelength;
use eplace::symmetry_penalty;

/// Configuration of the baseline's global placement.
#[derive(Debug, Clone)]
pub struct Xu19GlobalConfig {
    /// Bin grid dimension per axis.
    pub bins: usize,
    /// Region utilization target.
    pub utilization: f64,
    /// LSE smoothing γ as a multiple of the bin size.
    pub gamma_bins: f64,
    /// Density weight multiplier per outer round.
    pub beta_growth: f64,
    /// Outer rounds (density reweighting steps).
    pub rounds: usize,
    /// CG iterations per round.
    pub cg_iters: usize,
    /// Symmetry penalty scale.
    pub tau_scale: f64,
    /// Deterministic seed for the initial spread.
    pub seed: u64,
}

impl Default for Xu19GlobalConfig {
    fn default() -> Self {
        Self {
            bins: 24,
            utilization: 0.35,
            gamma_bins: 2.0,
            beta_growth: 2.0,
            rounds: 8,
            cg_iters: 60,
            tau_scale: 0.6,
            seed: 1,
        }
    }
}

/// Statistics of a baseline global placement run.
#[derive(Debug, Clone)]
pub struct Xu19GlobalStats {
    /// Total CG iterations across rounds.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
    /// Region side (µm).
    pub region_side: f64,
}

/// Runs the baseline's global placement.
///
/// # Panics
///
/// Panics if the circuit has no devices.
pub fn run_global(circuit: &Circuit, cfg: &Xu19GlobalConfig) -> (Placement, Xu19GlobalStats) {
    run_global_with_extra(circuit, cfg, None)
}

/// Extra gradient hook type (used by the Perf* extension of Table V/VII).
pub type ExtraGradientFn<'a> = dyn FnMut(&[(f64, f64)], &mut [f64]) -> f64 + 'a;

/// Runs global placement with an optional extra gradient (Perf* variant).
pub fn run_global_with_extra(
    circuit: &Circuit,
    cfg: &Xu19GlobalConfig,
    mut extra: Option<&mut ExtraGradientFn<'_>>,
) -> (Placement, Xu19GlobalStats) {
    static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("xu19_global");
    let _span = SPAN.enter();
    let n = circuit.num_devices();
    assert!(n > 0, "cannot place an empty circuit");
    let side = (circuit.total_device_area() / cfg.utilization).sqrt();
    let bell = BellDensity::new(
        (0.0, 0.0),
        (side, side),
        cfg.bins,
        cfg.bins,
        cfg.utilization,
    );
    let gamma = cfg.gamma_bins * side / cfg.bins as f64;

    // Deterministic initial spread (same spiral as ePlace-A for fairness).
    let golden = std::f64::consts::PI * (3.0 - 5.0_f64.sqrt());
    let mut x = vec![0.0; 2 * n];
    for i in 0..n {
        let r = side * 0.18 * ((i as f64 + 0.5) / n as f64).sqrt();
        let theta = golden * (i as f64 + cfg.seed as f64);
        x[i] = side / 2.0 + r * theta.cos();
        x[n + i] = side / 2.0 + r * theta.sin();
    }

    // Normalize weights from initial gradients.
    let pts0: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
    let mut g_wl = vec![0.0; 2 * n];
    lse_wirelength(circuit, &pts0, gamma, &mut g_wl);
    let mut g_bell = vec![0.0; 2 * n];
    bell.evaluate(circuit, &pts0, 1.0, &mut g_bell);
    let mut g_sym = vec![0.0; 2 * n];
    symmetry_penalty(circuit, &pts0, 1.0, &mut g_sym);
    let l1 = |g: &[f64]| g.iter().map(|v| v.abs()).sum::<f64>().max(1e-12);
    let wl_norm = l1(&g_wl);
    let mut beta = 0.2 * wl_norm / l1(&g_bell);
    let tau = cfg.tau_scale * wl_norm / l1(&g_sym);

    let mut iterations = 0;
    let mut overflow = 1.0;
    for round in 0..cfg.rounds {
        let opts = CgOptions {
            max_iters: cfg.cg_iters,
            grad_tol: 1e-5,
            initial_step: side / cfg.bins as f64 * 0.5,
            ..CgOptions::default()
        };
        let result = minimize_cg(
            |v, grad| {
                let pts: Vec<(f64, f64)> = (0..n).map(|i| (v[i], v[n + i])).collect();
                grad.iter_mut().for_each(|g| *g = 0.0);
                let wl = lse_wirelength(circuit, &pts, gamma, grad);
                let mut g_b = vec![0.0; 2 * n];
                let (pen, _) = bell.evaluate(circuit, &pts, beta, &mut g_b);
                for (g, gb) in grad.iter_mut().zip(&g_b) {
                    *g += gb;
                }
                let sym = symmetry_penalty(circuit, &pts, tau, grad);
                let extra_val = match extra.as_deref_mut() {
                    Some(hook) => hook(&pts, grad),
                    None => 0.0,
                };
                wl + beta * pen + tau * sym + extra_val
            },
            x.clone(),
            &opts,
        );
        x = result.x;
        iterations += result.iterations;
        // Clamp into the region.
        for (i, d) in circuit.devices().iter().enumerate() {
            let hw = (d.width / 2.0).min(side / 2.0);
            let hh = (d.height / 2.0).min(side / 2.0);
            x[i] = x[i].clamp(hw, side - hw);
            x[n + i] = x[n + i].clamp(hh, side - hh);
        }
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
        let mut scratch = vec![0.0; 2 * n];
        let (_, of) = bell.evaluate(circuit, &pts, 1.0, &mut scratch);
        overflow = of;
        placer_telemetry::record(
            "xu_round",
            &[
                ("round", round as f64),
                ("cg_iters", result.iterations as f64),
                ("total_iters", iterations as f64),
                ("overflow", overflow),
                ("beta", beta),
                ("value", result.value),
            ],
        );
        if overflow < 0.08 {
            break;
        }
        beta *= cfg.beta_growth;
    }
    placer_telemetry::flush();

    let pts: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
    (
        Placement::from_positions(pts),
        Xu19GlobalStats {
            iterations,
            overflow,
            region_side: side,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn baseline_global_reduces_overlap() {
        let c = testcases::cc_ota();
        let (p, stats) = run_global(&c, &Xu19GlobalConfig::default());
        let stacked = Placement::new(c.num_devices());
        assert!(p.overlap_area(&c) < 0.7 * stacked.overlap_area(&c));
        assert!(stats.overflow < 0.6, "overflow {}", stats.overflow);
    }

    #[test]
    fn devices_stay_in_region() {
        let c = testcases::comp1();
        let (p, stats) = run_global(&c, &Xu19GlobalConfig::default());
        for (i, d) in c.devices().iter().enumerate() {
            let (x, y) = p.positions[i];
            assert!(x >= d.width / 2.0 - 1e-6 && x <= stats.region_side - d.width / 2.0 + 1e-6);
            assert!(y >= d.height / 2.0 - 1e-6 && y <= stats.region_side - d.height / 2.0 + 1e-6);
        }
    }

    #[test]
    fn deterministic_runs() {
        let c = testcases::adder();
        let a = run_global(&c, &Xu19GlobalConfig::default()).0;
        let b = run_global(&c, &Xu19GlobalConfig::default()).0;
        assert_eq!(a, b);
    }
}
