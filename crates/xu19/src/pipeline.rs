//! End-to-end baseline pipeline: \[11\]'s global placement plus two-stage LP
//! legalization, and its "Perf*" extension (Table V/VII).

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use placer_gnn::Network;

use crate::global::{run_global_with_extra, Xu19GlobalConfig};
use crate::legalize::{legalize_two_stage, LegalizeError};

/// Result of a baseline placement run.
#[derive(Debug, Clone)]
pub struct Xu19Result {
    /// The final (legal) placement.
    pub placement: Placement,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Global placement wall time (s).
    pub gp_seconds: f64,
    /// Legalization wall time (s).
    pub dp_seconds: f64,
}

/// The ISPD'19 analytical analog placer (our reimplementation of \[11\]).
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use placer_xu19::Xu19Placer;
///
/// # fn main() -> Result<(), placer_xu19::LegalizeError> {
/// let circuit = testcases::adder();
/// let result = Xu19Placer::default().place(&circuit)?;
/// assert!(result.placement.overlapping_pairs(&circuit, 1e-6).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Xu19Placer {
    /// Global placement configuration.
    pub global: Xu19GlobalConfig,
}

impl Xu19Placer {
    /// Creates a placer with the given global configuration.
    pub fn new(global: Xu19GlobalConfig) -> Self {
        Self { global }
    }

    /// Runs the conventional (performance-oblivious) flow.
    ///
    /// # Errors
    ///
    /// Propagates [`LegalizeError`] from the LP stages.
    pub fn place(&self, circuit: &Circuit) -> Result<Xu19Result, LegalizeError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("xu19_place");
        let _span = SPAN.enter();
        let t0 = Instant::now();
        let (gp, _) = run_global_with_extra(circuit, &self.global, None);
        let gp_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (placement, stats) = legalize_two_stage(circuit, &gp)?;
        let dp_seconds = t1.elapsed().as_secs_f64();
        Ok(Xu19Result {
            placement,
            hpwl: stats.hpwl,
            area: stats.area,
            gp_seconds,
            dp_seconds,
        })
    }

    /// Runs only global placement (for Table IV's shared-GP comparison).
    pub fn global_only(&self, circuit: &Circuit) -> Placement {
        run_global_with_extra(circuit, &self.global, None).0
    }

    /// Runs the "Perf*" performance-driven extension: the same GNN gradient
    /// term ePlace-AP uses, grafted onto this baseline's global placement.
    ///
    /// # Errors
    ///
    /// Propagates [`LegalizeError`] from the LP stages.
    pub fn place_perf(
        &self,
        circuit: &Circuit,
        network: &Network,
        alpha: f64,
        scale: f64,
    ) -> Result<Xu19Result, LegalizeError> {
        let t0 = Instant::now();
        // Same zero-allocation gradient hook state ePlace-AP uses.
        let mut state = eplace::PerfGradHook::new(circuit, network, alpha, scale);
        let mut hook = move |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 { state.eval(pts, grad) };
        let (gp, _) = run_global_with_extra(circuit, &self.global, Some(&mut hook));
        let gp_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (placement, stats) = legalize_two_stage(circuit, &gp)?;
        let dp_seconds = t1.elapsed().as_secs_f64();
        Ok(Xu19Result {
            placement,
            hpwl: stats.hpwl,
            area: stats.area,
            gp_seconds,
            dp_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;
    use placer_gnn::Network;

    #[test]
    fn baseline_pipeline_is_legal() {
        let c = testcases::cc_ota();
        let r = Xu19Placer::default().place(&c).unwrap();
        assert!(r.placement.overlapping_pairs(&c, 1e-6).is_empty());
        assert!(r.placement.symmetry_violation(&c) < 1e-6);
        assert!(r.hpwl > 0.0 && r.area > 0.0);
    }

    #[test]
    fn perf_variant_runs() {
        let c = testcases::adder();
        let network = Network::default_config(6);
        let r = Xu19Placer::default()
            .place_perf(&c, &network, 0.5, 20.0)
            .unwrap();
        assert!(r.placement.overlapping_pairs(&c, 1e-6).is_empty());
    }
}
