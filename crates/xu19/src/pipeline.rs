//! End-to-end baseline pipeline: \[11\]'s global placement plus two-stage LP
//! legalization, and its "Perf*" extension (Table V/VII).

use std::time::Instant;

use analog_netlist::{Circuit, Placement};
use eplace::{
    expect_placer, Checkpoint, CheckpointError, PlaceError, PlaceOutcome, PlaceSolution, Placer,
    RunBudget,
};
use placer_gnn::Network;

use crate::global::{
    run_global_budgeted, run_global_with_extra, Xu19Checkpoint, Xu19GlobalConfig, Xu19Run,
};
use crate::legalize::legalize_two_stage;

/// Result of a baseline placement run.
#[derive(Debug, Clone)]
pub struct Xu19Result {
    /// The final (legal) placement.
    pub placement: Placement,
    /// Exact HPWL (µm).
    pub hpwl: f64,
    /// Bounding-box area (µm²).
    pub area: f64,
    /// Global placement wall time (s).
    pub gp_seconds: f64,
    /// Legalization wall time (s).
    pub dp_seconds: f64,
}

impl Xu19Result {
    /// Converts into the unified [`PlaceSolution`] (global placement is
    /// stage 1, LP legalization is stage 2).
    pub fn into_solution(self, iterations: usize) -> PlaceSolution {
        PlaceSolution {
            placement: self.placement,
            hpwl: self.hpwl,
            area: self.area,
            stage1_seconds: self.gp_seconds,
            stage2_seconds: self.dp_seconds,
            iterations,
        }
    }
}

/// The ISPD'19 analytical analog placer (our reimplementation of \[11\]).
///
/// # Examples
///
/// ```
/// use analog_netlist::testcases;
/// use placer_xu19::Xu19Placer;
///
/// # fn main() -> Result<(), eplace::PlaceError> {
/// let circuit = testcases::adder();
/// let result = Xu19Placer::default().place(&circuit)?;
/// assert!(result.placement.overlapping_pairs(&circuit, 1e-6).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Xu19Placer {
    /// Global placement configuration.
    pub global: Xu19GlobalConfig,
}

impl Xu19Placer {
    /// Creates a placer with the given global configuration.
    pub fn new(global: Xu19GlobalConfig) -> Self {
        Self { global }
    }

    /// Runs the conventional (performance-oblivious) flow.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError`] from the LP stages.
    pub fn place(&self, circuit: &Circuit) -> Result<Xu19Result, PlaceError> {
        static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("xu19_place");
        let _span = SPAN.enter();
        let t0 = Instant::now();
        let (gp, _) = run_global_with_extra(circuit, &self.global, None);
        let gp_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (placement, stats) = legalize_two_stage(circuit, &gp)?;
        let dp_seconds = t1.elapsed().as_secs_f64();
        Ok(Xu19Result {
            placement,
            hpwl: stats.hpwl,
            area: stats.area,
            gp_seconds,
            dp_seconds,
        })
    }

    /// Runs only global placement (for Table IV's shared-GP comparison).
    pub fn global_only(&self, circuit: &Circuit) -> Placement {
        run_global_with_extra(circuit, &self.global, None).0
    }

    /// Runs the "Perf*" performance-driven extension: the same GNN gradient
    /// term ePlace-AP uses, grafted onto this baseline's global placement.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError`] from the LP stages.
    pub fn place_perf(
        &self,
        circuit: &Circuit,
        network: &Network,
        alpha: f64,
        scale: f64,
    ) -> Result<Xu19Result, PlaceError> {
        let t0 = Instant::now();
        // Same zero-allocation gradient hook state ePlace-AP uses.
        let mut state = eplace::PerfGradHook::new(circuit, network, alpha, scale);
        let mut hook = move |pts: &[(f64, f64)], grad: &mut [f64]| -> f64 { state.eval(pts, grad) };
        let (gp, _) = run_global_with_extra(circuit, &self.global, Some(&mut hook));
        let gp_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (placement, stats) = legalize_two_stage(circuit, &gp)?;
        let dp_seconds = t1.elapsed().as_secs_f64();
        Ok(Xu19Result {
            placement,
            hpwl: stats.hpwl,
            area: stats.area,
            gp_seconds,
            dp_seconds,
        })
    }

    fn legalize_outcome(
        &self,
        circuit: &Circuit,
        gp: Placement,
        iterations: usize,
        gp_seconds: f64,
    ) -> Result<PlaceSolution, PlaceError> {
        let t1 = Instant::now();
        let (placement, stats) = legalize_two_stage(circuit, &gp)?;
        let dp_seconds = t1.elapsed().as_secs_f64();
        Ok(Xu19Result {
            placement,
            hpwl: stats.hpwl,
            area: stats.area,
            gp_seconds,
            dp_seconds,
        }
        .into_solution(iterations))
    }

    fn run_engine(
        &self,
        circuit: &Circuit,
        budget: &RunBudget,
        resume: Option<&Xu19Checkpoint>,
    ) -> Result<PlaceOutcome, PlaceError> {
        let t0 = Instant::now();
        let run = run_global_budgeted(circuit, &self.global, None, Some(budget), resume);
        let gp_seconds = t0.elapsed().as_secs_f64();
        match run {
            Xu19Run::Complete(gp, stats) => Ok(PlaceOutcome::Complete(self.legalize_outcome(
                circuit,
                gp,
                stats.iterations,
                gp_seconds,
            )?)),
            // The expired run's coordinates still legalize: the same LP
            // stages that finish a full run also repair a partial one.
            Xu19Run::Exhausted(gp, stats) => Ok(PlaceOutcome::Exhausted(self.legalize_outcome(
                circuit,
                gp,
                stats.iterations,
                gp_seconds,
            )?)),
            Xu19Run::Cancelled(ck) => Ok(PlaceOutcome::Cancelled(encode_checkpoint(circuit, &ck))),
        }
    }
}

impl Placer for Xu19Placer {
    fn name(&self) -> &'static str {
        "xu19"
    }

    fn place(&self, circuit: &Circuit, budget: &RunBudget) -> Result<PlaceOutcome, PlaceError> {
        self.run_engine(circuit, budget, None)
    }

    fn resume(
        &self,
        circuit: &Circuit,
        checkpoint: &Checkpoint,
        budget: &RunBudget,
    ) -> Result<PlaceOutcome, PlaceError> {
        expect_placer(checkpoint, self.name())?;
        let ck = decode_checkpoint(checkpoint, circuit, &self.global)?;
        self.run_engine(circuit, budget, Some(&ck))
    }

    // `place_artifacts`/`resume_artifacts` keep the trait defaults: the
    // Xu19 global pass derives only cheap per-run state (bell grids, LSE
    // scratch) from the circuit, so the shared parsed circuit is the whole
    // artifact win here.

    fn eco_refine(
        &self,
        artifacts: &eplace::CircuitArtifacts,
        warm: &Placement,
        _dirty: &[bool],
        _eco: &eplace::EcoConfig,
    ) -> Result<Option<(Placement, usize)>, PlaceError> {
        // Warm CG: resume the outer loop at its final round with the warm
        // coordinates as the frozen iterate. One round of CG polishes the
        // edit's surroundings; the ECO engine's region repair afterwards
        // pins everything outside the edit region, which realizes the
        // frozen-coordinate contract exactly.
        let circuit = artifacts.circuit();
        let n = circuit.num_devices();
        let mut x = vec![0.0; 2 * n];
        for (i, &(px, py)) in warm.positions.iter().enumerate() {
            x[i] = px;
            x[n + i] = py;
        }
        let ck = Xu19Checkpoint {
            round: self.global.rounds.saturating_sub(1),
            x,
            beta: 1.0,
            iterations: 0,
            overflow: 1.0,
        };
        let run = run_global_budgeted(circuit, &self.global, None, None, Some(&ck));
        match run {
            Xu19Run::Complete(mut p, stats) | Xu19Run::Exhausted(mut p, stats) => {
                // The CG stage does not model flips; keep the warm states.
                p.flips = warm.flips.clone();
                Ok(Some((p, stats.iterations)))
            }
            Xu19Run::Cancelled(_) => unreachable!("no budget, cannot cancel"),
        }
    }

    fn probe(&self, circuit: &Circuit, checkpoint: &Checkpoint) -> Option<eplace::RaceProbe> {
        // Best-so-far quality from the frozen solver coordinates — a pure
        // function of the checkpoint text (racing determinism contract).
        if checkpoint.placer() != "xu19" {
            return None;
        }
        let n = circuit.num_devices();
        let x = checkpoint.get_f64s("x").ok()?;
        if x.len() != 2 * n {
            return None;
        }
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (x[i], x[n + i])).collect();
        Some(eplace::RaceProbe {
            hpwl: eplace::wirelength::exact_hpwl(circuit, &pts),
            area: eplace::exact_area(circuit, &pts),
        })
    }
}

fn bad_checkpoint(message: String) -> PlaceError {
    PlaceError::BadCheckpoint(CheckpointError { line: 0, message })
}

fn encode_checkpoint(circuit: &Circuit, ck: &Xu19Checkpoint) -> Checkpoint {
    let mut out = Checkpoint::new("xu19");
    out.put_u64("n", circuit.num_devices() as u64);
    out.put_u64("round", ck.round as u64);
    out.put_f64("beta", ck.beta);
    out.put_u64("iterations", ck.iterations as u64);
    out.put_f64("overflow", ck.overflow);
    out.put_f64s("x", &ck.x);
    out
}

fn decode_checkpoint(
    ck: &Checkpoint,
    circuit: &Circuit,
    cfg: &Xu19GlobalConfig,
) -> Result<Xu19Checkpoint, PlaceError> {
    let n = circuit.num_devices();
    let stored_n = ck.get_u64("n")? as usize;
    if stored_n != n {
        return Err(bad_checkpoint(format!(
            "checkpoint is for a {stored_n}-device circuit, got {n} devices"
        )));
    }
    let x = ck.get_f64s("x")?;
    if x.len() != 2 * n {
        return Err(bad_checkpoint(format!(
            "`x` holds {} coordinates, expected {}",
            x.len(),
            2 * n
        )));
    }
    let round = ck.get_u64("round")? as usize;
    if round >= cfg.rounds {
        return Err(bad_checkpoint(format!(
            "`round` {round} out of range for {} rounds",
            cfg.rounds
        )));
    }
    Ok(Xu19Checkpoint {
        round,
        x: x.to_vec(),
        beta: ck.get_f64("beta")?,
        iterations: ck.get_u64("iterations")? as usize,
        overflow: ck.get_f64("overflow")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;
    use placer_gnn::Network;

    #[test]
    fn baseline_pipeline_is_legal() {
        let c = testcases::cc_ota();
        let r = Xu19Placer::default().place(&c).unwrap();
        assert!(r.placement.overlapping_pairs(&c, 1e-6).is_empty());
        assert!(r.placement.symmetry_violation(&c) < 1e-6);
        assert!(r.hpwl > 0.0 && r.area > 0.0);
    }

    #[test]
    fn perf_variant_runs() {
        let c = testcases::adder();
        let network = Network::default_config(6);
        let r = Xu19Placer::default()
            .place_perf(&c, &network, 0.5, 20.0)
            .unwrap();
        assert!(r.placement.overlapping_pairs(&c, 1e-6).is_empty());
    }

    #[test]
    fn trait_place_with_unlimited_budget_matches_legacy() {
        let c = testcases::cc_ota();
        let placer = Xu19Placer::default();
        let legacy = placer.place(&c).unwrap();
        let outcome = Placer::place(&placer, &c, &RunBudget::unlimited()).unwrap();
        assert!(outcome.is_complete());
        let s = outcome.solution().unwrap();
        assert_eq!(legacy.placement, s.placement);
        assert_eq!(legacy.hpwl.to_bits(), s.hpwl.to_bits());
        assert_eq!(legacy.area.to_bits(), s.area.to_bits());
    }

    #[test]
    fn cancel_resume_roundtrips_through_the_text_codec() {
        let c = testcases::cc_ota();
        let placer = Xu19Placer::default();
        let reference = Placer::place(&placer, &c, &RunBudget::unlimited()).unwrap();

        for cancel_at in [0u64, 2] {
            let budget = RunBudget::unlimited();
            budget.cancel_after_checks(cancel_at);
            let outcome = Placer::place(&placer, &c, &budget).unwrap();
            let ck = outcome.checkpoint().expect("cancelled");
            let decoded = Checkpoint::decode(&ck.encode()).unwrap();
            let resumed = placer
                .resume(&c, &decoded, &RunBudget::unlimited())
                .unwrap();
            let a = reference.solution().unwrap();
            let b = resumed.solution().expect("complete after resume");
            assert_eq!(a.placement, b.placement, "cancel_at={cancel_at}");
            assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn exhausted_runs_return_legal_placements() {
        let c = testcases::cc_ota();
        let placer = Xu19Placer::default();
        for steps in [1u64, 2] {
            let outcome = Placer::place(&placer, &c, &RunBudget::steps(steps)).unwrap();
            assert!(outcome.is_exhausted(), "steps={steps}");
            let s = outcome.solution().unwrap();
            assert!(
                s.placement.is_legal(&c, 1e-6),
                "steps={steps}: exhausted placement must stay legal"
            );
        }
    }

    #[test]
    fn eco_replace_fast_path_is_legal() {
        let c = testcases::cc_ota();
        let placer = Xu19Placer::default();
        let cold = placer.place(&c).unwrap();
        let artifacts = eplace::CircuitArtifacts::build(c.clone());
        let warm = eplace::eco::warm_checkpoint(&c, &cold.placement);
        let delta = analog_netlist::NetlistDelta::parse("resize RB 18k\n").unwrap();
        let rep = placer
            .replace(
                &artifacts,
                &delta,
                &warm,
                &RunBudget::unlimited(),
                &eplace::EcoConfig::default(),
            )
            .unwrap();
        assert!(rep.outcome.is_fast());
        let sol = rep.outcome.solution().unwrap();
        assert!(sol.placement.is_legal(rep.artifacts.circuit(), 1e-6));
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let c = testcases::adder();
        let placer = Xu19Placer::default();
        let mut foreign = Checkpoint::new("sa");
        foreign.put_u64("n", c.num_devices() as u64);
        let err = placer
            .resume(&c, &foreign, &RunBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, PlaceError::BadCheckpoint(_)));
    }
}
