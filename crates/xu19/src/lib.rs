//! # placer-xu19
//!
//! Reimplementation of the ISPD'19 *device layer-aware analytical analog
//! placer* of Xu et al. \[11\], the "previous analytical work" the DATE'22
//! paper compares against (the MAGICAL placement engine's lineage):
//!
//! - global placement with **LSE** wirelength smoothing, the NTUplace3
//!   **bell-shaped** density penalty, and soft symmetry, solved with
//!   nonlinear conjugate gradient — and **no area term**;
//! - **two-stage LP** legalization: area compaction, then wirelength
//!   minimization at a fixed outline — and **no device flipping**.
//!
//! Those three differences (area term, WA vs LSE, flipping) are exactly the
//! reasons the paper gives for ePlace-A's quality advantage (§IV-C).
//!
//! The `Perf*` extension of Tables V/VII (the same GNN gradient term as
//! ePlace-AP, grafted onto this placer) is [`Xu19Placer::place_perf`].
//!
//! # Examples
//!
//! ```
//! use analog_netlist::testcases;
//! use placer_xu19::Xu19Placer;
//!
//! # fn main() -> Result<(), eplace::PlaceError> {
//! let circuit = testcases::cc_ota();
//! let result = Xu19Placer::default().place(&circuit)?;
//! println!("area {:.1} µm², HPWL {:.1} µm", result.area, result.hpwl);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bell;
mod global;
mod legalize;
mod lse;
mod pipeline;

pub use bell::{bell_kernel, BellDensity};
pub use global::{
    run_global, run_global_budgeted, run_global_with_extra, Xu19Checkpoint, Xu19GlobalConfig,
    Xu19GlobalConfigBuilder, Xu19GlobalStats, Xu19Run,
};
pub use legalize::{legalize_two_stage, LegalizeStats};
pub use lse::{lse_spread_with_grad, lse_wirelength};
pub use pipeline::{Xu19Placer, Xu19Result};
