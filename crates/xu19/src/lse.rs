//! Log-sum-exponential (LSE) wirelength smoothing, as in NTUplace3 \[10\] and
//! the ISPD'19 analytical analog placer \[11\].
//!
//! `LSE_e(x) = γ·ln Σe^{xᵢ/γ} + γ·ln Σe^{−xᵢ/γ}` over-approximates
//! `max xᵢ − min xᵢ`; the paper credits part of ePlace-A's quality edge to
//! using the WA function instead (reason 2 in §IV-C).

use analog_netlist::Circuit;

/// One axis of LSE smoothing: smoothed spread plus gradient.
pub fn lse_spread_with_grad(coords: &[f64], gamma: f64, grads: &mut [f64]) -> f64 {
    debug_assert_eq!(coords.len(), grads.len());
    if coords.len() < 2 {
        grads.iter_mut().for_each(|g| *g = 0.0);
        return 0.0;
    }
    let xmax = coords.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let xmin = coords.iter().copied().fold(f64::INFINITY, f64::min);
    let mut s_max = 0.0;
    let mut s_min = 0.0;
    for &x in coords {
        s_max += ((x - xmax) / gamma).exp();
        s_min += ((xmin - x) / gamma).exp();
    }
    let value = xmax + gamma * s_max.ln() + (-(xmin) + gamma * s_min.ln());
    for (g, &x) in grads.iter_mut().zip(coords) {
        let p_max = ((x - xmax) / gamma).exp() / s_max;
        let p_min = ((xmin - x) / gamma).exp() / s_min;
        *g = p_max - p_min;
    }
    value
}

/// Smoothed total wirelength with LSE, same layout conventions as
/// `eplace::wirelength::wa_wirelength` (`[dx…, dy…]` gradient).
///
/// # Panics
///
/// Panics on size mismatches.
pub fn lse_wirelength(
    circuit: &Circuit,
    positions: &[(f64, f64)],
    gamma: f64,
    grad: &mut [f64],
) -> f64 {
    let n = circuit.num_devices();
    assert_eq!(positions.len(), n, "positions length mismatch");
    assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
    grad.iter_mut().for_each(|g| *g = 0.0);
    let mut total = 0.0;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut gx = Vec::new();
    let mut gy = Vec::new();
    for net in circuit.nets() {
        if net.pins.len() < 2 {
            continue;
        }
        xs.clear();
        ys.clear();
        for p in &net.pins {
            let d = circuit.device(p.device);
            let (cx, cy) = positions[p.device.index()];
            xs.push(cx - d.width / 2.0 + d.pins[p.pin.index()].offset.0);
            ys.push(cy - d.height / 2.0 + d.pins[p.pin.index()].offset.1);
        }
        gx.resize(xs.len(), 0.0);
        gy.resize(ys.len(), 0.0);
        let wx = lse_spread_with_grad(&xs, gamma, &mut gx);
        let wy = lse_spread_with_grad(&ys, gamma, &mut gy);
        total += net.weight * (wx + wy);
        for (k, p) in net.pins.iter().enumerate() {
            grad[p.device.index()] += net.weight * gx[k];
            grad[n + p.device.index()] += net.weight * gy[k];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn lse_overestimates_exact_spread() {
        let coords = [0.0, 2.0, 5.0];
        let mut g = vec![0.0; 3];
        let v = lse_spread_with_grad(&coords, 1.0, &mut g);
        assert!(v >= 5.0, "LSE {v} should over-approximate 5.0");
    }

    #[test]
    fn lse_converges_to_exact_as_gamma_shrinks() {
        let coords = [1.0, -2.0, 4.5, 0.3];
        let mut g = vec![0.0; 4];
        let tight = lse_spread_with_grad(&coords, 0.01, &mut g);
        assert!((tight - 6.5).abs() < 1e-6);
    }

    #[test]
    fn lse_and_wa_bracket_the_exact_spread() {
        // LSE over-approximates the spread while WA under-approximates it;
        // the paper's reason 2 (smaller WA error, [23]) builds on these
        // opposite biases.
        let sets: [&[f64]; 3] = [
            &[0.0, 0.7, 1.1, 2.9, 3.0, 6.2],
            &[-1.0, 4.0],
            &[0.0, 0.1, 0.2, 5.0, 9.9, 10.0],
        ];
        for coords in sets {
            let exact = coords.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - coords.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut g = vec![0.0; coords.len()];
            let lse = lse_spread_with_grad(coords, 1.0, &mut g);
            let wa = eplace::wirelength::wa_spread_with_grad(coords, 1.0, &mut g);
            assert!(lse >= exact - 1e-9, "LSE {lse} under exact {exact}");
            assert!(wa <= exact + 1e-9, "WA {wa} over exact {exact}");
        }
    }

    #[test]
    fn both_smoothers_converge_with_gamma() {
        // Errors of both estimators vanish as γ → 0 (their comparison at a
        // fixed γ depends on normalization conventions, see [23]).
        let coords = [0.0, 0.7, 1.1, 2.9, 3.0, 6.2];
        let mut g = vec![0.0; coords.len()];
        for (loose, tight) in [(2.0, 0.2), (1.0, 0.1)] {
            let e_loose = (lse_spread_with_grad(&coords, loose, &mut g) - 6.2).abs();
            let e_tight = (lse_spread_with_grad(&coords, tight, &mut g) - 6.2).abs();
            assert!(e_tight < e_loose);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let coords = vec![0.5, 3.1, -2.0, 4.4];
        let gamma = 0.7;
        let mut g = vec![0.0; 4];
        lse_spread_with_grad(&coords, gamma, &mut g);
        let eps = 1e-6;
        let mut scratch = vec![0.0; 4];
        for i in 0..4 {
            let mut p = coords.clone();
            p[i] += eps;
            let mut m = coords.clone();
            m[i] -= eps;
            let fp = lse_spread_with_grad(&p, gamma, &mut scratch);
            let fm = lse_spread_with_grad(&m, gamma, &mut scratch);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - g[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn circuit_lse_positive_on_spread_placement() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let positions: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * 2.0, 0.0)).collect();
        let mut grad = vec![0.0; 2 * n];
        let v = lse_wirelength(&c, &positions, 1.0, &mut grad);
        assert!(v > 0.0);
        assert!(grad.iter().any(|g| g.abs() > 0.0));
    }
}
