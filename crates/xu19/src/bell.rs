//! Bell-shaped density penalty (NTUplace3 \[10\]), used by the ISPD'19
//! analytical analog placer \[11\].
//!
//! Each device spreads its area into bins through a smooth bell-shaped
//! overlap kernel; the penalty is `Σ_b (D_b − D_target)²` with an analytic
//! gradient. This contrasts with ePlace's electrostatic formulation and is
//! one of the methodological differences the paper's comparison probes.

use analog_netlist::Circuit;

/// The bell-shaped overlap kernel of NTUplace3 between a device of
/// half-extent `hw` centered at distance `d` from a bin center, with bin
/// half-extent `hb`: smooth, 1 at `d = 0`, 0 beyond `hw + 2hb`.
///
/// Returns `(value, dvalue/dd)`.
pub fn bell_kernel(d: f64, hw: f64, hb: f64) -> (f64, f64) {
    let sign = if d < 0.0 { -1.0 } else { 1.0 };
    let d = d.abs();
    let r1 = hw + hb;
    let r2 = hw + 3.0 * hb;
    // p(d) = 1 − a·d² on [0, r1], b·(d − r2)² on [r1, r2], 0 beyond, with
    // C¹ continuity: a = 1/(r1·r2), b = 1/(2·hb·r2).
    let a = 1.0 / (r1 * r2).max(1e-12);
    let b = 1.0 / (2.0 * hb * r2).max(1e-12);
    if d <= r1 {
        (1.0 - a * d * d, sign * (-2.0 * a * d))
    } else if d <= r2 {
        (b * (d - r2) * (d - r2), sign * (2.0 * b * (d - r2)))
    } else {
        (0.0, 0.0)
    }
}

/// Bell-shaped density evaluator on a uniform bin grid.
#[derive(Debug, Clone)]
pub struct BellDensity {
    origin: (f64, f64),
    bin: (f64, f64),
    dims: (usize, usize),
    target: f64,
}

impl BellDensity {
    /// Creates an evaluator over `[origin, origin + extent]` with
    /// `nx × ny` bins and a target per-bin fill fraction.
    ///
    /// # Panics
    ///
    /// Panics unless dimensions and extents are positive.
    pub fn new(origin: (f64, f64), extent: (f64, f64), nx: usize, ny: usize, target: f64) -> Self {
        assert!(nx > 0 && ny > 0, "bin dimensions must be nonzero");
        assert!(extent.0 > 0.0 && extent.1 > 0.0, "extent must be positive");
        Self {
            origin,
            bin: (extent.0 / nx as f64, extent.1 / ny as f64),
            dims: (nx, ny),
            target: target.max(1e-6),
        }
    }

    /// Evaluates the quadratic density penalty and accumulates its
    /// gradient (scaled by `weight`) into `grad` (`[dx…, dy…]`).
    /// Returns `(penalty, overflow)` where overflow is the fraction of
    /// device area in bins above full occupancy.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn evaluate(
        &self,
        circuit: &Circuit,
        positions: &[(f64, f64)],
        weight: f64,
        grad: &mut [f64],
    ) -> (f64, f64) {
        let n = circuit.num_devices();
        assert_eq!(positions.len(), n, "positions length mismatch");
        assert_eq!(grad.len(), 2 * n, "gradient length mismatch");
        let (nx, ny) = self.dims;
        let (bx, by) = self.bin;
        let (hbx, hby) = (bx / 2.0, by / 2.0);
        let bin_area = bx * by;

        // Pass 1: accumulate bell-shaped density per bin, remembering each
        // device's per-bin kernel values for the gradient pass.
        let mut density = vec![0.0; nx * ny];
        // (device, bin index, px, dpx, py, dpy, scale)
        let mut contribs: Vec<(usize, usize, f64, f64, f64, f64, f64)> = Vec::new();
        for (i, dev) in circuit.devices().iter().enumerate() {
            let (cx, cy) = positions[i];
            let hw = dev.width / 2.0;
            let hh = dev.height / 2.0;
            // Normalization so the total spread mass equals the device area.
            let reach_x = hw + 3.0 * hbx;
            let reach_y = hh + 3.0 * hby;
            let x0 = (((cx - reach_x - self.origin.0) / bx).floor().max(0.0)) as usize;
            let x1 = (((cx + reach_x - self.origin.0) / bx).ceil()).min(nx as f64 - 1.0) as usize;
            let y0 = (((cy - reach_y - self.origin.1) / by).floor().max(0.0)) as usize;
            let y1 = (((cy + reach_y - self.origin.1) / by).ceil()).min(ny as f64 - 1.0) as usize;
            // First, compute the kernel sum for mass normalization.
            let mut ksum = 0.0;
            for gy in y0..=y1 {
                let bcy = self.origin.1 + (gy as f64 + 0.5) * by;
                let (py, _) = bell_kernel(cy - bcy, hh, hby);
                for gx in x0..=x1 {
                    let bcx = self.origin.0 + (gx as f64 + 0.5) * bx;
                    let (px, _) = bell_kernel(cx - bcx, hw, hbx);
                    ksum += px * py;
                }
            }
            if ksum <= 0.0 {
                continue;
            }
            let scale = dev.area() / (ksum * bin_area);
            for gy in y0..=y1 {
                let bcy = self.origin.1 + (gy as f64 + 0.5) * by;
                let (py, dpy) = bell_kernel(cy - bcy, hh, hby);
                for gx in x0..=x1 {
                    let bcx = self.origin.0 + (gx as f64 + 0.5) * bx;
                    let (px, dpx) = bell_kernel(cx - bcx, hw, hbx);
                    let idx = gy * nx + gx;
                    density[idx] += scale * px * py;
                    contribs.push((i, idx, px, dpx, py, dpy, scale));
                }
            }
        }

        // Penalty and overflow.
        let mut penalty = 0.0;
        let mut over = 0.0;
        for &d in &density {
            let excess = d - self.target;
            if excess > 0.0 {
                penalty += excess * excess;
            }
            over += (d - 1.0).max(0.0) * bin_area;
        }
        let total_area = circuit.total_device_area().max(1e-12);
        let overflow = over / total_area;

        // Gradient: dP/dx_i = Σ_b 2(D_b − t)+ · scale · dpx · py.
        for &(i, idx, px, dpx, py, dpy, scale) in &contribs {
            let excess = density[idx] - self.target;
            if excess > 0.0 {
                grad[i] += weight * 2.0 * excess * scale * dpx * py;
                grad[n + i] += weight * 2.0 * excess * scale * px * dpy;
            }
        }
        (penalty, overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analog_netlist::testcases;

    #[test]
    fn kernel_is_smooth_and_compact() {
        let (hw, hb) = (1.0, 0.25);
        let (v0, d0) = bell_kernel(0.0, hw, hb);
        assert!((v0 - 1.0).abs() < 1e-12);
        assert_eq!(d0, 0.0);
        let (v_far, d_far) = bell_kernel(hw + 3.0 * hb + 0.1, hw, hb);
        assert_eq!(v_far, 0.0);
        assert_eq!(d_far, 0.0);
        // Continuity at the knee r1.
        let r1 = hw + hb;
        let (va, _) = bell_kernel(r1 - 1e-9, hw, hb);
        let (vb, _) = bell_kernel(r1 + 1e-9, hw, hb);
        assert!((va - vb).abs() < 1e-6);
    }

    #[test]
    fn kernel_gradient_matches_finite_differences() {
        let (hw, hb) = (0.8, 0.3);
        for &d in &[0.1, 0.5, 1.0, 1.3, 1.6] {
            let (_, g) = bell_kernel(d, hw, hb);
            let eps = 1e-7;
            let (vp, _) = bell_kernel(d + eps, hw, hb);
            let (vm, _) = bell_kernel(d - eps, hw, hb);
            let numeric = (vp - vm) / (2.0 * eps);
            assert!((numeric - g).abs() < 1e-5, "d={d}: {numeric} vs {g}");
        }
    }

    #[test]
    fn stacked_devices_have_higher_penalty() {
        let c = testcases::cc_ota();
        let n = c.num_devices();
        let side = (c.total_device_area() / 0.4).sqrt();
        let bell = BellDensity::new((0.0, 0.0), (side, side), 24, 24, 0.4);
        let stacked = vec![(side / 2.0, side / 2.0); n];
        let spread: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    (i % 4) as f64 / 4.0 * side + side / 8.0,
                    (i / 4) as f64 / 4.0 * side + side / 8.0,
                )
            })
            .collect();
        let mut g = vec![0.0; 2 * n];
        let (p_stacked, o_stacked) = bell.evaluate(&c, &stacked, 1.0, &mut g);
        g.iter_mut().for_each(|v| *v = 0.0);
        let (p_spread, o_spread) = bell.evaluate(&c, &spread, 1.0, &mut g);
        assert!(p_stacked > p_spread);
        assert!(o_stacked > o_spread);
    }

    #[test]
    fn density_gradient_matches_finite_differences() {
        let c = testcases::adder();
        let n = c.num_devices();
        let side = (c.total_device_area() / 0.4).sqrt();
        let bell = BellDensity::new((0.0, 0.0), (side, side), 16, 16, 0.4);
        let mut positions: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    side * 0.35 + (i % 3) as f64 * 0.9,
                    side * 0.35 + (i / 3) as f64 * 0.8,
                )
            })
            .collect();
        let mut grad = vec![0.0; 2 * n];
        bell.evaluate(&c, &positions, 1.0, &mut grad);
        let eps = 1e-6;
        let mut scratch = vec![0.0; 2 * n];
        for dev in [0usize, 3] {
            let orig = positions[dev];
            positions[dev] = (orig.0 + eps, orig.1);
            scratch.iter_mut().for_each(|v| *v = 0.0);
            let (fp, _) = bell.evaluate(&c, &positions, 1.0, &mut scratch);
            positions[dev] = (orig.0 - eps, orig.1);
            scratch.iter_mut().for_each(|v| *v = 0.0);
            let (fm, _) = bell.evaluate(&c, &positions, 1.0, &mut scratch);
            positions[dev] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            // The gradient freezes the per-device mass normalization (which
            // drifts slowly with position), so it is ~5%-accurate; require
            // agreement within 10%.
            assert!(
                (numeric - grad[dev]).abs() < 0.1 * (1.0 + numeric.abs()),
                "dev {dev}: numeric {numeric} vs analytic {}",
                grad[dev]
            );
        }
    }
}
