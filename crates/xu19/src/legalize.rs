//! Two-stage LP legalization + detailed placement of \[11\]:
//! LP #1 compacts area subject to separation constraints derived from the
//! global placement's relative order; LP #2 minimizes wirelength with the
//! chip outline fixed to LP #1's result. No device flipping — the paper
//! names flipping as one of ePlace-A's advantages (Table IV).

use analog_netlist::{AlignKind, Axis, Circuit, DeviceId, Placement};
use eplace::{PlaceError, SepEdge, SeparationPlanner};
use placer_mathopt::{ConstraintOp, Model, SolveError, VarId};

/// Statistics from the two LP stages.
#[derive(Debug, Clone)]
pub struct LegalizeStats {
    /// Chip extent after the area-compaction stage (µm per axis).
    pub compacted: (f64, f64),
    /// Exact HPWL of the result.
    pub hpwl: f64,
    /// Bounding-box area of the result.
    pub area: f64,
    /// Refinement rounds used.
    pub rounds: usize,
}

fn axis_extent(circuit: &Circuit, axis: usize, d: DeviceId) -> f64 {
    let dev = circuit.device(d);
    if axis == 0 {
        dev.width
    } else {
        dev.height
    }
}

/// Builds the constraint rows shared by both LP stages for one axis.
/// Returns the coordinate variables.
fn add_axis_constraints(
    model: &mut Model,
    circuit: &Circuit,
    axis: usize,
    seps: &[SepEdge],
    chip: VarId,
) -> Vec<VarId> {
    let n = circuit.num_devices();
    let xs: Vec<VarId> = (0..n)
        .map(|i| {
            let half = axis_extent(circuit, axis, DeviceId::new(i)) / 2.0;
            model.add_var(format!("c{axis}_{i}"), half, f64::INFINITY, 0.0)
        })
        .collect();
    for (i, &x) in xs.iter().enumerate() {
        let half = axis_extent(circuit, axis, DeviceId::new(i)) / 2.0;
        model.add_constraint(vec![(x, 1.0), (chip, -1.0)], ConstraintOp::Le, -half);
    }
    for &(a, b) in seps {
        let (i, j) = (a.index(), b.index());
        let gap = (axis_extent(circuit, axis, a) + axis_extent(circuit, axis, b)) / 2.0;
        model.add_constraint(vec![(xs[i], 1.0), (xs[j], -1.0)], ConstraintOp::Le, -gap);
    }
    // Symmetry.
    for g in &circuit.constraints().symmetry_groups {
        let on_axis = matches!((g.axis, axis), (Axis::Vertical, 0) | (Axis::Horizontal, 1));
        if on_axis {
            let m = model.add_var(format!("m{axis}_{}", g.name), 0.0, f64::INFINITY, 0.0);
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], 1.0), (m, -2.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            for &s in &g.self_symmetric {
                model.add_constraint(vec![(xs[s.index()], 1.0), (m, -1.0)], ConstraintOp::Eq, 0.0);
            }
        } else {
            for &(a, b) in &g.pairs {
                model.add_constraint(
                    vec![(xs[a.index()], 1.0), (xs[b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
        }
    }
    // Alignment.
    for al in &circuit.constraints().alignments {
        match (al.kind, axis) {
            (AlignKind::Bottom, 1) => {
                let ha = axis_extent(circuit, 1, al.a) / 2.0;
                let hb = axis_extent(circuit, 1, al.b) / 2.0;
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    ha - hb,
                );
            }
            (AlignKind::VerticalCenter, 0) => {
                model.add_constraint(
                    vec![(xs[al.a.index()], 1.0), (xs[al.b.index()], -1.0)],
                    ConstraintOp::Eq,
                    0.0,
                );
            }
            _ => {}
        }
    }
    xs
}

/// Stage 1: area compaction — minimize the chip extent per axis.
fn compact_axis(circuit: &Circuit, axis: usize, seps: &[SepEdge]) -> Result<f64, PlaceError> {
    static SPAN: placer_telemetry::SpanStat = placer_telemetry::SpanStat::new("xu19_compact_axis");
    let _span = SPAN.enter();
    let mut model = Model::new();
    let chip = model.add_var("chip", 0.0, f64::INFINITY, 1.0);
    let _ = add_axis_constraints(&mut model, circuit, axis, seps, chip);
    let sol = model.solve_lp().inspect_err(|_| {
        if placer_telemetry::verbose(1) {
            if let Ok((total, rows)) = model.diagnose_infeasibility() {
                placer_telemetry::vlog!(
                    1,
                    "xu19 compact axis {axis}: infeasibility {total:.3}, rows {rows:?}"
                );
                if placer_telemetry::verbose(3) {
                    // Level 3 turns on dump files for offline inspection.
                    let _ = std::fs::write("/tmp/xu19_model.txt", model.dump());
                }
            }
        }
    })?;
    Ok(sol.value(chip))
}

/// Stage 2: wirelength minimization with the chip extent fixed.
fn wirelength_axis(
    circuit: &Circuit,
    axis: usize,
    seps: &[SepEdge],
    chip_extent: f64,
) -> Result<Vec<f64>, PlaceError> {
    let mut model = Model::new();
    let chip = model.add_var("chip", 0.0, chip_extent, 0.0);
    let xs = add_axis_constraints(&mut model, circuit, axis, seps, chip);
    for net in circuit.nets() {
        if net.pins.len() < 2 {
            continue;
        }
        let lo = model.add_var(format!("lo_{}", net.name), 0.0, f64::INFINITY, -net.weight);
        let hi = model.add_var(format!("hi_{}", net.name), 0.0, f64::INFINITY, net.weight);
        for p in &net.pins {
            let d = circuit.device(p.device);
            let off = if axis == 0 {
                d.pins[p.pin.index()].offset.0 - d.width / 2.0
            } else {
                d.pins[p.pin.index()].offset.1 - d.height / 2.0
            };
            let x = xs[p.device.index()];
            model.add_constraint(vec![(lo, 1.0), (x, -1.0)], ConstraintOp::Le, off);
            model.add_constraint(vec![(x, 1.0), (hi, -1.0)], ConstraintOp::Le, -off);
        }
    }
    let sol = model.solve_lp()?;
    Ok(xs.iter().map(|&x| sol.value(x)).collect())
}

/// Runs the baseline's two-stage legalization on a global placement.
///
/// # Errors
///
/// Returns [`PlaceError`] when an LP stage fails or refinement exhausts.
pub fn legalize_two_stage(
    circuit: &Circuit,
    global: &Placement,
) -> Result<(Placement, LegalizeStats), PlaceError> {
    // [11] freezes the relative order of *every* pair from global placement
    // (constraint-graph legalization). On rare inputs that full graph
    // contradicts the symmetry/ordering equalities through a chain the
    // planner's pairwise reasoning cannot see; fall back to the incremental
    // (overlapping-pairs-only) graph in that case.
    match legalize_with(circuit, global, true) {
        Err(PlaceError::Solve(SolveError::Infeasible)) => legalize_with(circuit, global, false),
        other => other,
    }
}

fn legalize_with(
    circuit: &Circuit,
    global: &Placement,
    all_pairs: bool,
) -> Result<(Placement, LegalizeStats), PlaceError> {
    let mut planner = SeparationPlanner::new(circuit);
    if all_pairs {
        planner.extend_all_pairs(circuit, global);
    } else {
        planner.extend_from(circuit, global);
    }
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 12 {
            return Err(PlaceError::RefinementExhausted);
        }
        // Stage 1 per axis.
        let wx = compact_axis(circuit, 0, planner.x_edges())?;
        let wy = compact_axis(circuit, 1, planner.y_edges())?;
        // Stage 2 per axis: wirelength is minimized strictly within the
        // compacted outline, as in [11]'s area-then-wirelength ordering.
        let xs = wirelength_axis(circuit, 0, planner.x_edges(), wx)?;
        let ys = wirelength_axis(circuit, 1, planner.y_edges(), wy)?;
        let mut placement = Placement::new(circuit.num_devices());
        for i in 0..circuit.num_devices() {
            placement.positions[i] = (xs[i], ys[i]);
        }
        if placement.overlapping_pairs(circuit, 1e-6).is_empty() {
            let hpwl = placement.hpwl(circuit);
            let area = placement.area(circuit);
            return Ok((
                placement,
                LegalizeStats {
                    compacted: (wx, wy),
                    hpwl,
                    area,
                    rounds,
                },
            ));
        }
        if !planner.extend_from(circuit, &placement) {
            return Err(PlaceError::RefinementExhausted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_global, Xu19GlobalConfig};
    use analog_netlist::testcases;

    #[test]
    fn two_stage_legalization_is_legal() {
        for circuit in [testcases::adder(), testcases::cc_ota()] {
            let (gp, _) = run_global(&circuit, &Xu19GlobalConfig::default());
            let (p, stats) = legalize_two_stage(&circuit, &gp).unwrap();
            assert!(
                p.overlapping_pairs(&circuit, 1e-6).is_empty(),
                "{} has overlaps",
                circuit.name()
            );
            assert!(p.symmetry_violation(&circuit) < 1e-6);
            assert!(stats.hpwl > 0.0);
            assert!(stats.area > 0.0);
        }
    }

    #[test]
    fn no_flipping_in_result() {
        let circuit = testcases::cc_ota();
        let (gp, _) = run_global(&circuit, &Xu19GlobalConfig::default());
        let (p, _) = legalize_two_stage(&circuit, &gp).unwrap();
        assert!(p.flips.iter().all(|&(fx, fy)| !fx && !fy));
    }

    #[test]
    fn compaction_bounds_area() {
        let circuit = testcases::adder();
        let (gp, _) = run_global(&circuit, &Xu19GlobalConfig::default());
        let (_, stats) = legalize_two_stage(&circuit, &gp).unwrap();
        // The compacted outline (with 10% slack per axis) bounds the result.
        assert!(stats.area <= stats.compacted.0 * 1.1 * stats.compacted.1 * 1.1 + 1e-6);
    }
}
