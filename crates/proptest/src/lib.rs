//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_shuffle`,
//! range and tuple strategies, [`Just`], `proptest::collection::vec`,
//! `prop::bool::ANY`, the [`proptest!`] macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert!` family.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! case index; re-running reproduces it exactly because generation is
//! deterministic per test name), and the default case count is 32.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property test deterministically.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
    current_case: u32,
}

impl TestRunner {
    /// Creates a runner whose random stream is a pure function of the test
    /// name, so every `cargo test` run replays the same cases.
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
            current_case: 0,
        }
    }

    /// Total cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Marks the start of case `i` (used in failure messages).
    pub fn begin_case(&mut self, i: u32) {
        self.current_case = i;
    }

    /// Case currently executing.
    pub fn current_case(&self) -> u32 {
        self.current_case
    }

    /// The generator used for value generation.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Shuffles generated vectors.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy<Value = Vec<T>>, T> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform over `{true, false}`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs (mirrors `proptest::prelude`).
pub mod prelude {
    /// Alias to the crate root, so `prop::bool::ANY` and
    /// `prop::collection::vec` resolve as they do upstream.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test; panics with case context on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption does not hold.
///
/// Unlike upstream proptest, a rejected case is not replaced with a fresh
/// input — it simply exits early. Expands to `return`, so it is only valid
/// at statement level directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each declared function runs its body for `cases` deterministic random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                for __case in 0..runner.cases() {
                    runner.begin_case(__case);
                    $( let $arg = $crate::Strategy::generate(&($strat), runner.rng()); )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (deterministic; rerun reproduces)",
                            stringify!($name),
                            __case + 1,
                            runner.cases(),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let cfg = ProptestConfig::default();
        let mut runner = crate::TestRunner::new(&cfg, "bounds");
        for _ in 0..100 {
            let x = (0.5..2.5f64).generate(runner.rng());
            assert!((0.5..2.5).contains(&x));
            let v = prop::collection::vec(0..10u32, 3..=5).generate(runner.rng());
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let cfg = ProptestConfig::with_cases(4);
        let mut a = crate::TestRunner::new(&cfg, "same");
        let mut b = crate::TestRunner::new(&cfg, "same");
        for _ in 0..16 {
            let va = (-1.0..1.0f64).generate(a.rng());
            let vb = (-1.0..1.0f64).generate(b.rng());
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    proptest! {
        /// The macro itself: tuple + map + shuffle strategies compose.
        #[test]
        fn macro_smoke(
            pair in (0..5u32, -1.0..1.0f64).prop_map(|(a, b)| (a, b)),
            perm in Just((0..8usize).collect::<Vec<_>>()).prop_shuffle(),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
            let _ = flag;
        }
    }
}
