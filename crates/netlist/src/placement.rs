//! Placement solutions and their quality/legality metrics.

use crate::{AlignKind, Axis, Circuit, DeviceId, OrderDirection};

/// A placement solution: one center coordinate and flip state per device.
///
/// Positions refer to device **centers** in µm, matching the paper's
/// formulation. Flips mirror the device footprint about its own center and
/// therefore only move pins, not the outline.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Center coordinates, indexed by [`DeviceId`].
    pub positions: Vec<(f64, f64)>,
    /// `(flip_x, flip_y)` per device.
    pub flips: Vec<(bool, bool)>,
}

impl Placement {
    /// Creates a placement with all devices at the origin, unflipped.
    pub fn new(num_devices: usize) -> Self {
        Self {
            positions: vec![(0.0, 0.0); num_devices],
            flips: vec![(false, false); num_devices],
        }
    }

    /// Creates a placement from explicit center coordinates, unflipped.
    pub fn from_positions(positions: Vec<(f64, f64)>) -> Self {
        let n = positions.len();
        Self {
            positions,
            flips: vec![(false, false); n],
        }
    }

    /// Number of placed devices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Center position of a device.
    pub fn position(&self, id: DeviceId) -> (f64, f64) {
        self.positions[id.index()]
    }

    /// Sets the center position of a device.
    pub fn set_position(&mut self, id: DeviceId, pos: (f64, f64)) {
        self.positions[id.index()] = pos;
    }

    /// Absolute pin position, honoring the device's flip state.
    pub fn pin_position(&self, circuit: &Circuit, device: DeviceId, pin: usize) -> (f64, f64) {
        let d = circuit.device(device);
        let (cx, cy) = self.positions[device.index()];
        let (fx, fy) = self.flips[device.index()];
        let (ox, oy) = d.pin_offset_flipped(pin, fx, fy);
        (cx - d.width / 2.0 + ox, cy - d.height / 2.0 + oy)
    }

    /// Exact half-perimeter wirelength over all routable nets, weighted.
    pub fn hpwl(&self, circuit: &Circuit) -> f64 {
        circuit
            .nets()
            .iter()
            .filter(|n| n.is_routable())
            .map(|n| self.net_hpwl(circuit, n))
            .sum()
    }

    /// Weighted half-perimeter wirelength of one net.
    ///
    /// [`hpwl`](Self::hpwl) is exactly the sum of this over the routable
    /// nets in net order, which is what lets incremental engines cache
    /// per-net values and re-sum them bit-identically after recomputing
    /// only the nets whose devices moved.
    pub fn net_hpwl(&self, circuit: &Circuit, net: &crate::Net) -> f64 {
        let mut xmin = f64::INFINITY;
        let mut xmax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for p in &net.pins {
            let (x, y) = self.pin_position(circuit, p.device, p.pin.index());
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        net.weight * ((xmax - xmin) + (ymax - ymin))
    }

    /// Bounding box `(xmin, ymin, xmax, ymax)` of all device outlines.
    ///
    /// Returns `None` for an empty placement.
    pub fn bounding_box(&self, circuit: &Circuit) -> Option<(f64, f64, f64, f64)> {
        if self.positions.is_empty() {
            return None;
        }
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for (id, d) in circuit.device_ids() {
            let (cx, cy) = self.positions[id.index()];
            bb.0 = bb.0.min(cx - d.width / 2.0);
            bb.1 = bb.1.min(cy - d.height / 2.0);
            bb.2 = bb.2.max(cx + d.width / 2.0);
            bb.3 = bb.3.max(cy + d.height / 2.0);
        }
        Some(bb)
    }

    /// Area of the bounding box of all device outlines, in µm².
    pub fn area(&self, circuit: &Circuit) -> f64 {
        match self.bounding_box(circuit) {
            Some((x0, y0, x1, y1)) => (x1 - x0) * (y1 - y0),
            None => 0.0,
        }
    }

    /// Total pairwise overlap area between device outlines, in µm².
    pub fn overlap_area(&self, circuit: &Circuit) -> f64 {
        let mut total = 0.0;
        let devs = circuit.devices();
        for i in 0..devs.len() {
            let (xi, yi) = self.positions[i];
            for j in (i + 1)..devs.len() {
                let (xj, yj) = self.positions[j];
                let dx = ((devs[i].width + devs[j].width) / 2.0 - (xi - xj).abs()).max(0.0);
                let dy = ((devs[i].height + devs[j].height) / 2.0 - (yi - yj).abs()).max(0.0);
                total += dx * dy;
            }
        }
        total
    }

    /// Returns all pairs of devices whose outlines overlap by more than `tol`
    /// in both dimensions.
    pub fn overlapping_pairs(&self, circuit: &Circuit, tol: f64) -> Vec<(DeviceId, DeviceId)> {
        let mut out = Vec::new();
        let devs = circuit.devices();
        for i in 0..devs.len() {
            let (xi, yi) = self.positions[i];
            for j in (i + 1)..devs.len() {
                let (xj, yj) = self.positions[j];
                let dx = (devs[i].width + devs[j].width) / 2.0 - (xi - xj).abs();
                let dy = (devs[i].height + devs[j].height) / 2.0 - (yi - yj).abs();
                if dx > tol && dy > tol {
                    out.push((DeviceId::new(i), DeviceId::new(j)));
                }
            }
        }
        out
    }

    /// Maximum violation of the circuit's symmetry constraints, in µm.
    ///
    /// For each vertical-axis group, the axis position is taken as the value
    /// minimizing the group's violation (mean of pair midpoints and
    /// self-symmetric centers); the violation is the worst residual of
    /// `y_a = y_b`, `x_a + x_b = 2x̂`, `x_r = x̂` (and symmetrically for
    /// horizontal axes).
    pub fn symmetry_violation(&self, circuit: &Circuit) -> f64 {
        let mut worst: f64 = 0.0;
        for g in &circuit.constraints().symmetry_groups {
            if g.is_empty() {
                continue;
            }
            let axis_coord = |d: DeviceId| match g.axis {
                Axis::Vertical => self.positions[d.index()].0,
                Axis::Horizontal => self.positions[d.index()].1,
            };
            let off_coord = |d: DeviceId| match g.axis {
                Axis::Vertical => self.positions[d.index()].1,
                Axis::Horizontal => self.positions[d.index()].0,
            };
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for &(a, b) in &g.pairs {
                sum += (axis_coord(a) + axis_coord(b)) / 2.0;
                cnt += 1.0;
            }
            for &s in &g.self_symmetric {
                sum += axis_coord(s);
                cnt += 1.0;
            }
            let axis = sum / cnt;
            for &(a, b) in &g.pairs {
                worst = worst.max((off_coord(a) - off_coord(b)).abs());
                worst = worst.max(((axis_coord(a) + axis_coord(b)) / 2.0 - axis).abs());
            }
            for &s in &g.self_symmetric {
                worst = worst.max((axis_coord(s) - axis).abs());
            }
        }
        worst
    }

    /// Maximum violation of alignment constraints, in µm.
    pub fn alignment_violation(&self, circuit: &Circuit) -> f64 {
        let mut worst: f64 = 0.0;
        for a in &circuit.constraints().alignments {
            let da = circuit.device(a.a);
            let db = circuit.device(a.b);
            let (xa, ya) = self.positions[a.a.index()];
            let (xb, yb) = self.positions[a.b.index()];
            let v = match a.kind {
                AlignKind::Bottom => ((ya - da.height / 2.0) - (yb - db.height / 2.0)).abs(),
                AlignKind::VerticalCenter => (xa - xb).abs(),
            };
            worst = worst.max(v);
        }
        worst
    }

    /// Maximum violation of ordering constraints, in µm (0 when all chains
    /// are monotone with outline separation).
    pub fn ordering_violation(&self, circuit: &Circuit) -> f64 {
        let mut worst: f64 = 0.0;
        for o in &circuit.constraints().orderings {
            for w in o.devices.windows(2) {
                let (a, b) = (w[0], w[1]);
                let da = circuit.device(a);
                let db = circuit.device(b);
                let (xa, ya) = self.positions[a.index()];
                let (xb, yb) = self.positions[b.index()];
                let gap = match o.direction {
                    OrderDirection::Horizontal => (xa + da.width / 2.0) - (xb - db.width / 2.0),
                    OrderDirection::Vertical => (ya + da.height / 2.0) - (yb - db.height / 2.0),
                };
                worst = worst.max(gap.max(0.0));
            }
        }
        worst
    }

    /// Whether the placement satisfies all constraints and is overlap-free
    /// within tolerance `tol` (µm).
    pub fn is_legal(&self, circuit: &Circuit, tol: f64) -> bool {
        self.overlapping_pairs(circuit, tol).is_empty()
            && self.symmetry_violation(circuit) <= tol
            && self.alignment_violation(circuit) <= tol
            && self.ordering_violation(circuit) <= tol
    }

    /// Translates all devices so the bounding box's lower-left corner is at
    /// the origin.
    pub fn normalize_origin(&mut self, circuit: &Circuit) {
        if let Some((x0, y0, _, _)) = self.bounding_box(circuit) {
            for p in &mut self.positions {
                p.0 -= x0;
                p.1 -= y0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, CircuitClass, DeviceKind};

    fn two_device_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("t", CircuitClass::Adder);
        let n1 = b.net("n1");
        b.mos("M1", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        b.mos("M2", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        b.build().unwrap()
    }

    #[test]
    fn hpwl_of_two_pin_net() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        p.set_position(DeviceId::new(0), (0.0, 0.0));
        p.set_position(DeviceId::new(1), (10.0, 5.0));
        // Same pin offsets on both devices, so HPWL = |dx| + |dy| = 15.
        assert!((p.hpwl(&c) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_area_detects_full_overlap() {
        let c = two_device_circuit();
        let p = Placement::new(2); // both at origin
        assert!((p.overlap_area(&c) - 4.0).abs() < 1e-9);
        assert_eq!(p.overlapping_pairs(&c, 1e-9).len(), 1);
    }

    #[test]
    fn overlap_area_zero_when_separated() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        p.set_position(DeviceId::new(1), (2.0, 0.0)); // abutting
        assert_eq!(p.overlap_area(&c), 0.0);
        assert!(p.overlapping_pairs(&c, 1e-9).is_empty());
    }

    #[test]
    fn bounding_box_and_area() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        p.set_position(DeviceId::new(1), (4.0, 0.0));
        let bb = p.bounding_box(&c).unwrap();
        assert_eq!(bb, (-1.0, -1.0, 5.0, 1.0));
        assert!((p.area(&c) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry_violation_zero_for_mirrored_pair() {
        let mut b = CircuitBuilder::new("t", CircuitClass::Ota);
        let n1 = b.net("n1");
        let a = b.mos("M1", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        let bd = b.mos("M2", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        b.symmetry_pair("g", a, bd);
        let c = b.build().unwrap();
        let mut p = Placement::new(2);
        p.set_position(a, (0.0, 1.0));
        p.set_position(bd, (6.0, 1.0));
        assert!(p.symmetry_violation(&c) < 1e-9);
        p.set_position(bd, (6.0, 2.0));
        assert!((p.symmetry_violation(&c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flip_moves_pin_not_outline() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        let before = p.pin_position(&c, DeviceId::new(0), 0);
        p.flips[0] = (true, false);
        let after = p.pin_position(&c, DeviceId::new(0), 0);
        assert!((before.0 + after.0).abs() < 1e-9); // mirrored about center x=0
        assert_eq!(before.1, after.1);
        assert_eq!(p.area(&c), Placement::new(2).area(&c));
    }

    #[test]
    fn normalize_origin_moves_bb_to_zero() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        p.set_position(DeviceId::new(0), (5.0, 7.0));
        p.set_position(DeviceId::new(1), (9.0, 7.0));
        p.normalize_origin(&c);
        let bb = p.bounding_box(&c).unwrap();
        assert!(bb.0.abs() < 1e-12 && bb.1.abs() < 1e-12);
    }

    #[test]
    fn ordering_violation_measures_gap() {
        let mut b = CircuitBuilder::new("t", CircuitClass::Adder);
        let n1 = b.net("n1");
        let a = b.mos("M1", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        let bd = b.mos("M2", DeviceKind::Nmos, 2.0, 2.0, &[("d", n1)]);
        b.order(OrderDirection::Horizontal, vec![a, bd]);
        let c = b.build().unwrap();
        let mut p = Placement::new(2);
        p.set_position(a, (0.0, 0.0));
        p.set_position(bd, (3.0, 0.0));
        assert_eq!(p.ordering_violation(&c), 0.0);
        p.set_position(bd, (1.0, 0.0)); // violates: right edge of a at 1, left edge of b at 0
        assert!((p.ordering_violation(&c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn is_legal_combines_all_checks() {
        let c = two_device_circuit();
        let mut p = Placement::new(2);
        p.set_position(DeviceId::new(1), (2.5, 0.0));
        assert!(p.is_legal(&c, 1e-6));
        p.set_position(DeviceId::new(1), (1.0, 0.0));
        assert!(!p.is_legal(&c, 1e-6));
    }
}
