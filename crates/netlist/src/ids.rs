//! Strongly-typed identifiers for circuit entities.
//!
//! Devices, nets and pins are stored in flat vectors inside a
//! [`Circuit`](crate::Circuit); these newtypes make it impossible to index the
//! wrong table by accident (C-NEWTYPE).

use std::fmt;

/// Identifier of a device (index into [`Circuit::devices`](crate::Circuit::devices)).
///
/// # Examples
///
/// ```
/// use analog_netlist::DeviceId;
/// let id = DeviceId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(usize);

/// Identifier of a net (index into [`Circuit::nets`](crate::Circuit::nets)).
///
/// # Examples
///
/// ```
/// use analog_netlist::NetId;
/// assert_eq!(NetId::new(0).index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(usize);

/// Identifier of a pin within a device (index into
/// [`Device::pins`](crate::Device::pins)).
///
/// # Examples
///
/// ```
/// use analog_netlist::PinIndex;
/// assert_eq!(PinIndex::new(1).index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinIndex(usize);

macro_rules! impl_id {
    ($ty:ident, $label:literal) => {
        impl $ty {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            fn from(id: $ty) -> usize {
                id.0
            }
        }
    };
}

impl_id!(DeviceId, "d");
impl_id!(NetId, "n");
impl_id!(PinIndex, "p");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw_index() {
        assert_eq!(DeviceId::new(7).index(), 7);
        assert_eq!(NetId::new(7).index(), 7);
        assert_eq!(PinIndex::new(7).index(), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(DeviceId::new(2).to_string(), "d2");
        assert_eq!(NetId::new(3).to_string(), "n3");
        assert_eq!(PinIndex::new(4).to_string(), "p4");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
        assert!(NetId::new(0) < NetId::new(10));
    }

    #[test]
    fn ids_convert_to_usize() {
        let raw: usize = DeviceId::new(9).into();
        assert_eq!(raw, 9);
    }
}
