//! Net model: a named set of device pins, with weighting and criticality.

use crate::{DeviceId, PinIndex};

/// A reference to one pin of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The device that owns the pin.
    pub device: DeviceId,
    /// The pin's index within the device.
    pub pin: PinIndex,
}

impl PinRef {
    /// Creates a pin reference.
    pub fn new(device: DeviceId, pin: PinIndex) -> Self {
        Self { device, pin }
    }
}

/// A net: an electrically connected set of pins.
///
/// `weight` scales the net's contribution to wirelength objectives;
/// `critical` flags nets whose parasitics dominate circuit performance (used
/// by the performance surrogate and reported by performance-driven placers).
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name, unique within a circuit.
    pub name: String,
    /// The pins on this net.
    pub pins: Vec<PinRef>,
    /// Wirelength weight (default 1.0).
    pub weight: f64,
    /// Whether the net is performance-critical.
    pub critical: bool,
}

impl Net {
    /// Creates an empty net with weight 1 and non-critical.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pins: Vec::new(),
            weight: 1.0,
            critical: false,
        }
    }

    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Whether the net connects at least two pins (and thus contributes
    /// wirelength).
    pub fn is_routable(&self) -> bool {
        self.pins.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceId, PinIndex};

    #[test]
    fn net_degree_and_routability() {
        let mut net = Net::new("vout");
        assert_eq!(net.degree(), 0);
        assert!(!net.is_routable());
        net.pins
            .push(PinRef::new(DeviceId::new(0), PinIndex::new(0)));
        assert!(!net.is_routable());
        net.pins
            .push(PinRef::new(DeviceId::new(1), PinIndex::new(2)));
        assert!(net.is_routable());
        assert_eq!(net.degree(), 2);
    }

    #[test]
    fn net_defaults() {
        let net = Net::new("n1");
        assert_eq!(net.weight, 1.0);
        assert!(!net.critical);
    }
}
