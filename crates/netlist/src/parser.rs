//! SPICE-like netlist parser/writer and constraint-file parser/writer.
//!
//! # Netlist format
//!
//! A flat, case-insensitive SPICE dialect:
//!
//! ```text
//! * comment
//! .title cc_ota
//! .class ota
//! M1 vout vin vss vss nmos W=2.0 L=0.012
//! C1 vout vss 100f
//! R1 vb vdd 10k
//! L1 vout vdd 1n
//! D1 a b
//! .end
//! ```
//!
//! The `.end` card is mandatory; a deck without one is reported as
//! truncated. Device footprints are derived from the electrical card
//! (MOS W/L, C/R/L value) with 12 nm-class heuristics, so parsed circuits
//! are immediately placeable.
//!
//! # Constraint format
//!
//! ```text
//! # comment
//! symgroup g1 vertical
//! sympair g1 M1 M2
//! symself g1 M5
//! align bottom M1 M2
//! align vcenter M3 M4
//! order horizontal M1 M2 M3
//! critical vout
//! weight vout 2.0
//! ```

use std::fmt::Write as _;

use crate::{
    AlignKind, Axis, Circuit, CircuitBuilder, CircuitClass, Device, DeviceKind, ElectricalParams,
    OrderDirection, ParseError, ParseErrorKind, Pin,
};

/// Parses an engineering-notation value such as `100f`, `10k`, `1.5meg`.
///
/// # Errors
///
/// Returns `None` when the token is not a number with an optional SI suffix.
pub fn parse_si_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = t.strip_suffix("meg") {
        (stripped, 1e6)
    } else {
        match t.chars().last()? {
            'f' => (&t[..t.len() - 1], 1e-15),
            'p' => (&t[..t.len() - 1], 1e-12),
            'n' => (&t[..t.len() - 1], 1e-9),
            'u' => (&t[..t.len() - 1], 1e-6),
            'm' => (&t[..t.len() - 1], 1e-3),
            'k' => (&t[..t.len() - 1], 1e3),
            'g' => (&t[..t.len() - 1], 1e9),
            't' => (&t[..t.len() - 1], 1e12),
            _ => (t.as_str(), 1.0),
        }
    };
    num.parse::<f64>().ok().map(|v| v * mult)
}

/// Formats a value with an SI suffix (inverse of [`parse_si_value`]).
pub fn format_si_value(value: f64) -> String {
    let abs = value.abs();
    let (scale, suffix) = if abs == 0.0 {
        (1.0, "")
    } else if abs >= 1e12 {
        (1e12, "t")
    } else if abs >= 1e6 {
        (1e6, "meg")
    } else if abs >= 1e3 {
        (1e3, "k")
    } else if abs >= 1.0 {
        (1.0, "")
    } else if abs >= 1e-3 {
        (1e-3, "m")
    } else if abs >= 1e-6 {
        (1e-6, "u")
    } else if abs >= 1e-9 {
        (1e-9, "n")
    } else if abs >= 1e-12 {
        (1e-12, "p")
    } else {
        (1e-15, "f")
    };
    format!("{}{}", value / scale, suffix)
}

fn kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

/// Footprint heuristic for a MOS device with the given gate W/L in µm:
/// wide transistors are folded into multiple fingers, giving a squarish cell.
pub(crate) fn mos_footprint(w_um: f64, _l_um: f64) -> (f64, f64) {
    let fingers = (w_um / 2.0).ceil().max(1.0);
    let finger_w = w_um / fingers;
    let width = 0.4 + 0.25 * fingers;
    let height = 0.5 + finger_w * 0.8;
    (width.max(0.3), height.max(0.3))
}

/// Footprint heuristic for a capacitor: MOM cap at ~2 fF/µm².
pub(crate) fn cap_footprint(farads: f64) -> (f64, f64) {
    let area = (farads / 2.0e-15).max(0.25);
    let side = area.sqrt();
    (side, side)
}

/// Footprint heuristic for a resistor: poly at ~1 kΩ per square, 0.4 µm wide.
pub(crate) fn res_footprint(ohms: f64) -> (f64, f64) {
    let squares = (ohms / 1000.0).max(0.5);
    (
        0.4 + 0.1 * squares.min(20.0),
        (0.4 * squares).clamp(0.4, 8.0),
    )
}

/// Footprint heuristic for an inductor: spiral, area grows with value.
pub(crate) fn ind_footprint(henries: f64) -> (f64, f64) {
    let side = (henries / 1.0e-9).sqrt().clamp(2.0, 30.0);
    (side, side)
}

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError::new(line, kind)
}

fn missing(line: usize, card: &'static str, expected: &'static str) -> ParseError {
    err(line, ParseErrorKind::MissingFields { card, expected })
}

/// Parses a flat SPICE-like netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseError`] on unknown cards, malformed values, truncated
/// decks (no `.end`), or when the resulting circuit fails validation; the
/// error's [`ParseErrorKind`] names the offending token.
pub fn parse_spice(text: &str) -> Result<Circuit, ParseError> {
    let mut title = String::from("untitled");
    let mut class = CircuitClass::Ota;
    // Collect devices first; builder created after we know title/class.
    struct RawDev {
        name: String,
        kind: DeviceKind,
        nets: Vec<String>,
        pin_names: Vec<&'static str>,
        footprint: (f64, f64),
        electrical: ElectricalParams,
    }
    let mut raws: Vec<RawDev> = Vec::new();
    let mut saw_end = false;
    let mut last_line = 0;

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let lineno = lineno + 1;
        last_line = lineno;
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else { continue };
        let rest: Vec<&str> = tokens.collect();
        let lower = head.to_ascii_lowercase();
        if lower == ".end" {
            saw_end = true;
            break;
        }
        if lower == ".title" {
            title = rest.join(" ");
            continue;
        }
        if lower == ".class" {
            let c = rest
                .first()
                .ok_or_else(|| missing(lineno, ".class", "a class name"))?;
            class = match c.to_ascii_lowercase().as_str() {
                "ota" => CircuitClass::Ota,
                "comparator" => CircuitClass::Comparator,
                "vco" => CircuitClass::Vco,
                "adder" => CircuitClass::Adder,
                "vga" => CircuitClass::Vga,
                "scf" => CircuitClass::Scf,
                other => {
                    return Err(err(
                        lineno,
                        ParseErrorKind::UnknownKeyword {
                            what: "circuit class",
                            token: other.to_string(),
                        },
                    ))
                }
            };
            continue;
        }
        if lower.starts_with('.') {
            continue; // ignore other dot-cards
        }
        let Some(first) = lower.chars().next() else {
            continue;
        };
        match first {
            'm' => {
                if rest.len() < 5 {
                    return Err(missing(lineno, "MOS", "4 nets and a model"));
                }
                let model = rest[4].to_ascii_lowercase();
                let kind = match model.as_str() {
                    "nmos" => DeviceKind::Nmos,
                    "pmos" => DeviceKind::Pmos,
                    other => {
                        return Err(err(
                            lineno,
                            ParseErrorKind::UnknownKeyword {
                                what: "MOS model",
                                token: other.to_string(),
                            },
                        ))
                    }
                };
                let mut w = 1.0;
                let mut l = 0.012;
                for t in &rest[5..] {
                    match kv(t) {
                        Some((k, v)) if k.eq_ignore_ascii_case("w") => {
                            w = parse_si_value(v).ok_or_else(|| {
                                err(
                                    lineno,
                                    ParseErrorKind::BadNumber {
                                        what: "width",
                                        token: v.to_string(),
                                    },
                                )
                            })?;
                        }
                        Some((k, v)) if k.eq_ignore_ascii_case("l") => {
                            l = parse_si_value(v).ok_or_else(|| {
                                err(
                                    lineno,
                                    ParseErrorKind::BadNumber {
                                        what: "length",
                                        token: v.to_string(),
                                    },
                                )
                            })?;
                        }
                        _ => {
                            return Err(err(
                                lineno,
                                ParseErrorKind::UnexpectedToken {
                                    card: "MOS",
                                    token: t.to_string(),
                                },
                            ))
                        }
                    }
                }
                raws.push(RawDev {
                    name: head.to_string(),
                    kind,
                    nets: rest[..4].iter().map(|s| s.to_string()).collect(),
                    pin_names: vec!["d", "g", "s", "b"],
                    footprint: mos_footprint(w, l),
                    electrical: ElectricalParams::mos(w, l),
                });
            }
            'c' | 'r' | 'l' => {
                if rest.len() < 3 {
                    return Err(missing(lineno, "passive", "2 nets and a value"));
                }
                let value = parse_si_value(rest[2]).ok_or_else(|| {
                    err(
                        lineno,
                        ParseErrorKind::BadNumber {
                            what: "value",
                            token: rest[2].to_string(),
                        },
                    )
                })?;
                let (kind, footprint, electrical) = match first {
                    'c' => (
                        DeviceKind::Capacitor,
                        cap_footprint(value),
                        ElectricalParams::capacitor(value),
                    ),
                    'r' => (
                        DeviceKind::Resistor,
                        res_footprint(value),
                        ElectricalParams::resistor(value),
                    ),
                    _ => (
                        DeviceKind::Inductor,
                        ind_footprint(value),
                        ElectricalParams::inductor(value),
                    ),
                };
                raws.push(RawDev {
                    name: head.to_string(),
                    kind,
                    nets: rest[..2].iter().map(|s| s.to_string()).collect(),
                    pin_names: vec!["plus", "minus"],
                    footprint,
                    electrical,
                });
            }
            'd' => {
                if rest.len() < 2 {
                    return Err(missing(lineno, "diode", "2 nets"));
                }
                raws.push(RawDev {
                    name: head.to_string(),
                    kind: DeviceKind::Diode,
                    nets: rest[..2].iter().map(|s| s.to_string()).collect(),
                    pin_names: vec!["plus", "minus"],
                    footprint: (0.5, 0.5),
                    electrical: ElectricalParams::default(),
                });
            }
            other => {
                return Err(err(lineno, ParseErrorKind::UnknownCard(other)));
            }
        }
    }
    if !saw_end {
        return Err(err(last_line + 1, ParseErrorKind::TruncatedDeck));
    }

    let mut b = CircuitBuilder::new(title, class);
    for raw in raws {
        let (w, h) = raw.footprint;
        let mut device = Device::new(raw.name, raw.kind, w, h).with_electrical(raw.electrical);
        let n = raw.nets.len() as f64;
        for (i, (net_name, pin_name)) in raw.nets.iter().zip(raw.pin_names.iter()).enumerate() {
            let net = b.net(net_name.clone());
            let frac = (i as f64 + 0.5) / n;
            device
                .pins
                .push(Pin::new(*pin_name, net, (w * frac, h * 0.9)));
        }
        b.device(device);
    }
    b.build().map_err(ParseError::from)
}

/// Writes a circuit back to the SPICE dialect accepted by [`parse_spice`].
///
/// Footprints are re-derived from the electrical card on re-parse, so the
/// round trip preserves topology and electrical values, not exact geometry.
pub fn write_spice(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".title {}", circuit.name());
    let _ = writeln!(out, ".class {}", circuit.class());
    for d in circuit.devices() {
        let nets: Vec<&str> = d
            .pins
            .iter()
            .map(|p| circuit.net(p.net).name.as_str())
            .collect();
        match d.kind {
            DeviceKind::Nmos | DeviceKind::Pmos => {
                // Reconstruct W from gm model: gm = 2·(10µ·W/L)/0.15 at L=0.012.
                let wl = d.electrical.bias_current / 10e-6;
                let w = wl * 0.012;
                let _ = writeln!(
                    out,
                    "{} {} {} W={:.4} L=0.012",
                    d.name,
                    nets.join(" "),
                    d.kind,
                    w
                );
            }
            DeviceKind::Capacitor => {
                let _ = writeln!(
                    out,
                    "{} {} {}",
                    d.name,
                    nets.join(" "),
                    format_si_value(d.electrical.cin)
                );
            }
            DeviceKind::Resistor => {
                let _ = writeln!(
                    out,
                    "{} {} {}",
                    d.name,
                    nets.join(" "),
                    format_si_value(d.electrical.ro)
                );
            }
            DeviceKind::Inductor => {
                let henries = d.electrical.ro / (2.0 * std::f64::consts::PI * 1.0e9);
                let _ = writeln!(
                    out,
                    "{} {} {}",
                    d.name,
                    nets.join(" "),
                    format_si_value(henries)
                );
            }
            DeviceKind::Diode => {
                let _ = writeln!(out, "{} {}", d.name, nets.join(" "));
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Parses a constraint file and applies it to the circuit in place.
///
/// # Errors
///
/// Returns [`ParseError`] on unknown directives or references to missing
/// devices, nets, or symmetry groups; failures leave the circuit untouched.
pub fn parse_constraints(circuit: &mut Circuit, text: &str) -> Result<(), ParseError> {
    use std::collections::HashMap;
    let mut groups: HashMap<String, usize> = HashMap::new();
    // Work on a cloned constraint set so failures leave the circuit untouched.
    let mut cons = circuit.constraints().clone();
    let mut net_updates: Vec<(crate::NetId, bool, Option<f64>)> = Vec::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let dev = |name: &str| {
            circuit
                .find_device(name)
                .ok_or_else(|| err(lineno, ParseErrorKind::UnknownDevice(name.to_string())))
        };
        let net = |name: &str| {
            circuit
                .find_net(name)
                .ok_or_else(|| err(lineno, ParseErrorKind::UnknownNet(name.to_string())))
        };
        let Some(&directive) = tokens.first() else {
            continue;
        };
        match directive {
            "symgroup" => {
                if tokens.len() != 3 {
                    return Err(missing(lineno, "symgroup", "a name and an axis"));
                }
                let axis = match tokens[2] {
                    "vertical" => Axis::Vertical,
                    "horizontal" => Axis::Horizontal,
                    other => {
                        return Err(err(
                            lineno,
                            ParseErrorKind::UnknownKeyword {
                                what: "axis",
                                token: other.to_string(),
                            },
                        ))
                    }
                };
                cons.symmetry_groups
                    .push(crate::SymmetryGroup::new(tokens[1], axis));
                groups.insert(tokens[1].to_string(), cons.symmetry_groups.len() - 1);
            }
            "sympair" => {
                if tokens.len() != 4 {
                    return Err(missing(lineno, "sympair", "a group and two devices"));
                }
                let gi = *groups.get(tokens[1]).ok_or_else(|| {
                    err(
                        lineno,
                        ParseErrorKind::UnknownSymmetryGroup(tokens[1].to_string()),
                    )
                })?;
                let a = dev(tokens[2])?;
                let b = dev(tokens[3])?;
                cons.symmetry_groups[gi].pairs.push((a, b));
            }
            "symself" => {
                if tokens.len() != 3 {
                    return Err(missing(lineno, "symself", "a group and one device"));
                }
                let gi = *groups.get(tokens[1]).ok_or_else(|| {
                    err(
                        lineno,
                        ParseErrorKind::UnknownSymmetryGroup(tokens[1].to_string()),
                    )
                })?;
                let a = dev(tokens[2])?;
                cons.symmetry_groups[gi].self_symmetric.push(a);
            }
            "align" => {
                if tokens.len() != 4 {
                    return Err(missing(lineno, "align", "a kind and two devices"));
                }
                let kind = match tokens[1] {
                    "bottom" => AlignKind::Bottom,
                    "vcenter" => AlignKind::VerticalCenter,
                    other => {
                        return Err(err(
                            lineno,
                            ParseErrorKind::UnknownKeyword {
                                what: "alignment",
                                token: other.to_string(),
                            },
                        ))
                    }
                };
                cons.alignments.push(crate::Alignment {
                    kind,
                    a: dev(tokens[2])?,
                    b: dev(tokens[3])?,
                });
            }
            "order" => {
                if tokens.len() < 4 {
                    return Err(missing(
                        lineno,
                        "order",
                        "a direction and at least two devices",
                    ));
                }
                let direction = match tokens[1] {
                    "horizontal" | "h" => OrderDirection::Horizontal,
                    "vertical" | "v" => OrderDirection::Vertical,
                    other => {
                        return Err(err(
                            lineno,
                            ParseErrorKind::UnknownKeyword {
                                what: "direction",
                                token: other.to_string(),
                            },
                        ))
                    }
                };
                let devices = tokens[2..]
                    .iter()
                    .map(|t| dev(t))
                    .collect::<Result<Vec<_>, _>>()?;
                cons.orderings.push(crate::Ordering { direction, devices });
            }
            "critical" => {
                if tokens.len() != 2 {
                    return Err(missing(lineno, "critical", "a net name"));
                }
                let id = net(tokens[1])?;
                net_updates.push((id, true, None));
            }
            "weight" => {
                if tokens.len() != 3 {
                    return Err(missing(lineno, "weight", "a net and a value"));
                }
                let id = net(tokens[1])?;
                let w = tokens[2].parse::<f64>().map_err(|_| {
                    err(
                        lineno,
                        ParseErrorKind::BadNumber {
                            what: "weight",
                            token: tokens[2].to_string(),
                        },
                    )
                })?;
                net_updates.push((id, false, Some(w)));
            }
            other => {
                return Err(err(
                    lineno,
                    ParseErrorKind::UnknownDirective(other.to_string()),
                ));
            }
        }
    }

    // All lines parsed: rebuild through a builder so constraint invariants
    // (overlapping groups etc.) are re-validated before committing.
    {
        let mut b = CircuitBuilder::new(circuit.name().to_string(), circuit.class());
        for net in circuit.nets() {
            b.net(net.name.clone());
        }
        for d in circuit.devices() {
            b.device(d.clone());
        }
        for g in &cons.symmetry_groups {
            for &(x, y) in &g.pairs {
                b.symmetry_pair(&g.name, x, y);
            }
            for &s in &g.self_symmetric {
                b.symmetry_self(&g.name, s);
            }
        }
        for a in &cons.alignments {
            b.align(a.kind, a.a, a.b);
        }
        for o in &cons.orderings {
            b.order(o.direction, o.devices.clone());
        }
        let mut rebuilt = b.build().map_err(ParseError::from)?;
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = crate::NetId::new(i);
            rebuilt.set_net_critical(id, net.critical);
            rebuilt.set_net_weight(id, net.weight);
        }
        *circuit = rebuilt;
    }
    for (id, crit, weight) in net_updates {
        if crit {
            circuit.set_net_critical(id, true);
        }
        if let Some(w) = weight {
            circuit.set_net_weight(id, w);
        }
    }
    Ok(())
}

/// Writes the circuit's constraints in the format accepted by
/// [`parse_constraints`].
pub fn write_constraints(circuit: &Circuit) -> String {
    let mut out = String::new();
    for g in &circuit.constraints().symmetry_groups {
        let axis = match g.axis {
            Axis::Vertical => "vertical",
            Axis::Horizontal => "horizontal",
        };
        let _ = writeln!(out, "symgroup {} {}", g.name, axis);
        for &(a, b) in &g.pairs {
            let _ = writeln!(
                out,
                "sympair {} {} {}",
                g.name,
                circuit.device(a).name,
                circuit.device(b).name
            );
        }
        for &s in &g.self_symmetric {
            let _ = writeln!(out, "symself {} {}", g.name, circuit.device(s).name);
        }
    }
    for a in &circuit.constraints().alignments {
        let kind = match a.kind {
            AlignKind::Bottom => "bottom",
            AlignKind::VerticalCenter => "vcenter",
        };
        let _ = writeln!(
            out,
            "align {} {} {}",
            kind,
            circuit.device(a.a).name,
            circuit.device(a.b).name
        );
    }
    for o in &circuit.constraints().orderings {
        let dir = match o.direction {
            OrderDirection::Horizontal => "horizontal",
            OrderDirection::Vertical => "vertical",
        };
        let names: Vec<&str> = o
            .devices
            .iter()
            .map(|&d| circuit.device(d).name.as_str())
            .collect();
        let _ = writeln!(out, "order {} {}", dir, names.join(" "));
    }
    // Per-net attributes are order-free booleans/scalars; emit them sorted
    // by net name so the text is canonical regardless of the net discovery
    // order (a deck written, reparsed and rewritten is byte-identical —
    // the artifact cache's content hash relies on this).
    let mut attrs: Vec<&crate::Net> = circuit
        .nets()
        .iter()
        .filter(|n| n.critical || n.weight != 1.0)
        .collect();
    attrs.sort_by(|a, b| a.name.cmp(&b.name));
    for n in &attrs {
        if n.critical {
            let _ = writeln!(out, "critical {}", n.name);
        }
    }
    for n in &attrs {
        if n.weight != 1.0 {
            let _ = writeln!(out, "weight {} {}", n.name, n.weight);
        }
    }
    out
}

/// Writes a placement as `device x y flip_x flip_y` lines (µm), a simple
/// interchange format for downstream tools and tests.
///
/// # Panics
///
/// Panics if the placement size mismatches the circuit.
pub fn write_placement(circuit: &Circuit, placement: &crate::Placement) -> String {
    assert_eq!(
        placement.len(),
        circuit.num_devices(),
        "placement size mismatch"
    );
    let mut out = String::new();
    for (id, d) in circuit.device_ids() {
        let (x, y) = placement.position(id);
        let (fx, fy) = placement.flips[id.index()];
        let _ = writeln!(
            out,
            "{} {:.6} {:.6} {} {}",
            d.name,
            x,
            y,
            u8::from(fx),
            u8::from(fy)
        );
    }
    out
}

/// Parses a placement written by [`write_placement`].
///
/// # Errors
///
/// Returns [`ParseError`] on unknown devices, malformed numbers, or devices
/// missing from the file.
pub fn parse_placement(circuit: &Circuit, text: &str) -> Result<crate::Placement, ParseError> {
    let mut placement = crate::Placement::new(circuit.num_devices());
    let mut seen = vec![false; circuit.num_devices()];
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() != 5 {
            return Err(err(
                lineno,
                ParseErrorKind::WrongFieldCount {
                    expected: 5,
                    got: tokens.len(),
                },
            ));
        }
        let id = circuit
            .find_device(tokens[0])
            .ok_or_else(|| err(lineno, ParseErrorKind::UnknownDevice(tokens[0].to_string())))?;
        let x: f64 = tokens[1].parse().map_err(|_| {
            err(
                lineno,
                ParseErrorKind::BadNumber {
                    what: "x coordinate",
                    token: tokens[1].to_string(),
                },
            )
        })?;
        let y: f64 = tokens[2].parse().map_err(|_| {
            err(
                lineno,
                ParseErrorKind::BadNumber {
                    what: "y coordinate",
                    token: tokens[2].to_string(),
                },
            )
        })?;
        let fx = tokens[3] == "1";
        let fy = tokens[4] == "1";
        placement.set_position(id, (x, y));
        placement.flips[id.index()] = (fx, fy);
        seen[id.index()] = true;
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(err(
            0,
            ParseErrorKind::MissingPlacementDevice(circuit.devices()[missing].name.clone()),
        ));
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NETLIST: &str = "\
* tiny diff pair
.title diffpair
.class ota
M1 outp inn tail vss nmos W=4 L=0.012
M2 outn inp tail vss nmos W=4 L=0.012
M3 tail vb vss vss nmos W=8 L=0.024
C1 outp outn 50f
R1 outp vdd 10k
.end
";

    #[test]
    fn parses_si_values() {
        assert_eq!(parse_si_value("10k"), Some(10_000.0));
        assert_eq!(parse_si_value("100f"), Some(100.0e-15));
        assert_eq!(parse_si_value("1.5meg"), Some(1.5e6));
        assert_eq!(parse_si_value("2"), Some(2.0));
        assert_eq!(parse_si_value("abc"), None);
    }

    #[test]
    fn si_value_roundtrip() {
        for v in [3.0e-15, 47e-12, 1.0e-9, 2.2e-6, 0.15, 9.0, 10e3, 4.7e6] {
            let s = format_si_value(v);
            let back = parse_si_value(&s).unwrap();
            assert!((back - v).abs() / v < 1e-9, "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn parses_netlist() {
        let c = parse_spice(NETLIST).unwrap();
        assert_eq!(c.name(), "diffpair");
        assert_eq!(c.class(), CircuitClass::Ota);
        assert_eq!(c.num_devices(), 5);
        assert_eq!(c.find_net("tail").map(|n| c.net(n).degree()), Some(3));
        let m1 = c.device(c.find_device("M1").unwrap());
        assert_eq!(m1.kind, DeviceKind::Nmos);
        assert_eq!(m1.pins.len(), 4);
        assert!(m1.electrical.gm > 0.0);
    }

    #[test]
    fn netlist_roundtrip_preserves_topology() {
        let c = parse_spice(NETLIST).unwrap();
        let text = write_spice(&c);
        let c2 = parse_spice(&text).unwrap();
        assert_eq!(c.num_devices(), c2.num_devices());
        assert_eq!(c.num_nets(), c2.num_nets());
        for (d, d2) in c.devices().iter().zip(c2.devices()) {
            assert_eq!(d.name, d2.name);
            assert_eq!(d.kind, d2.kind);
            assert_eq!(d.pins.len(), d2.pins.len());
        }
    }

    #[test]
    fn rejects_unknown_cards() {
        let e = parse_spice("X1 a b c sub\n.end\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::UnknownCard('x'));
        let e = parse_spice("Q9 a b c\n.end\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownCard('q'));
    }

    #[test]
    fn rejects_short_device_cards() {
        // Cards cut off mid-way, as in a truncated upload.
        let e = parse_spice("M1 a b c\n.end\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(
            e.kind,
            ParseErrorKind::MissingFields { card: "MOS", .. }
        ));
        let e = parse_spice("C1 a\n.end\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::MissingFields {
                card: "passive",
                ..
            }
        ));
        let e = parse_spice("D1 a\n.end\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::MissingFields { card: "diode", .. }
        ));
    }

    #[test]
    fn rejects_truncated_decks() {
        // A deck that simply stops without `.end` is reported as truncated,
        // with the line number pointing just past the last line read.
        let e = parse_spice(".title t\nM1 a b c d nmos\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TruncatedDeck);
        assert_eq!(e.line, 3);
        assert_eq!(
            parse_spice("").unwrap_err().kind,
            ParseErrorKind::TruncatedDeck
        );
    }

    #[test]
    fn rejects_unknown_models_and_bad_numbers() {
        let e = parse_spice("M1 a b c d bjt\n.end\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::UnknownKeyword {
                what: "MOS model",
                ..
            }
        ));
        let e = parse_spice("M1 a b c d nmos W=oops\n.end\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::BadNumber { what: "width", .. }
        ));
        let e = parse_spice("R1 a b banana\n.end\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::BadNumber { what: "value", .. }
        ));
    }

    #[test]
    fn parses_constraints() {
        let mut c = parse_spice(NETLIST).unwrap();
        let text = "\
# diff pair symmetry
symgroup g1 vertical
sympair g1 M1 M2
symself g1 M3
align bottom M1 M2
order horizontal M1 M3 M2
critical outp
weight outn 2.0
";
        parse_constraints(&mut c, text).unwrap();
        assert_eq!(c.constraints().symmetry_groups.len(), 1);
        assert_eq!(c.constraints().symmetry_groups[0].pairs.len(), 1);
        assert_eq!(c.constraints().alignments.len(), 1);
        assert_eq!(c.constraints().orderings.len(), 1);
        assert!(c.net(c.find_net("outp").unwrap()).critical);
        assert_eq!(c.net(c.find_net("outn").unwrap()).weight, 2.0);
    }

    #[test]
    fn constraint_roundtrip() {
        let mut c = parse_spice(NETLIST).unwrap();
        let text = "symgroup g1 vertical\nsympair g1 M1 M2\nalign vcenter M1 M3\ncritical outp\n";
        parse_constraints(&mut c, text).unwrap();
        let written = write_constraints(&c);
        let mut c2 = parse_spice(NETLIST).unwrap();
        parse_constraints(&mut c2, &written).unwrap();
        assert_eq!(c.constraints(), c2.constraints());
    }

    #[test]
    fn dangling_symmetry_refs_are_structured_errors() {
        let mut c = parse_spice(NETLIST).unwrap();
        // Group never declared.
        let e = parse_constraints(&mut c, "sympair nope M1 M2").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::UnknownSymmetryGroup("nope".into()));
        // Group exists but a paired device does not.
        let e = parse_constraints(&mut c, "symgroup g1 vertical\nsympair g1 M1 M99").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, ParseErrorKind::UnknownDevice("M99".into()));
        // Failed parses leave the circuit untouched.
        assert!(c.constraints().symmetry_groups.is_empty());
    }

    #[test]
    fn short_directives_error_instead_of_panicking() {
        // These directives used to index `tokens[1]` before checking arity.
        let mut c = parse_spice(NETLIST).unwrap();
        for (text, card) in [
            ("sympair", "sympair"),
            ("symself", "symself"),
            ("critical", "critical"),
            ("weight outp", "weight"),
            ("symgroup g1", "symgroup"),
        ] {
            let e = parse_constraints(&mut c, text).unwrap_err();
            assert_eq!(e.line, 1, "{text}");
            assert!(
                matches!(e.kind, ParseErrorKind::MissingFields { card: got, .. } if got == card),
                "{text}: {:?}",
                e.kind
            );
        }
    }

    #[test]
    fn constraint_errors_reference_lines() {
        let mut c = parse_spice(NETLIST).unwrap();
        let e = parse_constraints(&mut c, "sympair nope M1 M2").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_constraints(&mut c, "\nalign bottom M1 M99").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_constraints(&mut c, "critical no_such_net").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownNet("no_such_net".into()));
        let e = parse_constraints(&mut c, "conjure M1").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownDirective("conjure".into()));
    }

    #[test]
    fn placement_roundtrip() {
        let c = parse_spice(NETLIST).unwrap();
        let mut p = crate::Placement::new(c.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = (i as f64 * 1.25, (i * i % 5) as f64);
        }
        p.flips[2] = (true, false);
        let text = write_placement(&c, &p);
        let back = parse_placement(&c, &text).unwrap();
        for (a, b) in p.positions.iter().zip(&back.positions) {
            assert!((a.0 - b.0).abs() < 1e-6 && (a.1 - b.1).abs() < 1e-6);
        }
        assert_eq!(p.flips, back.flips);
    }

    #[test]
    fn placement_parser_rejects_missing_devices() {
        let c = parse_spice(NETLIST).unwrap();
        let e = parse_placement(&c, "M1 0 0 0 0").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::MissingPlacementDevice("M2".into()));
        let e = parse_placement(&c, "M9 0 0 0 0").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::UnknownDevice("M9".into()));
        let e = parse_placement(&c, "M1 0 0 0").unwrap_err();
        assert_eq!(
            e.kind,
            ParseErrorKind::WrongFieldCount {
                expected: 5,
                got: 4
            }
        );
        let e = parse_placement(&c, "M1 zero 0 0 0").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::BadNumber {
                what: "x coordinate",
                ..
            }
        ));
    }
}
