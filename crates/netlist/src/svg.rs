//! SVG rendering of placements, for debugging and documentation.

use std::fmt::Write as _;

use crate::{Circuit, DeviceKind, Placement};

/// Fill color per device kind.
fn kind_color(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::Nmos => "#7eb0d5",
        DeviceKind::Pmos => "#fd7f6f",
        DeviceKind::Capacitor => "#b2e061",
        DeviceKind::Resistor => "#ffb55a",
        DeviceKind::Inductor => "#bd7ebe",
        DeviceKind::Diode => "#8bd3c7",
    }
}

/// Renders a placement as a standalone SVG document.
///
/// Devices are drawn as kind-colored rectangles with name labels;
/// performance-critical nets as faint star-topology traces. The viewport
/// fits the placement bounding box with a 5 % margin.
///
/// # Panics
///
/// Panics if the placement size mismatches the circuit or is empty.
///
/// # Examples
///
/// ```
/// use analog_netlist::{svg, testcases, Placement};
/// let circuit = testcases::adder();
/// let mut p = Placement::new(circuit.num_devices());
/// for (i, pos) in p.positions.iter_mut().enumerate() {
///     *pos = ((i % 4) as f64 * 5.0, (i / 4) as f64 * 4.0);
/// }
/// let doc = svg::render(&circuit, &p);
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("</svg>"));
/// ```
pub fn render(circuit: &Circuit, placement: &Placement) -> String {
    assert_eq!(
        placement.len(),
        circuit.num_devices(),
        "placement size mismatch"
    );
    let (x0, y0, x1, y1) = placement
        .bounding_box(circuit)
        .expect("placement must not be empty");
    let w = (x1 - x0).max(1e-6);
    let h = (y1 - y0).max(1e-6);
    let margin = 0.05 * w.max(h);
    let view_w = w + 2.0 * margin;
    let view_h = h + 2.0 * margin;
    // SVG y grows downward; flip so the layout reads like a floorplan.
    let tx = |x: f64| x - x0 + margin;
    let ty = |y: f64| (y1 - y) + margin;

    let mut out = String::new();
    let _ = write!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {view_w:.3} {view_h:.3}" width="640">"##
    );
    let _ = write!(
        out,
        r##"<rect x="0" y="0" width="{view_w:.3}" height="{view_h:.3}" fill="#fafafa"/>"##
    );

    // Critical-net star traces underneath the devices.
    for net in circuit.nets() {
        if !net.critical || net.pins.len() < 2 {
            continue;
        }
        let pts: Vec<(f64, f64)> = net
            .pins
            .iter()
            .map(|p| placement.pin_position(circuit, p.device, p.pin.index()))
            .collect();
        let n = pts.len() as f64;
        let cx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let cy = pts.iter().map(|p| p.1).sum::<f64>() / n;
        for &(px, py) in &pts {
            let _ = write!(
                out,
                r##"<line x1="{:.3}" y1="{:.3}" x2="{:.3}" y2="{:.3}" stroke="#d62728" stroke-width="{:.3}" stroke-opacity="0.35"/>"##,
                tx(px),
                ty(py),
                tx(cx),
                ty(cy),
                0.004 * view_w.max(view_h),
            );
        }
    }

    for (id, d) in circuit.device_ids() {
        let (cx, cy) = placement.position(id);
        let _ = write!(
            out,
            r##"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" fill="{}" stroke="#333" stroke-width="{:.3}"/>"##,
            tx(cx - d.width / 2.0),
            ty(cy + d.height / 2.0),
            d.width,
            d.height,
            kind_color(d.kind),
            0.002 * view_w.max(view_h),
        );
        let font = (0.25 * d.height.min(d.width)).max(0.015 * view_w.max(view_h));
        let _ = write!(
            out,
            r##"<text x="{:.3}" y="{:.3}" font-size="{font:.3}" text-anchor="middle" font-family="monospace">{}</text>"##,
            tx(cx),
            ty(cy) + font / 3.0,
            d.name,
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcases;

    fn grid_placement(circuit: &Circuit) -> Placement {
        let mut p = Placement::new(circuit.num_devices());
        for (i, pos) in p.positions.iter_mut().enumerate() {
            *pos = ((i % 5) as f64 * 6.0, (i / 5) as f64 * 5.0);
        }
        p
    }

    #[test]
    fn svg_contains_every_device() {
        let c = testcases::cc_ota();
        let doc = render(&c, &grid_placement(&c));
        for d in c.devices() {
            assert!(
                doc.contains(&format!(">{}</text>", d.name)),
                "{} missing",
                d.name
            );
        }
        assert_eq!(doc.matches("<rect").count(), c.num_devices() + 1); // + background
    }

    #[test]
    fn svg_draws_critical_net_traces() {
        let c = testcases::cc_ota();
        let doc = render(&c, &grid_placement(&c));
        assert!(doc.contains("<line"));
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let c = testcases::adder();
        let doc = render(&c, &grid_placement(&c));
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>"));
        assert_eq!(doc.matches("<svg").count(), 1);
    }
}
