//! # analog-netlist
//!
//! Circuit netlist modelling for analog IC placement research.
//!
//! This crate is the data substrate of a reproduction of *"Are Analytical
//! Techniques Worthwhile for Analog IC Placement?"* (DATE 2022). It provides:
//!
//! - a validated, flat [`Circuit`] model of devices, nets and pins;
//! - the analog geometric constraints the paper's placers handle:
//!   [`SymmetryGroup`]s, [`Alignment`]s and [`Ordering`] chains;
//! - [`Placement`] solutions with exact HPWL/area/overlap/constraint metrics;
//! - a SPICE-like netlist [`parser`] and constraint-file parser/writer;
//! - [`testcases`]: generators for the paper's ten evaluation circuits.
//!
//! # Examples
//!
//! ```
//! use analog_netlist::{testcases, Placement};
//!
//! let circuit = testcases::cc_ota();
//! let placement = Placement::new(circuit.num_devices());
//! // All devices at the origin: fully overlapping, zero wirelength spread.
//! assert!(placement.overlap_area(&circuit) > 0.0);
//! assert!(circuit.num_devices() >= 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adjacency;
mod circuit;
mod constraint;
mod delta;
mod device;
mod error;
mod ids;
mod net;
pub mod parser;
mod placement;
pub mod svg;
pub mod testcases;

pub use adjacency::DeviceNets;
pub use circuit::{Circuit, CircuitBuilder, CircuitClass};
pub use constraint::{
    AlignKind, Alignment, Axis, ConstraintSet, OrderDirection, Ordering, SymmetryGroup,
};
pub use delta::{AppliedDelta, EcoOp, NetlistDelta};
pub use device::{Device, DeviceKind, ElectricalParams, Pin};
pub use error::{BuildCircuitError, ParseError, ParseErrorKind};
pub use ids::{DeviceId, NetId, PinIndex};
pub use net::{Net, PinRef};
pub use placement::Placement;
