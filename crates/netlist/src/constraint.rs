//! Analog geometric constraints: symmetry, alignment, and ordering.
//!
//! These correspond directly to the constraint sets of the paper's detailed
//! placement ILP: symmetry groups `S = {(Sᵖ_m, Sˢ_m)}` (Eq. 4f), bottom and
//! vertical-center alignment pairs `P^B`/`P^VC` (Eq. 4g/4h), and horizontal
//! ordering chains `O^H` (Eq. 4i).

use crate::DeviceId;

/// Orientation of a symmetry axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Devices are mirrored across a vertical line (x = const).
    Vertical,
    /// Devices are mirrored across a horizontal line (y = const).
    Horizontal,
}

/// A symmetry group: mirrored device pairs plus self-symmetric devices
/// sharing one axis.
///
/// For a vertical axis at `x̂`, each pair `(a, b)` must satisfy
/// `y_a = y_b` and `x_a + x_b = 2x̂`; each self-symmetric device `r`
/// must satisfy `x_r = x̂`. The axis position itself is a free variable
/// chosen by the placer.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetryGroup {
    /// Group name (for diagnostics and files).
    pub name: String,
    /// Axis orientation.
    pub axis: Axis,
    /// Mirrored device pairs.
    pub pairs: Vec<(DeviceId, DeviceId)>,
    /// Self-symmetric devices centered on the axis.
    pub self_symmetric: Vec<DeviceId>,
}

impl SymmetryGroup {
    /// Creates an empty group with the given axis.
    pub fn new(name: impl Into<String>, axis: Axis) -> Self {
        Self {
            name: name.into(),
            axis,
            pairs: Vec::new(),
            self_symmetric: Vec::new(),
        }
    }

    /// All devices mentioned by the group.
    pub fn members(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(self.self_symmetric.iter().copied())
    }

    /// Whether the group constrains at least one device pair or singleton.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.self_symmetric.is_empty()
    }
}

/// The flavor of an alignment constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignKind {
    /// Bottom edges aligned: `y_a − h_a/2 = y_b − h_b/2` (Eq. 4g).
    Bottom,
    /// Vertical centerlines aligned: `x_a = x_b` (Eq. 4h).
    VerticalCenter,
}

/// An alignment constraint between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alignment {
    /// Alignment flavor.
    pub kind: AlignKind,
    /// First device.
    pub a: DeviceId,
    /// Second device.
    pub b: DeviceId,
}

/// Direction of an ordering chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderDirection {
    /// Devices appear strictly left-to-right (Eq. 4i).
    Horizontal,
    /// Devices appear strictly bottom-to-top.
    Vertical,
}

/// An ordering constraint: the devices must appear in the given order along
/// the direction, without overlapping (monotone signal path, cf. \[16\]).
#[derive(Debug, Clone, PartialEq)]
pub struct Ordering {
    /// Ordering direction.
    pub direction: OrderDirection,
    /// Devices in required order.
    pub devices: Vec<DeviceId>,
}

/// The complete constraint set of a circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    /// Symmetry groups.
    pub symmetry_groups: Vec<SymmetryGroup>,
    /// Alignment pairs.
    pub alignments: Vec<Alignment>,
    /// Ordering chains.
    pub orderings: Vec<Ordering>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set contains no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.symmetry_groups.is_empty() && self.alignments.is_empty() && self.orderings.is_empty()
    }

    /// Total number of individual constraints.
    pub fn len(&self) -> usize {
        let sym: usize = self
            .symmetry_groups
            .iter()
            .map(|g| g.pairs.len() + g.self_symmetric.len())
            .sum();
        sym + self.alignments.len() + self.orderings.len()
    }

    /// Returns the symmetry group (if any) containing the device.
    pub fn symmetry_group_of(&self, device: DeviceId) -> Option<&SymmetryGroup> {
        self.symmetry_groups
            .iter()
            .find(|g| g.members().any(|m| m == device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> DeviceId {
        DeviceId::new(i)
    }

    #[test]
    fn group_members_cover_pairs_and_selfs() {
        let mut g = SymmetryGroup::new("g0", Axis::Vertical);
        g.pairs.push((d(0), d(1)));
        g.self_symmetric.push(d(2));
        let members: Vec<_> = g.members().collect();
        assert_eq!(members, vec![d(0), d(1), d(2)]);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_group_is_empty() {
        assert!(SymmetryGroup::new("g", Axis::Horizontal).is_empty());
    }

    #[test]
    fn constraint_set_len_counts_everything() {
        let mut set = ConstraintSet::new();
        assert!(set.is_empty());
        let mut g = SymmetryGroup::new("g0", Axis::Vertical);
        g.pairs.push((d(0), d(1)));
        g.self_symmetric.push(d(4));
        set.symmetry_groups.push(g);
        set.alignments.push(Alignment {
            kind: AlignKind::Bottom,
            a: d(0),
            b: d(2),
        });
        set.orderings.push(Ordering {
            direction: OrderDirection::Horizontal,
            devices: vec![d(0), d(1), d(2)],
        });
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
    }

    #[test]
    fn symmetry_group_lookup() {
        let mut set = ConstraintSet::new();
        let mut g = SymmetryGroup::new("g0", Axis::Vertical);
        g.pairs.push((d(1), d(2)));
        set.symmetry_groups.push(g);
        assert!(set.symmetry_group_of(d(2)).is_some());
        assert!(set.symmetry_group_of(d(5)).is_none());
    }
}
