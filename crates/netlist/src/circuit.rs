//! The [`Circuit`] container and its builder.

use std::collections::HashMap;

use crate::{
    Alignment, BuildCircuitError, ConstraintSet, Device, DeviceId, DeviceKind, Net, NetId,
    Ordering, Pin, PinIndex, PinRef, SymmetryGroup,
};

/// The class of an analog circuit, used to select the matching performance
/// model in the evaluation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitClass {
    /// Operational transconductance amplifier.
    Ota,
    /// Clocked comparator.
    Comparator,
    /// Voltage-controlled oscillator.
    Vco,
    /// Analog adder.
    Adder,
    /// Variable gain amplifier.
    Vga,
    /// Switched-capacitor filter.
    Scf,
}

impl std::fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CircuitClass::Ota => "ota",
            CircuitClass::Comparator => "comparator",
            CircuitClass::Vco => "vco",
            CircuitClass::Adder => "adder",
            CircuitClass::Vga => "vga",
            CircuitClass::Scf => "scf",
        };
        f.write_str(s)
    }
}

/// A flat analog circuit: devices, nets, and geometric constraints.
///
/// Construct circuits through [`CircuitBuilder`], which validates name
/// uniqueness, net references and constraint consistency.
///
/// # Examples
///
/// ```
/// use analog_netlist::{CircuitBuilder, CircuitClass, DeviceKind};
///
/// # fn main() -> Result<(), analog_netlist::BuildCircuitError> {
/// let mut b = CircuitBuilder::new("toy", CircuitClass::Ota);
/// let vin = b.net("vin");
/// let vout = b.net("vout");
/// let m1 = b.mos("M1", DeviceKind::Nmos, 2.0, 1.0, &[("g", vin), ("d", vout)]);
/// let m2 = b.mos("M2", DeviceKind::Nmos, 2.0, 1.0, &[("g", vin), ("d", vout)]);
/// b.symmetry_pair("g0", m1, m2);
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_devices(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    class: CircuitClass,
    devices: Vec<Device>,
    nets: Vec<Net>,
    constraints: ConstraintSet,
}

impl Circuit {
    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Circuit class.
    pub fn class(&self) -> CircuitClass {
        self.class
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The device with the given id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterator over `(DeviceId, &Device)`.
    pub fn device_ids(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId::new(i), d))
    }

    /// Iterator over `(NetId, &Net)`.
    pub fn net_ids(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// Looks up a device by name.
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name == name)
            .map(DeviceId::new)
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(NetId::new)
    }

    /// Sum of device footprint areas in µm².
    pub fn total_device_area(&self) -> f64 {
        self.devices.iter().map(Device::area).sum()
    }

    /// Marks a net as performance-critical.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn set_net_critical(&mut self, net: NetId, critical: bool) {
        self.nets[net.index()].critical = critical;
    }

    /// Sets a net's wirelength weight.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn set_net_weight(&mut self, net: NetId, weight: f64) {
        self.nets[net.index()].weight = weight;
    }
}

/// Incremental builder for [`Circuit`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    class: CircuitClass,
    devices: Vec<Device>,
    nets: Vec<Net>,
    constraints: ConstraintSet,
    group_index: HashMap<String, usize>,
}

impl CircuitBuilder {
    /// Starts a new builder for a circuit of the given name and class.
    pub fn new(name: impl Into<String>, class: CircuitClass) -> Self {
        Self {
            name: name.into(),
            class,
            devices: Vec::new(),
            nets: Vec::new(),
            constraints: ConstraintSet::new(),
            group_index: HashMap::new(),
        }
    }

    /// Declares (or returns the existing) net with the given name.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(i) = self.nets.iter().position(|n| n.name == name) {
            return NetId::new(i);
        }
        self.nets.push(Net::new(name));
        NetId::new(self.nets.len() - 1)
    }

    /// Adds a fully-specified device and wires its pins into the net list.
    pub fn device(&mut self, device: Device) -> DeviceId {
        let id = DeviceId::new(self.devices.len());
        for (pi, pin) in device.pins.iter().enumerate() {
            if let Some(net) = self.nets.get_mut(pin.net.index()) {
                net.pins.push(PinRef::new(id, PinIndex::new(pi)));
            }
        }
        self.devices.push(device);
        id
    }

    /// Convenience: adds a MOS-style device with pins distributed along its
    /// top edge (gate on the left, then the remaining pins).
    pub fn mos(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        width: f64,
        height: f64,
        pins: &[(&str, NetId)],
    ) -> DeviceId {
        let mut device =
            Device::new(name, kind, width, height).with_electrical(if kind.is_transistor() {
                crate::ElectricalParams::mos(width, 0.012)
            } else {
                crate::ElectricalParams::default()
            });
        let n = pins.len().max(1) as f64;
        for (i, (pin_name, net)) in pins.iter().enumerate() {
            let frac = (i as f64 + 0.5) / n;
            device
                .pins
                .push(Pin::new(*pin_name, *net, (width * frac, height * 0.9)));
        }
        self.device(device)
    }

    /// Convenience: adds a passive device (cap/res/ind) with two pins on the
    /// left and right edges.
    #[allow(clippy::too_many_arguments)]
    pub fn passive(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        width: f64,
        height: f64,
        plus: NetId,
        minus: NetId,
        electrical: crate::ElectricalParams,
    ) -> DeviceId {
        let device = Device::new(name, kind, width, height)
            .with_electrical(electrical)
            .with_pin(Pin::new("plus", plus, (width * 0.1, height * 0.5)))
            .with_pin(Pin::new("minus", minus, (width * 0.9, height * 0.5)));
        self.device(device)
    }

    fn group_mut(&mut self, name: &str) -> &mut SymmetryGroup {
        if let Some(&i) = self.group_index.get(name) {
            return &mut self.constraints.symmetry_groups[i];
        }
        self.constraints
            .symmetry_groups
            .push(SymmetryGroup::new(name, crate::Axis::Vertical));
        let i = self.constraints.symmetry_groups.len() - 1;
        self.group_index.insert(name.to_string(), i);
        &mut self.constraints.symmetry_groups[i]
    }

    /// Adds a mirrored pair to the named (vertical-axis) symmetry group.
    pub fn symmetry_pair(&mut self, group: &str, a: DeviceId, b: DeviceId) {
        self.group_mut(group).pairs.push((a, b));
    }

    /// Adds a self-symmetric device to the named symmetry group.
    pub fn symmetry_self(&mut self, group: &str, device: DeviceId) {
        self.group_mut(group).self_symmetric.push(device);
    }

    /// Adds an alignment constraint.
    pub fn align(&mut self, kind: crate::AlignKind, a: DeviceId, b: DeviceId) {
        self.constraints.alignments.push(Alignment { kind, a, b });
    }

    /// Adds an ordering chain.
    pub fn order(&mut self, direction: crate::OrderDirection, devices: Vec<DeviceId>) {
        self.constraints
            .orderings
            .push(Ordering { direction, devices });
    }

    /// Marks a net as critical.
    pub fn critical(&mut self, net: NetId) {
        self.nets[net.index()].critical = true;
    }

    /// Validates and finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildCircuitError`] if device/net names collide, pins
    /// reference missing nets, or constraints reference unknown devices,
    /// pair a device with itself, or place a device in two symmetry groups.
    pub fn build(self) -> Result<Circuit, BuildCircuitError> {
        let mut seen = HashMap::new();
        for d in &self.devices {
            if seen.insert(d.name.clone(), ()).is_some() {
                return Err(BuildCircuitError::DuplicateDevice(d.name.clone()));
            }
        }
        let mut seen_nets = HashMap::new();
        for n in &self.nets {
            if seen_nets.insert(n.name.clone(), ()).is_some() {
                return Err(BuildCircuitError::DuplicateNet(n.name.clone()));
            }
        }
        for d in &self.devices {
            for p in &d.pins {
                if p.net.index() >= self.nets.len() {
                    return Err(BuildCircuitError::DanglingNet {
                        device: d.name.clone(),
                        pin: p.name.clone(),
                    });
                }
            }
        }
        let n = self.devices.len();
        let check = |id: DeviceId| -> Result<(), BuildCircuitError> {
            if id.index() >= n {
                Err(BuildCircuitError::UnknownConstraintDevice(id.index()))
            } else {
                Ok(())
            }
        };
        let mut group_of: Vec<Option<usize>> = vec![None; n];
        for (gi, g) in self.constraints.symmetry_groups.iter().enumerate() {
            for &(a, b) in &g.pairs {
                check(a)?;
                check(b)?;
                if a == b {
                    return Err(BuildCircuitError::SelfPairedDevice(
                        self.devices[a.index()].name.clone(),
                    ));
                }
            }
            for &s in &g.self_symmetric {
                check(s)?;
            }
            for m in g.members() {
                match group_of[m.index()] {
                    Some(other) if other != gi => {
                        return Err(BuildCircuitError::OverlappingSymmetryGroups(
                            self.devices[m.index()].name.clone(),
                        ));
                    }
                    _ => group_of[m.index()] = Some(gi),
                }
            }
        }
        for a in &self.constraints.alignments {
            check(a.a)?;
            check(a.b)?;
        }
        for o in &self.constraints.orderings {
            for &d in &o.devices {
                check(d)?;
            }
        }
        Ok(Circuit {
            name: self.name,
            class: self.class,
            devices: self.devices,
            nets: self.nets,
            constraints: self.constraints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CircuitBuilder {
        let mut b = CircuitBuilder::new("toy", CircuitClass::Ota);
        let vin = b.net("vin");
        let vout = b.net("vout");
        b.mos("M1", DeviceKind::Nmos, 2.0, 1.0, &[("g", vin), ("d", vout)]);
        b.mos("M2", DeviceKind::Nmos, 2.0, 1.0, &[("g", vin), ("d", vout)]);
        b
    }

    #[test]
    fn builder_wires_pins_into_nets() {
        let c = toy().build().unwrap();
        assert_eq!(c.num_devices(), 2);
        assert_eq!(c.num_nets(), 2);
        assert_eq!(c.net(NetId::new(0)).degree(), 2);
        assert_eq!(c.net(NetId::new(1)).degree(), 2);
    }

    #[test]
    fn net_is_deduplicated_by_name() {
        let mut b = CircuitBuilder::new("t", CircuitClass::Adder);
        let a = b.net("x");
        let b2 = b.net("x");
        assert_eq!(a, b2);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut b = toy();
        let vin = b.net("vin");
        b.mos("M1", DeviceKind::Pmos, 1.0, 1.0, &[("g", vin)]);
        assert_eq!(
            b.build().unwrap_err(),
            BuildCircuitError::DuplicateDevice("M1".into())
        );
    }

    #[test]
    fn self_paired_device_rejected() {
        let mut b = toy();
        b.symmetry_pair("g", DeviceId::new(0), DeviceId::new(0));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildCircuitError::SelfPairedDevice(_)
        ));
    }

    #[test]
    fn overlapping_groups_rejected() {
        let mut b = toy();
        b.symmetry_pair("g1", DeviceId::new(0), DeviceId::new(1));
        b.symmetry_self("g2", DeviceId::new(0));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildCircuitError::OverlappingSymmetryGroups(_)
        ));
    }

    #[test]
    fn unknown_constraint_device_rejected() {
        let mut b = toy();
        b.symmetry_self("g", DeviceId::new(99));
        assert_eq!(
            b.build().unwrap_err(),
            BuildCircuitError::UnknownConstraintDevice(99)
        );
    }

    #[test]
    fn lookup_by_name() {
        let c = toy().build().unwrap();
        assert_eq!(c.find_device("M2"), Some(DeviceId::new(1)));
        assert_eq!(c.find_device("M9"), None);
        assert_eq!(c.find_net("vout"), Some(NetId::new(1)));
    }

    #[test]
    fn total_area_sums_footprints() {
        let c = toy().build().unwrap();
        assert!((c.total_device_area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn critical_flag_roundtrips() {
        let mut c = toy().build().unwrap();
        let id = c.find_net("vout").unwrap();
        c.set_net_critical(id, true);
        assert!(c.net(id).critical);
        c.set_net_weight(id, 2.5);
        assert_eq!(c.net(id).weight, 2.5);
    }
}
