//! The paper's ten testcase circuits as parameterized synthetic generators.
//!
//! The DATE'22 study evaluates on three OTAs, two comparators, two VCOs, an
//! analog adder, a VGA and a switched-capacitor filter, each with "dozens of
//! devices", built in a GF12nm PDK we do not have. These generators produce
//! circuits of the same classes with the same structural features the placers
//! care about: differential pairs with symmetry constraints, current-mirror
//! banks with alignment constraints, monotone signal paths with ordering
//! constraints, large passives dominating area (SCF capacitor banks, VCO
//! inductors), and performance-critical nets.
//!
//! Everything is deterministic: calling a generator twice yields identical
//! circuits.

use crate::{
    AlignKind, Circuit, CircuitBuilder, CircuitClass, DeviceId, DeviceKind, ElectricalParams,
    NetId, OrderDirection,
};

/// Adds a differential pair: two matched transistors on `inp/inn`,
/// drains on `outn/outp`, common source on `tail`. Returns the pair.
#[allow(clippy::too_many_arguments)]
fn diff_pair(
    b: &mut CircuitBuilder,
    prefix: &str,
    kind: DeviceKind,
    w: f64,
    h: f64,
    inp: NetId,
    inn: NetId,
    outp: NetId,
    outn: NetId,
    tail: NetId,
    vb: NetId,
) -> (DeviceId, DeviceId) {
    let a = b.mos(
        format!("{prefix}A"),
        kind,
        w,
        h,
        &[("d", outn), ("g", inp), ("s", tail), ("b", vb)],
    );
    let c = b.mos(
        format!("{prefix}B"),
        kind,
        w,
        h,
        &[("d", outp), ("g", inn), ("s", tail), ("b", vb)],
    );
    (a, c)
}

/// Adds a 1:1 current mirror: diode device on `bias`, output device driving
/// `out`, both sourced at `rail`. Returns (diode, output).
#[allow(clippy::too_many_arguments)]
fn mirror(
    b: &mut CircuitBuilder,
    prefix: &str,
    kind: DeviceKind,
    w: f64,
    h: f64,
    bias: NetId,
    out: NetId,
    rail: NetId,
) -> (DeviceId, DeviceId) {
    let d = b.mos(
        format!("{prefix}D"),
        kind,
        w,
        h,
        &[("d", bias), ("g", bias), ("s", rail), ("b", rail)],
    );
    let o = b.mos(
        format!("{prefix}O"),
        kind,
        w,
        h,
        &[("d", out), ("g", bias), ("s", rail), ("b", rail)],
    );
    (d, o)
}

fn cap(b: &mut CircuitBuilder, name: &str, farads: f64, plus: NetId, minus: NetId) -> DeviceId {
    let area = (farads / 2.0e-15).max(0.25);
    let side = area.sqrt();
    b.passive(
        name,
        DeviceKind::Capacitor,
        side,
        side,
        plus,
        minus,
        ElectricalParams::capacitor(farads),
    )
}

fn res(b: &mut CircuitBuilder, name: &str, ohms: f64, plus: NetId, minus: NetId) -> DeviceId {
    let squares = (ohms / 1000.0).max(0.5);
    let w = 0.4 + 0.1 * squares.min(20.0);
    let h = (0.4 * squares).clamp(0.4, 8.0);
    b.passive(
        name,
        DeviceKind::Resistor,
        w,
        h,
        plus,
        minus,
        ElectricalParams::resistor(ohms),
    )
}

/// The analog adder: a resistive summing network into a small two-stage
/// buffer (11 devices; one symmetry pair).
pub fn adder() -> Circuit {
    let mut b = CircuitBuilder::new("Adder", CircuitClass::Adder);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let ins: Vec<NetId> = (0..3).map(|i| b.net(format!("in{i}"))).collect();
    let sum = b.net("sum");
    let sumb = b.net("sumb");
    let tail = b.net("tail");
    let vb = b.net("vb");
    let vout = b.net("vout");

    for (i, &input) in ins.iter().enumerate() {
        res(&mut b, &format!("R{i}"), 10_000.0, input, sum);
    }
    res(&mut b, "RF", 20_000.0, sum, vout);
    let (pa, pb) = diff_pair(
        &mut b,
        "M1",
        DeviceKind::Nmos,
        3.0,
        1.0,
        sum,
        sumb,
        vout,
        vb,
        tail,
        vss,
    );
    let tail_dev = b.mos(
        "MT",
        DeviceKind::Nmos,
        4.0,
        1.2,
        &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
    );
    let (ld, lo) = mirror(&mut b, "ML", DeviceKind::Pmos, 3.0, 1.0, vb, vout, vdd);
    cap(&mut b, "CL", 30e-15, vout, vss);
    res(&mut b, "RB", 15_000.0, vb, vss);

    b.symmetry_pair("pair", pa, pb);
    b.symmetry_self("pair", tail_dev);
    b.align(AlignKind::Bottom, ld, lo);
    b.critical(vout);
    b.critical(sum);
    b.build().expect("adder testcase is valid")
}

/// The cross-coupled OTA: NMOS input pair, cross-coupled PMOS load,
/// cascode mirrors, tail source and compensation caps (13 devices).
pub fn cc_ota() -> Circuit {
    let mut b = CircuitBuilder::new("CC-OTA", CircuitClass::Ota);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (outp, outn) = (b.net("outp"), b.net("outn"));
    let tail = b.net("tail");
    let vb = b.net("vbias");

    let (ina, inb) = diff_pair(
        &mut b,
        "MIN",
        DeviceKind::Nmos,
        4.0,
        1.2,
        inp,
        inn,
        outp,
        outn,
        tail,
        vss,
    );
    // Cross-coupled PMOS load.
    let xa = b.mos(
        "MXA",
        DeviceKind::Pmos,
        3.0,
        1.0,
        &[("d", outn), ("g", outp), ("s", vdd), ("b", vdd)],
    );
    let xb = b.mos(
        "MXB",
        DeviceKind::Pmos,
        3.0,
        1.0,
        &[("d", outp), ("g", outn), ("s", vdd), ("b", vdd)],
    );
    // Diode-connected PMOS in parallel for gain control.
    let da = b.mos(
        "MDA",
        DeviceKind::Pmos,
        2.0,
        0.8,
        &[("d", outn), ("g", outn), ("s", vdd), ("b", vdd)],
    );
    let db = b.mos(
        "MDB",
        DeviceKind::Pmos,
        2.0,
        0.8,
        &[("d", outp), ("g", outp), ("s", vdd), ("b", vdd)],
    );
    let tail_dev = b.mos(
        "MT",
        DeviceKind::Nmos,
        6.0,
        1.4,
        &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
    );
    let (bd, bo) = mirror(&mut b, "MB", DeviceKind::Nmos, 2.0, 0.8, vb, tail, vss);
    let ca = cap(&mut b, "CCA", 40e-15, outp, vss);
    let cb = cap(&mut b, "CCB", 40e-15, outn, vss);
    res(&mut b, "RB", 12_000.0, vb, vdd);
    cap(&mut b, "CB", 20e-15, vb, vss);

    b.symmetry_pair("core", ina, inb);
    b.symmetry_pair("core", xa, xb);
    b.symmetry_pair("core", da, db);
    b.symmetry_self("core", tail_dev);
    b.symmetry_pair("comp", ca, cb);
    b.align(AlignKind::Bottom, bd, bo);
    b.order(OrderDirection::Horizontal, vec![bd, bo]);
    b.critical(outp);
    b.critical(outn);
    b.build().expect("cc-ota testcase is valid")
}

#[allow(clippy::too_many_arguments)]
fn strongarm(
    b: &mut CircuitBuilder,
    stage: &str,
    inp: NetId,
    inn: NetId,
    outp: NetId,
    outn: NetId,
    clk: NetId,
    vdd: NetId,
    vss: NetId,
) -> Vec<(DeviceId, DeviceId)> {
    let tail = b.net(format!("{stage}_tail"));
    let (xp, xn) = (b.net(format!("{stage}_xp")), b.net(format!("{stage}_xn")));
    let mut pairs = Vec::new();
    let (a, c) = diff_pair(
        b,
        &format!("{stage}IN"),
        DeviceKind::Nmos,
        3.0,
        1.0,
        inp,
        inn,
        xp,
        xn,
        tail,
        vss,
    );
    pairs.push((a, c));
    let na = b.mos(
        format!("{stage}NA"),
        DeviceKind::Nmos,
        2.0,
        0.8,
        &[("d", outn), ("g", outp), ("s", xn), ("b", vss)],
    );
    let nb = b.mos(
        format!("{stage}NB"),
        DeviceKind::Nmos,
        2.0,
        0.8,
        &[("d", outp), ("g", outn), ("s", xp), ("b", vss)],
    );
    pairs.push((na, nb));
    let pa = b.mos(
        format!("{stage}PA"),
        DeviceKind::Pmos,
        2.0,
        0.8,
        &[("d", outn), ("g", outp), ("s", vdd), ("b", vdd)],
    );
    let pb = b.mos(
        format!("{stage}PB"),
        DeviceKind::Pmos,
        2.0,
        0.8,
        &[("d", outp), ("g", outn), ("s", vdd), ("b", vdd)],
    );
    pairs.push((pa, pb));
    // Precharge switches.
    let sa = b.mos(
        format!("{stage}SA"),
        DeviceKind::Pmos,
        1.5,
        0.6,
        &[("d", outn), ("g", clk), ("s", vdd), ("b", vdd)],
    );
    let sb = b.mos(
        format!("{stage}SB"),
        DeviceKind::Pmos,
        1.5,
        0.6,
        &[("d", outp), ("g", clk), ("s", vdd), ("b", vdd)],
    );
    pairs.push((sa, sb));
    let sc = b.mos(
        format!("{stage}SC"),
        DeviceKind::Pmos,
        1.5,
        0.6,
        &[("d", xn), ("g", clk), ("s", vdd), ("b", vdd)],
    );
    let sd = b.mos(
        format!("{stage}SD"),
        DeviceKind::Pmos,
        1.5,
        0.6,
        &[("d", xp), ("g", clk), ("s", vdd), ("b", vdd)],
    );
    pairs.push((sc, sd));
    let t = b.mos(
        format!("{stage}T"),
        DeviceKind::Nmos,
        5.0,
        1.2,
        &[("d", tail), ("g", clk), ("s", vss), ("b", vss)],
    );
    let group = format!("{stage}_sym");
    for &(x, y) in &pairs {
        b.symmetry_pair(&group, x, y);
    }
    b.symmetry_self(&group, t);
    pairs
}

/// Comparator 1: a StrongARM latch with an SR output stage (17 devices).
pub fn comp1() -> Circuit {
    let mut b = CircuitBuilder::new("Comp1", CircuitClass::Comparator);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (outp, outn) = (b.net("outp"), b.net("outn"));
    let clk = b.net("clk");
    strongarm(&mut b, "ML", inp, inn, outp, outn, clk, vdd, vss);
    // SR latch output buffer: two cross-coupled NAND-ish stacks.
    let (qp, qn) = (b.net("qp"), b.net("qn"));
    let n1 = b.mos(
        "MSR1",
        DeviceKind::Nmos,
        1.5,
        0.6,
        &[("d", qp), ("g", outp), ("s", vss), ("b", vss)],
    );
    let n2 = b.mos(
        "MSR2",
        DeviceKind::Nmos,
        1.5,
        0.6,
        &[("d", qn), ("g", outn), ("s", vss), ("b", vss)],
    );
    let p1 = b.mos(
        "MSR3",
        DeviceKind::Pmos,
        2.0,
        0.6,
        &[("d", qp), ("g", qn), ("s", vdd), ("b", vdd)],
    );
    let p2 = b.mos(
        "MSR4",
        DeviceKind::Pmos,
        2.0,
        0.6,
        &[("d", qn), ("g", qp), ("s", vdd), ("b", vdd)],
    );
    cap(&mut b, "CQ1", 10e-15, qp, vss);
    cap(&mut b, "CQ2", 10e-15, qn, vss);
    b.symmetry_pair("sr", n1, n2);
    b.symmetry_pair("sr", p1, p2);
    b.critical(outp);
    b.critical(outn);
    b.build().expect("comp1 testcase is valid")
}

/// Comparator 2: preamplifier plus double-tail latch (22 devices).
pub fn comp2() -> Circuit {
    let mut b = CircuitBuilder::new("Comp2", CircuitClass::Comparator);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (ap, an) = (b.net("ap"), b.net("an"));
    let (outp, outn) = (b.net("outp"), b.net("outn"));
    let clk = b.net("clk");
    let vb = b.net("vb");
    let tail0 = b.net("tail0");

    // Preamp: resistively loaded diff pair.
    let (pa, pb) = diff_pair(
        &mut b,
        "MP",
        DeviceKind::Nmos,
        4.0,
        1.2,
        inp,
        inn,
        ap,
        an,
        tail0,
        vss,
    );
    let ra = res(&mut b, "RLA", 8_000.0, ap, vdd);
    let rb = res(&mut b, "RLB", 8_000.0, an, vdd);
    let t0 = b.mos(
        "MT0",
        DeviceKind::Nmos,
        6.0,
        1.4,
        &[("d", tail0), ("g", vb), ("s", vss), ("b", vss)],
    );
    let (bd, bo) = mirror(&mut b, "MB", DeviceKind::Nmos, 2.0, 0.8, vb, tail0, vss);
    res(&mut b, "RB", 15_000.0, vb, vdd);
    // Latch stage.
    strongarm(&mut b, "ML", ap, an, outp, outn, clk, vdd, vss);
    // Output caps and small hysteresis caps.
    let c1 = cap(&mut b, "CO1", 8e-15, outp, vss);
    let c2 = cap(&mut b, "CO2", 8e-15, outn, vss);
    cap(&mut b, "CH", 5e-15, ap, an);

    b.symmetry_pair("pre", pa, pb);
    b.symmetry_pair("pre", ra, rb);
    b.symmetry_self("pre", t0);
    b.symmetry_pair("out", c1, c2);
    b.align(AlignKind::Bottom, bd, bo);
    b.order(OrderDirection::Horizontal, vec![pa, t0, pb]);
    b.critical(ap);
    b.critical(an);
    b.critical(outp);
    b.critical(outn);
    b.build().expect("comp2 testcase is valid")
}

/// Current-mirror OTA 1: single-stage with PMOS mirror loads (14 devices).
pub fn cm_ota1() -> Circuit {
    let mut b = CircuitBuilder::new("CM-OTA1", CircuitClass::Ota);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (xp, xn) = (b.net("xp"), b.net("xn"));
    let vout = b.net("vout");
    let tail = b.net("tail");
    let vb = b.net("vb");
    let mb = b.net("mb");

    let (ia, ib) = diff_pair(
        &mut b,
        "MIN",
        DeviceKind::Nmos,
        4.0,
        1.2,
        inp,
        inn,
        xp,
        xn,
        tail,
        vss,
    );
    // PMOS mirrors: xn-side diode mirrored to vout, xp side to mb then NMOS mirror to vout.
    let (p1d, p1o) = mirror(&mut b, "MP1", DeviceKind::Pmos, 3.0, 1.0, xn, vout, vdd);
    let (p2d, p2o) = mirror(&mut b, "MP2", DeviceKind::Pmos, 3.0, 1.0, xp, mb, vdd);
    let (n1d, n1o) = mirror(&mut b, "MN1", DeviceKind::Nmos, 2.5, 1.0, mb, vout, vss);
    let t = b.mos(
        "MT",
        DeviceKind::Nmos,
        6.0,
        1.4,
        &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
    );
    let (bd, bo) = mirror(&mut b, "MBS", DeviceKind::Nmos, 2.0, 0.8, vb, tail, vss);
    res(&mut b, "RB", 12_000.0, vb, vdd);
    cap(&mut b, "CL", 50e-15, vout, vss);
    cap(&mut b, "CB", 15e-15, vb, vss);

    b.symmetry_pair("core", ia, ib);
    b.symmetry_pair("core", p1d, p2d);
    b.symmetry_self("core", t);
    b.align(AlignKind::Bottom, p1d, p1o);
    b.align(AlignKind::Bottom, p2d, p2o);
    b.align(AlignKind::Bottom, n1d, n1o);
    b.align(AlignKind::Bottom, bd, bo);
    b.order(OrderDirection::Horizontal, vec![p1o, p1d, p2d, p2o]);
    b.critical(vout);
    b.critical(xp);
    b.critical(xn);
    b.build().expect("cm-ota1 testcase is valid")
}

/// Current-mirror OTA 2: two-stage with cascoded mirrors and Miller
/// compensation (20 devices).
pub fn cm_ota2() -> Circuit {
    let mut b = CircuitBuilder::new("CM-OTA2", CircuitClass::Ota);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (xp, xn) = (b.net("xp"), b.net("xn"));
    let (cp, cn) = (b.net("cp"), b.net("cn"));
    let v1 = b.net("v1");
    let vout = b.net("vout");
    let tail = b.net("tail");
    let (vb, vcas) = (b.net("vb"), b.net("vcas"));

    let (ia, ib) = diff_pair(
        &mut b,
        "MIN",
        DeviceKind::Nmos,
        5.0,
        1.4,
        inp,
        inn,
        xp,
        xn,
        tail,
        vss,
    );
    // Cascoded PMOS loads.
    let la = b.mos(
        "MLA",
        DeviceKind::Pmos,
        3.0,
        1.0,
        &[("d", cp), ("g", xn), ("s", vdd), ("b", vdd)],
    );
    let lb = b.mos(
        "MLB",
        DeviceKind::Pmos,
        3.0,
        1.0,
        &[("d", cn), ("g", xn), ("s", vdd), ("b", vdd)],
    );
    let ca_ = b.mos(
        "MCA",
        DeviceKind::Pmos,
        2.5,
        0.9,
        &[("d", v1), ("g", vcas), ("s", cp), ("b", vdd)],
    );
    let cb_ = b.mos(
        "MCB",
        DeviceKind::Pmos,
        2.5,
        0.9,
        &[("d", xn), ("g", vcas), ("s", cn), ("b", vdd)],
    );
    let (m1d, m1o) = mirror(&mut b, "MM1", DeviceKind::Nmos, 2.5, 1.0, xp, v1, vss);
    let t = b.mos(
        "MT",
        DeviceKind::Nmos,
        7.0,
        1.5,
        &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
    );
    // Second stage.
    let g2 = b.mos(
        "MG2",
        DeviceKind::Nmos,
        6.0,
        1.4,
        &[("d", vout), ("g", v1), ("s", vss), ("b", vss)],
    );
    let l2 = b.mos(
        "ML2",
        DeviceKind::Pmos,
        5.0,
        1.2,
        &[("d", vout), ("g", vb), ("s", vdd), ("b", vdd)],
    );
    // Compensation.
    cap(&mut b, "CC", 60e-15, v1, vout);
    res(&mut b, "RZ", 5_000.0, v1, vout);
    cap(&mut b, "CL", 80e-15, vout, vss);
    // Bias chain.
    let (bd, bo) = mirror(&mut b, "MBS", DeviceKind::Nmos, 2.0, 0.8, vb, tail, vss);
    res(&mut b, "RB", 10_000.0, vb, vdd);
    let d1 = b.mos(
        "MCD",
        DeviceKind::Pmos,
        2.0,
        0.8,
        &[("d", vcas), ("g", vcas), ("s", vdd), ("b", vdd)],
    );
    res(&mut b, "RC", 18_000.0, vcas, vss);
    cap(&mut b, "CB", 15e-15, vb, vss);
    let _ = d1;

    b.symmetry_pair("core", ia, ib);
    b.symmetry_pair("core", la, lb);
    b.symmetry_pair("core", ca_, cb_);
    b.symmetry_self("core", t);
    b.align(AlignKind::Bottom, m1d, m1o);
    b.align(AlignKind::Bottom, bd, bo);
    b.align(AlignKind::VerticalCenter, g2, l2);
    b.order(OrderDirection::Horizontal, vec![ia, t, ib]);
    b.critical(v1);
    b.critical(vout);
    b.critical(xp);
    b.build().expect("cm-ota2 testcase is valid")
}

/// Switched-capacitor filter: two OTAs plus large sampling/integrating
/// capacitor banks and switch arrays (~33 devices); caps dominate area.
pub fn scf() -> Circuit {
    let mut b = CircuitBuilder::new("SCF", CircuitClass::Scf);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (vin, vmid, vout) = (b.net("vin"), b.net("vmid"), b.net("vout"));
    let (ph1, ph2) = (b.net("ph1"), b.net("ph2"));
    let vcm = b.net("vcm");

    // Two simple OTA gain cells (5 devices each).
    let ota_cell = |b: &mut CircuitBuilder, idx: usize, inn: NetId, out: NetId| {
        let tail = b.net(format!("ota{idx}_tail"));
        let vb = b.net(format!("ota{idx}_vb"));
        let (a, c) = diff_pair(
            b,
            &format!("MO{idx}"),
            DeviceKind::Nmos,
            4.0,
            1.2,
            vcm,
            inn,
            out,
            vb,
            tail,
            vss,
        );
        let t = b.mos(
            format!("MO{idx}T"),
            DeviceKind::Nmos,
            5.0,
            1.2,
            &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
        );
        let (ld, lo) = mirror(
            b,
            &format!("MO{idx}L"),
            DeviceKind::Pmos,
            3.0,
            1.0,
            vb,
            out,
            vdd,
        );
        let g = format!("ota{idx}");
        b.symmetry_pair(&g, a, c);
        b.symmetry_self(&g, t);
        b.align(AlignKind::Bottom, ld, lo);
        (a, c, t)
    };
    ota_cell(&mut b, 1, vmid, vmid);
    ota_cell(&mut b, 2, vout, vout);

    // Switch arrays: four switches per integrator input.
    let sw = |b: &mut CircuitBuilder, name: String, a: NetId, c: NetId, phase: NetId| {
        b.mos(
            name,
            DeviceKind::Nmos,
            1.2,
            0.5,
            &[("d", a), ("g", phase), ("s", c), ("b", vss)],
        )
    };
    let s1 = b.net("s1");
    let s2 = b.net("s2");
    let s3 = b.net("s3");
    for (i, (from, to, phase)) in [
        (vin, s1, ph1),
        (s1, vss, ph2),
        (s1, vmid, ph2),
        (vmid, s2, ph1),
        (s2, vcm, ph2),
        (s2, vout, ph1),
        (vin, s3, ph2),
        (s3, vcm, ph1),
        (s3, vmid, ph1),
        (vmid, vout, ph2),
        (s3, vss, ph2),
        (s2, vout, ph2),
    ]
    .into_iter()
    .enumerate()
    {
        sw(&mut b, format!("MSW{i}"), from, to, phase);
    }

    // Large capacitor banks (the area driver: each 0.5–2 pF → 15–32 µm sides).
    let cs1 = cap(&mut b, "CS1", 800e-15, s1, vss);
    let ci1 = cap(&mut b, "CI1", 1_600e-15, vmid, vss);
    let cs2 = cap(&mut b, "CS2", 800e-15, s2, vcm);
    let ci2 = cap(&mut b, "CI2", 1_200e-15, vout, vss);
    let cff = cap(&mut b, "CFF", 400e-15, vin, vout);
    let cs3 = cap(&mut b, "CS3", 400e-15, s3, vss);
    // Matching dummies around the integrating caps.
    let da = cap(&mut b, "CDA", 200e-15, vcm, vss);
    let db = cap(&mut b, "CDB", 200e-15, vcm, vss);
    let dc = cap(&mut b, "CDC", 200e-15, vcm, vss);
    let dd = cap(&mut b, "CDD", 200e-15, vcm, vss);
    b.symmetry_pair("dummies2", dc, dd);
    let _ = cs3;

    b.symmetry_pair("caps", cs1, cs2);
    b.symmetry_pair("caps", da, db);
    b.align(AlignKind::Bottom, ci1, ci2);
    b.order(OrderDirection::Horizontal, vec![cs1, ci1, ci2, cs2]);
    let _ = cff;
    b.critical(vmid);
    b.critical(vout);
    b.build().expect("scf testcase is valid")
}

/// Variable-gain amplifier: two gain paths with switchable degeneration and
/// a shared output buffer (19 devices).
pub fn vga() -> Circuit {
    let mut b = CircuitBuilder::new("VGA", CircuitClass::Vga);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (inp, inn) = (b.net("inp"), b.net("inn"));
    let (outp, outn) = (b.net("outp"), b.net("outn"));
    let (g0, g1) = (b.net("gain0"), b.net("gain1"));
    let vb = b.net("vb");

    for (stage, gain_net) in [(0usize, g0), (1usize, g1)] {
        let tail = b.net(format!("t{stage}"));
        let (sa, sb) = (b.net(format!("sa{stage}")), b.net(format!("sb{stage}")));
        let a = b.mos(
            format!("MG{stage}A"),
            DeviceKind::Nmos,
            3.5,
            1.1,
            &[("d", outn), ("g", inp), ("s", sa), ("b", vss)],
        );
        let c = b.mos(
            format!("MG{stage}B"),
            DeviceKind::Nmos,
            3.5,
            1.1,
            &[("d", outp), ("g", inn), ("s", sb), ("b", vss)],
        );
        let ra = res(
            &mut b,
            &format!("RD{stage}A"),
            2_000.0 * (stage as f64 + 1.0),
            sa,
            tail,
        );
        let rb = res(
            &mut b,
            &format!("RD{stage}B"),
            2_000.0 * (stage as f64 + 1.0),
            sb,
            tail,
        );
        let sw = b.mos(
            format!("MS{stage}"),
            DeviceKind::Nmos,
            2.0,
            0.7,
            &[("d", sa), ("g", gain_net), ("s", sb), ("b", vss)],
        );
        let t = b.mos(
            format!("MT{stage}"),
            DeviceKind::Nmos,
            5.0,
            1.3,
            &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
        );
        let grp = format!("stage{stage}");
        b.symmetry_pair(&grp, a, c);
        b.symmetry_pair(&grp, ra, rb);
        b.symmetry_self(&grp, sw);
        b.symmetry_self(&grp, t);
    }
    // Shared loads and bias.
    let la = res(&mut b, "RLA", 6_000.0, outn, vdd);
    let lb = res(&mut b, "RLB", 6_000.0, outp, vdd);
    let (bd, bo) = mirror(&mut b, "MB", DeviceKind::Nmos, 2.0, 0.8, vb, vss, vss);
    res(&mut b, "RB", 14_000.0, vb, vdd);
    let c1 = cap(&mut b, "CO1", 25e-15, outp, vss);
    let c2 = cap(&mut b, "CO2", 25e-15, outn, vss);

    b.symmetry_pair("load", la, lb);
    b.symmetry_pair("load", c1, c2);
    b.align(AlignKind::Bottom, bd, bo);
    b.critical(outp);
    b.critical(outn);
    b.build().expect("vga testcase is valid")
}

fn lc_vco(name: &str, stages: usize, ind_nh: f64, cap_ff: f64) -> Circuit {
    let mut b = CircuitBuilder::new(name, CircuitClass::Vco);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let (op, on) = (b.net("oscp"), b.net("oscn"));
    let vtune = b.net("vtune");
    let tail = b.net("tail");
    let vb = b.net("vb");

    // Tank inductor: the dominant footprint, matching the paper's
    // method-independent VCO areas.
    let side = (ind_nh * 280.0).sqrt();
    let ind = b.passive(
        "LT",
        DeviceKind::Inductor,
        side,
        side,
        op,
        on,
        ElectricalParams::inductor(ind_nh * 1e-9),
    );
    // Cross-coupled NMOS pair.
    let xa = b.mos(
        "MXA",
        DeviceKind::Nmos,
        4.0,
        1.2,
        &[("d", op), ("g", on), ("s", tail), ("b", vss)],
    );
    let xb = b.mos(
        "MXB",
        DeviceKind::Nmos,
        4.0,
        1.2,
        &[("d", on), ("g", op), ("s", tail), ("b", vss)],
    );
    // Varactors (as caps to vtune).
    let va = cap(&mut b, "CVA", cap_ff * 1e-15, op, vtune);
    let vbc = cap(&mut b, "CVB", cap_ff * 1e-15, on, vtune);
    // Fixed tank caps.
    let fa = cap(&mut b, "CFA", cap_ff * 0.5e-15, op, vss);
    let fb = cap(&mut b, "CFB", cap_ff * 0.5e-15, on, vss);
    let t = b.mos(
        "MT",
        DeviceKind::Nmos,
        8.0,
        1.6,
        &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
    );
    let (bd, bo) = mirror(&mut b, "MB", DeviceKind::Nmos, 2.5, 0.9, vb, tail, vss);
    res(&mut b, "RB", 10_000.0, vb, vdd);
    cap(&mut b, "CB", 20e-15, vb, vss);
    // Output buffers, one chain per phase, `stages` inverters each.
    for (phase, net) in [(0usize, op), (1usize, on)] {
        let mut prev = net;
        for s in 0..stages {
            let nxt = b.net(format!("buf{phase}_{s}"));
            b.mos(
                format!("MBN{phase}{s}"),
                DeviceKind::Nmos,
                1.6,
                0.6,
                &[("d", nxt), ("g", prev), ("s", vss), ("b", vss)],
            );
            b.mos(
                format!("MBP{phase}{s}"),
                DeviceKind::Pmos,
                2.4,
                0.6,
                &[("d", nxt), ("g", prev), ("s", vdd), ("b", vdd)],
            );
            prev = nxt;
        }
    }

    b.symmetry_pair("tank", xa, xb);
    b.symmetry_pair("tank", va, vbc);
    b.symmetry_pair("tank", fa, fb);
    b.symmetry_self("tank", ind);
    b.symmetry_self("tank", t);
    b.align(AlignKind::Bottom, bd, bo);
    b.critical(op);
    b.critical(on);
    b.critical(vtune);
    b.build().expect("vco testcase is valid")
}

/// Voltage-controlled oscillator 1: LC tank with a 1 nH inductor and
/// two-stage output buffers (20 devices).
pub fn vco1() -> Circuit {
    lc_vco("VCO1", 2, 1.0, 120.0)
}

/// Voltage-controlled oscillator 2: larger LC tank (1.7 nH) and four-stage
/// buffers (28 devices).
pub fn vco2() -> Circuit {
    lc_vco("VCO2", 4, 1.7, 200.0)
}

/// A scalable chain of `stages` differential gain cells (6 devices plus a
/// shared bias per cell), for scaling studies beyond the paper's circuit
/// sizes. Each cell carries its own symmetry pair + self-symmetric tail;
/// the inter-stage nets are critical.
///
/// Device count = 6·stages + 2.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn scalable_array(stages: usize) -> Circuit {
    assert!(stages > 0, "need at least one stage");
    let mut b = CircuitBuilder::new(format!("Array{stages}"), CircuitClass::Ota);
    let (vdd, vss) = (b.net("vdd"), b.net("vss"));
    let vb = b.net("vb");
    let mut inp = b.net("in_p");
    let mut inn = b.net("in_n");
    for k in 0..stages {
        let outp = b.net(format!("s{k}_p"));
        let outn = b.net(format!("s{k}_n"));
        let tail = b.net(format!("s{k}_t"));
        let (a, c) = diff_pair(
            &mut b,
            &format!("MS{k}"),
            DeviceKind::Nmos,
            3.0,
            1.0,
            inp,
            inn,
            outp,
            outn,
            tail,
            vss,
        );
        let la = b.mos(
            format!("ML{k}A"),
            DeviceKind::Pmos,
            2.5,
            1.0,
            &[("d", outn), ("g", vb), ("s", vdd), ("b", vdd)],
        );
        let lb = b.mos(
            format!("ML{k}B"),
            DeviceKind::Pmos,
            2.5,
            1.0,
            &[("d", outp), ("g", vb), ("s", vdd), ("b", vdd)],
        );
        let t = b.mos(
            format!("MT{k}"),
            DeviceKind::Nmos,
            4.0,
            1.2,
            &[("d", tail), ("g", vb), ("s", vss), ("b", vss)],
        );
        let grp = format!("stage{k}");
        b.symmetry_pair(&grp, a, c);
        b.symmetry_pair(&grp, la, lb);
        b.symmetry_self(&grp, t);
        let cl = cap(&mut b, &format!("CL{k}"), 20e-15, outp, outn);
        let _ = cl;
        b.critical(outp);
        b.critical(outn);
        inp = outp;
        inn = outn;
    }
    let (bd, bo) = mirror(&mut b, "MB", DeviceKind::Nmos, 2.0, 0.8, vb, vss, vss);
    b.align(AlignKind::Bottom, bd, bo);
    b.build().expect("scalable array is valid")
}

/// All ten testcases in the paper's Table III order.
pub fn all_testcases() -> Vec<Circuit> {
    vec![
        adder(),
        cc_ota(),
        comp1(),
        comp2(),
        cm_ota1(),
        cm_ota2(),
        scf(),
        vga(),
        vco1(),
        vco2(),
    ]
}

/// Looks a testcase up by its paper name (case-insensitive).
pub fn testcase_by_name(name: &str) -> Option<Circuit> {
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "adder" => adder(),
        "cc-ota" | "cc_ota" => cc_ota(),
        "comp1" => comp1(),
        "comp2" => comp2(),
        "cm-ota1" | "cm_ota1" => cm_ota1(),
        "cm-ota2" | "cm_ota2" => cm_ota2(),
        "scf" => scf(),
        "vga" => vga(),
        "vco1" => vco1(),
        "vco2" => vco2(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_testcases_build_and_are_nontrivial() {
        let cases = all_testcases();
        assert_eq!(cases.len(), 10);
        for c in &cases {
            assert!(
                c.num_devices() >= 10,
                "{} has only {} devices",
                c.name(),
                c.num_devices()
            );
            assert!(c.num_nets() >= 5, "{} has too few nets", c.name());
            assert!(
                !c.constraints().symmetry_groups.is_empty(),
                "{} lacks symmetry constraints",
                c.name()
            );
            assert!(
                c.nets().iter().any(|n| n.critical),
                "{} lacks critical nets",
                c.name()
            );
        }
    }

    #[test]
    fn testcases_are_deterministic() {
        assert_eq!(cc_ota(), cc_ota());
        assert_eq!(scf(), scf());
    }

    #[test]
    fn scf_is_largest_by_area() {
        let cases = all_testcases();
        let scf_area = scf().total_device_area();
        for c in &cases {
            assert!(
                c.total_device_area() <= scf_area + 1e-9,
                "{} larger than SCF",
                c.name()
            );
        }
        // The SCF caps dominate: at least 60% of its area is capacitors.
        let cap_area: f64 = scf()
            .devices()
            .iter()
            .filter(|d| d.kind == DeviceKind::Capacitor)
            .map(|d| d.area())
            .sum();
        assert!(cap_area / scf_area > 0.6);
    }

    #[test]
    fn vco_inductor_dominates() {
        for c in [vco1(), vco2()] {
            let ind = c
                .devices()
                .iter()
                .find(|d| d.kind == DeviceKind::Inductor)
                .expect("vco has an inductor");
            let largest_other = c
                .devices()
                .iter()
                .filter(|d| d.kind != DeviceKind::Inductor)
                .map(|d| d.area())
                .fold(0.0_f64, f64::max);
            assert!(ind.area() > 4.0 * largest_other);
        }
        assert!(
            vco2().total_device_area() > vco1().total_device_area(),
            "vco2 must be larger than vco1"
        );
    }

    #[test]
    fn scalable_array_grows_linearly() {
        assert_eq!(scalable_array(1).num_devices(), 8);
        assert_eq!(scalable_array(4).num_devices(), 26);
        let c = scalable_array(6);
        assert_eq!(c.constraints().symmetry_groups.len(), 6);
        assert!(c.nets().iter().filter(|n| n.critical).count() >= 12);
    }

    #[test]
    fn lookup_by_name_matches_generators() {
        assert_eq!(testcase_by_name("CC-OTA"), Some(cc_ota()));
        assert_eq!(testcase_by_name("cm_ota2"), Some(cm_ota2()));
        assert_eq!(testcase_by_name("nope"), None);
    }

    #[test]
    fn symmetry_pairs_are_matched_in_size() {
        for c in all_testcases() {
            for g in &c.constraints().symmetry_groups {
                for &(a, b) in &g.pairs {
                    let da = c.device(a);
                    let db = c.device(b);
                    assert_eq!(
                        (da.width, da.height),
                        (db.width, db.height),
                        "{}: pair {} / {} mismatched",
                        c.name(),
                        da.name,
                        db.name
                    );
                }
            }
        }
    }

    #[test]
    fn spice_roundtrip_for_all_testcases() {
        for c in all_testcases() {
            let text = crate::parser::write_spice(&c);
            let parsed = crate::parser::parse_spice(&text).unwrap();
            assert_eq!(parsed.num_devices(), c.num_devices(), "{}", c.name());
            assert_eq!(parsed.num_nets(), c.num_nets(), "{}", c.name());
            let cons = crate::parser::write_constraints(&c);
            let mut parsed = parsed;
            crate::parser::parse_constraints(&mut parsed, &cons).unwrap();
            assert_eq!(
                parsed.constraints().symmetry_groups.len(),
                c.constraints().symmetry_groups.len()
            );
        }
    }
}
