//! Error types for circuit construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced when building or validating a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// Two devices share a name.
    DuplicateDevice(String),
    /// Two nets share a name.
    DuplicateNet(String),
    /// A pin refers to a net id that does not exist.
    DanglingNet {
        /// Device whose pin dangles.
        device: String,
        /// The dangling pin's name.
        pin: String,
    },
    /// A constraint refers to a device id that does not exist.
    UnknownConstraintDevice(usize),
    /// A device appears in more than one symmetry group.
    OverlappingSymmetryGroups(String),
    /// A symmetry pair pairs a device with itself.
    SelfPairedDevice(String),
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::DuplicateDevice(name) => {
                write!(f, "duplicate device name `{name}`")
            }
            BuildCircuitError::DuplicateNet(name) => write!(f, "duplicate net name `{name}`"),
            BuildCircuitError::DanglingNet { device, pin } => {
                write!(
                    f,
                    "pin `{pin}` of device `{device}` references a missing net"
                )
            }
            BuildCircuitError::UnknownConstraintDevice(id) => {
                write!(f, "constraint references unknown device index {id}")
            }
            BuildCircuitError::OverlappingSymmetryGroups(name) => {
                write!(f, "device `{name}` appears in more than one symmetry group")
            }
            BuildCircuitError::SelfPairedDevice(name) => {
                write!(f, "device `{name}` is symmetry-paired with itself")
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// What went wrong on one line of a netlist, constraint, or placement file.
///
/// Every variant names the offending token, so callers can react
/// programmatically instead of string-matching a message.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A card or directive has too few fields.
    MissingFields {
        /// The card or directive that is short.
        card: &'static str,
        /// Human description of the required fields.
        expected: &'static str,
    },
    /// A placement line has the wrong number of fields.
    WrongFieldCount {
        /// How many fields the format requires.
        expected: usize,
        /// How many fields the line actually has.
        got: usize,
    },
    /// A SPICE card starts with a letter no known device type claims.
    UnknownCard(char),
    /// A constraint directive is not one of the known keywords.
    UnknownDirective(String),
    /// An enumerated keyword (circuit class, MOS model, axis, ...) is not
    /// one of its allowed values.
    UnknownKeyword {
        /// Which keyword slot was being parsed.
        what: &'static str,
        /// The token that did not match.
        token: String,
    },
    /// A trailing token on a card is not a recognized parameter.
    UnexpectedToken {
        /// The card carrying the stray token.
        card: &'static str,
        /// The token itself.
        token: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Which field was being parsed.
        what: &'static str,
        /// The token that is not a number.
        token: String,
    },
    /// Reference to a device that does not exist in the circuit.
    UnknownDevice(String),
    /// Reference to a net that does not exist in the circuit.
    UnknownNet(String),
    /// `sympair`/`symself` references a group never declared by `symgroup`.
    UnknownSymmetryGroup(String),
    /// A device never received a position in a placement file.
    MissingPlacementDevice(String),
    /// The deck ended before its mandatory `.end` card.
    TruncatedDeck,
    /// The parsed input failed circuit validation.
    Build(BuildCircuitError),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::MissingFields { card, expected } => {
                write!(f, "`{card}` needs {expected}")
            }
            ParseErrorKind::WrongFieldCount { expected, got } => {
                write!(f, "expected {expected} fields, got {got}")
            }
            ParseErrorKind::UnknownCard(c) => write!(f, "unknown card starting with `{c}`"),
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseErrorKind::UnknownKeyword { what, token } => {
                write!(f, "unknown {what} `{token}`")
            }
            ParseErrorKind::UnexpectedToken { card, token } => {
                write!(f, "unexpected token `{token}` on `{card}` card")
            }
            ParseErrorKind::BadNumber { what, token } => write!(f, "bad {what} `{token}`"),
            ParseErrorKind::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            ParseErrorKind::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            ParseErrorKind::UnknownSymmetryGroup(g) => {
                write!(f, "unknown symmetry group `{g}`")
            }
            ParseErrorKind::MissingPlacementDevice(d) => {
                write!(f, "device `{d}` missing from placement")
            }
            ParseErrorKind::TruncatedDeck => write!(f, "deck ended before `.end`"),
            ParseErrorKind::Build(e) => e.fmt(f),
        }
    }
}

/// Error produced when parsing a netlist, constraint, or placement file.
///
/// Carries the 1-based line number plus a structured [`ParseErrorKind`];
/// line 0 means the error concerns the input as a whole (for example a
/// validation failure after every line parsed).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number where the error occurred (0 = whole input).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn new(line: usize, kind: ParseErrorKind) -> Self {
        Self { line, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            self.kind.fmt(f)
        } else {
            write!(f, "line {}: {}", self.line, self.kind)
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ParseError {
    fn from(e: BuildCircuitError) -> Self {
        ParseError::new(0, ParseErrorKind::Build(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = BuildCircuitError::DuplicateDevice("M1".into());
        assert_eq!(e.to_string(), "duplicate device name `M1`");
        let p = ParseError::new(3, ParseErrorKind::UnknownDirective("frobnicate".into()));
        assert_eq!(p.to_string(), "line 3: unknown directive `frobnicate`");
        let whole = ParseError::from(BuildCircuitError::DuplicateNet("vdd".into()));
        assert_eq!(whole.to_string(), "duplicate net name `vdd`");
    }

    #[test]
    fn build_errors_surface_as_sources() {
        let p = ParseError::from(BuildCircuitError::SelfPairedDevice("M2".into()));
        let src = std::error::Error::source(&p).expect("build error is the source");
        assert_eq!(
            src.to_string(),
            "device `M2` is symmetry-paired with itself"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<BuildCircuitError>();
        assert_traits::<ParseError>();
    }
}
