//! Error types for circuit construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced when building or validating a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCircuitError {
    /// Two devices share a name.
    DuplicateDevice(String),
    /// Two nets share a name.
    DuplicateNet(String),
    /// A pin refers to a net id that does not exist.
    DanglingNet {
        /// Device whose pin dangles.
        device: String,
        /// The dangling pin's name.
        pin: String,
    },
    /// A constraint refers to a device id that does not exist.
    UnknownConstraintDevice(usize),
    /// A device appears in more than one symmetry group.
    OverlappingSymmetryGroups(String),
    /// A symmetry pair pairs a device with itself.
    SelfPairedDevice(String),
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::DuplicateDevice(name) => {
                write!(f, "duplicate device name `{name}`")
            }
            BuildCircuitError::DuplicateNet(name) => write!(f, "duplicate net name `{name}`"),
            BuildCircuitError::DanglingNet { device, pin } => {
                write!(
                    f,
                    "pin `{pin}` of device `{device}` references a missing net"
                )
            }
            BuildCircuitError::UnknownConstraintDevice(id) => {
                write!(f, "constraint references unknown device index {id}")
            }
            BuildCircuitError::OverlappingSymmetryGroups(name) => {
                write!(f, "device `{name}` appears in more than one symmetry group")
            }
            BuildCircuitError::SelfPairedDevice(name) => {
                write!(f, "device `{name}` is symmetry-paired with itself")
            }
        }
    }
}

impl Error for BuildCircuitError {}

/// Error produced when parsing a netlist or constraint file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetlistError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseNetlistError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = BuildCircuitError::DuplicateDevice("M1".into());
        assert_eq!(e.to_string(), "duplicate device name `M1`");
        let p = ParseNetlistError::new(3, "unknown card");
        assert_eq!(p.to_string(), "line 3: unknown card");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<BuildCircuitError>();
        assert_traits::<ParseNetlistError>();
    }
}
